//! `kill -9` durability demo: build a durable sharded cluster, apply
//! acknowledged updates from a child process that dies by `abort()`
//! mid-stream (no destructors, no flush — the moral equivalent of
//! `kill -9`), then cold-start from disk in the parent and prove every
//! acknowledged update survived.
//!
//! ```text
//! cargo run --release -p fc-shard --example crash_recovery
//! ```
//!
//! The parent re-executes this same binary with `FC_CRASH_DEMO_DIR` set;
//! the child creates the cluster, splits a shard (routing-table version
//! 2), prints one `ACKED node key` line per durably acknowledged insert,
//! and aborts partway. The parent then recovers: manifest → routing
//! table at its persisted version, per-shard snapshot + WAL replay +
//! blame audit, and checks sample queries against an oracle built from
//! the original tree plus exactly the acknowledged inserts.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::dynamic::UpdateOp;
use fc_coop::ParamMode;
use fc_serve::ServeConfig;
use fc_shard::{DurableCluster, ShardConfig, StoreConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

const ENV_DIR: &str = "FC_CRASH_DEMO_DIR";
const TOTAL_OPS: usize = 300;
const ABORT_AT: usize = 240;

fn demo_tree() -> CatalogTree<i64> {
    let mut rng = SmallRng::seed_from_u64(0xDE_A0);
    gen::balanced_binary(5, 1500, SizeDist::Uniform, &mut rng)
}

fn demo_cfg() -> ShardConfig {
    ShardConfig {
        shards: 3,
        replicas: 2,
        serve: ServeConfig {
            workers: 1,
            audit_interval: Duration::from_secs(3600),
            default_deadline: Duration::from_secs(5),
            processors: 1 << 8,
            ..ServeConfig::default()
        },
        batch_threads: 2,
        default_deadline: Duration::from_secs(10),
        ..ShardConfig::default()
    }
}

/// The i-th acknowledged insert: (path node, key). The stride is coprime
/// with the modulus, so the keys sweep the whole key space (all shards).
fn demo_op(tree: &CatalogTree<i64>, leaf: NodeId, i: usize) -> (NodeId, i64) {
    let path = tree.path_from_root(leaf);
    let node = path[i % path.len()];
    let key = 100 + ((i * 379) % 23_000) as i64;
    (node, key)
}

/// Child: create the durable cluster, split (version 2), ack inserts to
/// stdout, die by abort() before finishing.
fn run_child(dir: PathBuf) -> ! {
    let tree = demo_tree();
    let dc = DurableCluster::create(
        &dir,
        &tree,
        ParamMode::Auto,
        demo_cfg(),
        StoreConfig::default(), // fsync on: acks must mean durable
    )
    .expect("create durable cluster");
    let leaf = dc.cluster().leaves()[0];
    let v = dc.split_durable(1).expect("split").expect("splittable");
    println!("TABLE_VERSION {v}");
    for i in 0..TOTAL_OPS {
        if i == ABORT_AT {
            // No shutdown, no checkpoint, no Drop: the process vanishes
            // exactly like `kill -9` between two acknowledged batches.
            std::process::abort();
        }
        let (node, key) = demo_op(&tree, leaf, i);
        dc.update_batch(&[UpdateOp::Insert(node, key)])
            .expect("durable append");
        println!("ACKED {} {}", node.0, key);
    }
    unreachable!("child must abort before draining all ops");
}

fn main() {
    if let Some(dir) = std::env::var_os(ENV_DIR) {
        run_child(PathBuf::from(dir));
    }

    let dir = std::env::temp_dir().join(format!("fc-crash-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("[demo] spawning child cluster in {} ...", dir.display());
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .env(ENV_DIR, &dir)
        .output()
        .expect("spawn child");
    assert!(
        !out.status.success(),
        "child was supposed to die by abort()"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut table_version = None;
    let mut acked: Vec<(u32, i64)> = Vec::new();
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("TABLE_VERSION ") {
            table_version = rest.trim().parse::<u64>().ok();
        } else if let Some(rest) = line.strip_prefix("ACKED ") {
            let mut it = rest.split_whitespace();
            let node = it.next().and_then(|s| s.parse::<u32>().ok());
            let key = it.next().and_then(|s| s.parse::<i64>().ok());
            if let (Some(n), Some(k)) = (node, key) {
                acked.push((n, k));
            }
        }
    }
    let table_version = table_version.expect("child printed TABLE_VERSION");
    println!(
        "[demo] child aborted after acknowledging {} inserts (table v{})",
        acked.len(),
        table_version
    );
    assert_eq!(acked.len(), ABORT_AT, "one ack per op before the abort");

    println!("[demo] cold-starting from disk ...");
    let (dc, report) = DurableCluster::<i64>::cold_start(
        &dir,
        ParamMode::Auto,
        demo_cfg(),
        StoreConfig::default(),
    )
    .expect("cold start");
    println!("[demo] recovery report: {report:?}");
    assert_eq!(
        report.table_version, table_version,
        "routing version restored"
    );
    assert!(
        report.replayed_records > 0,
        "the unsnapshotted tail replays"
    );

    // Recovered GenStats, one line per shard's replica 0.
    let state = dc.cluster().state();
    for (shard, group) in state.groups.iter().enumerate() {
        let svc = group.replica(0).expect("replica 0");
        println!("[demo] shard {shard} gen_stats: {:?}", svc.gen_stats());
    }
    drop(state);

    // Oracle: the original tree plus exactly the acknowledged inserts.
    let tree = demo_tree();
    let leaf = dc.cluster().leaves()[0];
    let mut extra: HashMap<u32, Vec<i64>> = HashMap::new();
    for &(n, k) in &acked {
        extra.entry(n).or_default().push(k);
    }
    let oracle = |leaf: NodeId, y: i64| -> Vec<Option<i64>> {
        tree.path_from_root(leaf)
            .iter()
            .map(|&n| {
                let cat = tree.catalog(n);
                let base = cat.get(cat.partition_point(|k| *k < y)).copied();
                let tail = extra
                    .get(&n.0)
                    .and_then(|ks| ks.iter().copied().filter(|k| *k >= y).min());
                match (base, tail) {
                    (Some(b), Some(t)) => Some(b.min(t)),
                    (b, t) => b.or(t),
                }
            })
            .collect()
    };
    let mut checked = 0usize;
    for y in (-50..24_000i64).step_by(311) {
        let ok = dc
            .cluster()
            .query_blocking(leaf, y, None)
            .expect("recovered query");
        assert_eq!(ok.answers, oracle(leaf, y), "divergence at y={y}");
        checked += 1;
    }
    // Every acknowledged key is individually findable at its node.
    for &(n, k) in &acked {
        let ok = dc.cluster().query_blocking(leaf, k, None).expect("query");
        let hit = ok
            .path
            .iter()
            .zip(&ok.answers)
            .any(|(pn, a)| pn.0 == n && *a == Some(k));
        assert!(hit, "acked key {k} at node {n} lost");
    }
    println!(
        "[demo] {} oracle probes + {} acked-key lookups all equal after kill -9 recovery",
        checked,
        acked.len()
    );
    dc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
