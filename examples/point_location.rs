//! Planar point location (Section 3.1): generate a monotone subdivision,
//! build the bridged separator tree, and locate points sequentially and
//! cooperatively — the Figure 5/6 walk-through.
//!
//! ```text
//! cargo run -p fc-bench --release --example point_location
//! ```

use fc_coop::ParamMode;
use fc_geom::cooploc::locate_coop;
use fc_geom::septree::{locate_sequential, SeparatorTree};
use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);

    // A monotone subdivision with 1024 regions; separators share edges
    // (the "stick" probability), which is what produces the gaps that make
    // point-location search "highly implicit".
    let sub = MonotoneSubdivision::generate(
        SubdivisionParams {
            regions: 1024,
            strips: 24,
            stick: 0.4,
            detach: 0.4,
        },
        &mut rng,
    );
    println!(
        "subdivision: {} regions, {} strips, {} distinct edges ({}% shared)",
        sub.f,
        sub.strips(),
        sub.distinct_edges(),
        100 - 100 * sub.distinct_edges() / (sub.separators() * sub.strips())
    );

    // The bridged separator tree: proper edges at LCAs, fractional
    // cascading bridges, cooperative substructures.
    let t = SeparatorTree::build(sub, ParamMode::Auto);

    println!(
        "\n{:>28}  {:>6}  {:>6}  {:>6}",
        "query", "region", "seq", "coop"
    );
    for _ in 0..8 {
        let (x, y) = t.sub.random_query(&mut rng);
        let brute = t.sub.locate_brute(x, y);

        let mut ps = Pram::new(1, Model::Crew);
        let (r_seq, stats) = locate_sequential(&t, x, y, Some(&mut ps));

        let mut pc = Pram::new(1 << 20, Model::Crew);
        let (r_coop, cstats) = locate_coop(&t, x, y, &mut pc);

        assert_eq!(r_seq, brute);
        assert_eq!(r_coop, brute);
        println!(
            "({x:10.3}, {y:8.3})  r_{brute:<5}  {:>6}  {:>6}   [{} active / {} inactive on path; {} hops, window ({}, {})]",
            ps.steps(),
            pc.steps(),
            stats.active_nodes,
            stats.inactive_nodes,
            cstats.hops,
            cstats.window.0,
            cstats.window.1,
        );
    }
    println!(
        "\nsequential = bridged separator tree (O(log n)); coop = Theorem 4 (O(log n / log p))"
    );
}
