//! Spatial point location (Section 3.2): a stacked-surface cell complex
//! searched via separating surfaces with per-node planar point location —
//! Theorem 5's two-level cooperative search.
//!
//! ```text
//! cargo run -p fc-bench --release --example spatial_location
//! ```

use fc_coop::ParamMode;
use fc_geom::spatial::{
    locate_spatial_coop, locate_spatial_sequential, SpatialComplex, SpatialLocator, SpatialParams,
};
use fc_geom::subdivision::SubdivisionParams;
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(3);
    let complex = SpatialComplex::generate(
        SpatialParams {
            cells: 128,
            footprint: SubdivisionParams {
                regions: 128,
                strips: 16,
                stick: 0.4,
                detach: 0.4,
            },
            coincide: 0.35,
        },
        &mut rng,
    );
    println!(
        "complex: {} cells over a {}-region footprint ({} surfaces, coincidence produces shared facets)",
        complex.cells,
        complex.footprint.f,
        complex.surfaces()
    );
    let loc = SpatialLocator::build(complex, ParamMode::Auto);

    println!(
        "\n{:>34}  {:>5}  {:>9}  {:>9}",
        "query (x, y, z)", "cell", "seq steps", "coop steps"
    );
    for _ in 0..8 {
        let (x, y, z) = loc.complex.random_query(&mut rng);
        let want = loc.complex.locate_brute(x, y, z);

        let mut ps = Pram::new(1, Model::Crew);
        let (c_seq, _) = locate_spatial_sequential(&loc, x, y, z, &mut ps);

        let mut pc = Pram::new(1 << 22, Model::Crew);
        let (c_coop, stats) = locate_spatial_coop(&loc, x, y, z, &mut pc);

        assert_eq!(c_seq, want);
        assert_eq!(c_coop, want);
        println!(
            "({x:8.2}, {y:8.2}, {z:8.2})  c_{want:<4}  {:>9}  {:>9}   [{} outer hops, {} inner planar queries]",
            ps.steps(),
            pc.steps(),
            stats.hops,
            stats.inner_queries,
        );
    }
    println!("\nsequential = canal-tree style O(log^2 n); coop = Theorem 5 O((log^2 n)/log^2 p)");
}
