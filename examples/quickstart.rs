//! Quickstart: build a catalog tree, preprocess it for cooperative search,
//! and watch the step count fall as the processor count grows.
//!
//! ```text
//! cargo run -p fc-bench --release --example quickstart
//! ```

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::search::search_path_naive;
use fc_coop::explicit::coop_search_explicit;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);

    // A balanced binary tree of height 14 whose nodes hold sorted catalogs
    // with a total of n = 2^18 entries — the paper's object of study.
    let n = 1usize << 18;
    let height = 14;
    let tree = gen::balanced_binary(height, n, SizeDist::Uniform, &mut rng);
    println!(
        "tree: {} nodes, height {height}, {} total catalog entries",
        tree.len(),
        tree.total_catalog_size()
    );

    // Preprocess into the cooperative search structure T' (Theorem 1):
    // fractional cascading + skeleton substructures for every processor
    // band.
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    println!(
        "preprocessed: {} words total, {} substructures",
        st.total_space_words(),
        st.substructures().len()
    );

    // One query: locate y in every catalog along a root-to-leaf path.
    let leaf = gen::random_leaf(st.tree(), &mut rng);
    let path = st.tree().path_from_root(leaf);
    let y: i64 = rng.gen_range(0..(n as i64 * 16));
    println!(
        "\nsearching y = {y} along a root-to-leaf path of {} nodes",
        path.len()
    );

    // Baseline: one processor, binary search per node.
    let mut pram = Pram::new(1, Model::Crew);
    let baseline = search_path_naive(st.tree(), &path, y, Some(&mut pram));
    println!("{:>12}  {:>8}  algorithm", "processors", "steps");
    println!(
        "{:>12}  {:>8}  naive binary search per node",
        1,
        pram.steps()
    );

    // Cooperative search across a sweep of processor counts. The PRAM cost
    // model accepts any p — that is the point of simulating the machine.
    for p in [1usize, 1 << 8, 1 << 16, 1 << 24, 1 << 32] {
        let mut pram = Pram::new(p, Model::Crew);
        let out = coop_search_explicit(&st, &path, y, &mut pram);
        assert_eq!(out.finds, baseline.results, "all algorithms agree");
        println!(
            "{:>12}  {:>8}  cooperative (h = {:?}, {} hops, {} tail)",
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            pram.steps(),
            out.stats.used_h,
            out.stats.hops,
            out.stats.tail_nodes,
        );
    }
    println!("\ntheory: steps fall like (log n)/log p  (Theorem 1)");
}
