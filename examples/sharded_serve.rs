//! Quickstart for the sharded cluster (`fc-shard`): build a 4-shard ×
//! 2-replica cluster, run single and batched queries, route updates,
//! corrupt and quarantine replicas, and split a hot shard — printing the
//! routing-table versions and cluster counters along the way.
//!
//! ```sh
//! cargo run --release -p fc-shard --example sharded_serve
//! ```

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::NodeId;
use fc_coop::dynamic::UpdateOp;
use fc_coop::ParamMode;
use fc_resilience::FaultSpec;
use fc_serve::ServeConfig;
use fc_shard::{HeatConfig, ShardCluster, ShardConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let tree = gen::balanced_binary(6, 4000, SizeDist::Uniform, &mut rng);
    let cfg = ShardConfig {
        shards: 4,
        replicas: 2,
        serve: ServeConfig {
            workers: 2,
            audit_interval: Duration::from_millis(50),
            default_deadline: Duration::from_secs(5),
            processors: 1 << 10,
            ..ServeConfig::default()
        },
        batch_threads: 4,
        default_deadline: Duration::from_secs(10),
        ..ShardConfig::default()
    };
    let t0 = Instant::now();
    let cluster = ShardCluster::start(&tree, ParamMode::Auto, cfg);
    println!(
        "cluster up: {} shards x 2 replicas, table v{}, build {:?}",
        cluster.shards(),
        cluster.table_version(),
        t0.elapsed()
    );

    // --- single queries -------------------------------------------------
    let leaves = cluster.leaves();
    for _ in 0..5 {
        let leaf = leaves[rng.gen_range(0..leaves.len())];
        let y = rng.gen_range(0..70_000i64);
        let ok = cluster.query_blocking(leaf, y, None).expect("query");
        println!(
            "  y={y:>6} -> {} legs, leaf answer {:?} (gen {})",
            ok.legs.len(),
            ok.answers.last().copied().flatten(),
            ok.legs.first().map(|l| l.gen.id).unwrap_or(0),
        );
    }

    // --- batched scatter/gather ----------------------------------------
    let queries: Vec<(NodeId, i64)> = (0..256)
        .map(|_| {
            (
                leaves[rng.gen_range(0..leaves.len())],
                rng.gen_range(0..70_000i64),
            )
        })
        .collect();
    let t1 = Instant::now();
    let results = cluster.query_batch(&queries, None);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "batch: {}/{} ok in {:?} ({:.0} q/s)",
        ok,
        results.len(),
        t1.elapsed(),
        results.len() as f64 / t1.elapsed().as_secs_f64()
    );

    // --- updates route to their owner shard -----------------------------
    let root = *tree.path_from_root(leaves[0]).first().expect("path");
    let ops: Vec<UpdateOp<i64>> = (0..64)
        .map(|i| UpdateOp::Insert(root, 100_000 + i))
        .collect();
    cluster.update_batch(&ops);
    println!("routed {} updates", ops.len());

    // --- chaos: corrupt a replica, quarantine another --------------------
    let plan = cluster
        .inject(1, 0, &FaultSpec::one_of_each(), 7)
        .expect("inject");
    println!(
        "injected {} faults into shard 1 replica 0",
        plan.structural_len() + plan.dynamic_len()
    );
    cluster.force_quarantine_replica(2, 1);
    println!("force-quarantined shard 2 replica 1 (entire arena)");
    for _ in 0..20 {
        let leaf = leaves[rng.gen_range(0..leaves.len())];
        let y = rng.gen_range(0..70_000i64);
        let _ = cluster.query_blocking(leaf, y, None); // failover / degrade
    }
    while cluster.audit_blocking_all() > 0 {}
    println!("audits clean; health:");
    for (s, replicas) in cluster.health().iter().enumerate() {
        for (r, h) in replicas.iter().enumerate() {
            println!(
                "  shard {s} replica {r}: breaker {:?}, queue {}/{}, epoch {}",
                h.breaker, h.queue_len, h.queue_cap, h.epoch
            );
        }
    }

    // --- rebalance: split the hottest (or first) shard -------------------
    let hot = cluster
        .hottest_shard(HeatConfig::default())
        .map(|(s, _)| s)
        .unwrap_or(0);
    match cluster.split_shard(hot) {
        Some(v) => println!(
            "split shard {hot}: table now v{v}, {} shards",
            cluster.shards()
        ),
        None => println!("shard {hot} not splittable"),
    }
    let probe = cluster
        .query_blocking(leaves[0], 35_000, None)
        .expect("post-split");
    println!(
        "post-split probe ok on table v{} ({} legs)",
        probe.table_version,
        probe.legs.len()
    );

    let stats = cluster.shutdown();
    println!("final: {stats:#?}");
}
