//! Chaos harness for the fc-serve query service.
//!
//! Drives ≥10⁵ mixed operations — queries, update batches, structural and
//! dynamic-buffer fault injections, processor-kill schedules, and forced
//! audits — against a running [`Service`], and asserts the service's core
//! contract: **zero silently-wrong answers**. Every `Ok` answer (exact or
//! degraded) is re-checked against the sequential oracle on the generation
//! that served it; corruption is allowed to cost latency (retries,
//! degraded reads, quarantine, timeouts, sheds — all *detected* outcomes),
//! never correctness.
//!
//! Run with: `cargo run --release --example chaos_serve`

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::NodeId;
use fc_coop::dynamic::UpdateOp;
use fc_coop::{CoopStructure, ParamMode};
use fc_resilience::{Fault, FaultPlan, FaultSpec};
use fc_serve::{QueryResult, ServeConfig, Service};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

const TOTAL_OPS: usize = 120_000;
const INJECT_EVERY: usize = 6_000; // structural/dynamic fault injections
const KILL_EVERY: usize = 2_500; // one-shot processor-kill schedules
const AUDIT_EVERY: usize = 1_000; // explicit auditor wake-ups
const DRAIN_AT: usize = 384; // in-flight queries before draining

fn oracle(st: &CoopStructure<i64>, path: &[NodeId], y: i64) -> Vec<Option<i64>> {
    path.iter()
        .map(|&node| {
            let cat = st.tree().catalog(node);
            cat.get(cat.partition_point(|k| *k < y)).copied()
        })
        .collect()
}

#[derive(Default)]
struct Tally {
    answered_exact: u64,
    answered_degraded: u64,
    wrong: u64,
    detected_errors: u64,
    dropped: u64,
}

fn drain(pending: &mut Vec<(NodeId, i64, Receiver<QueryResult<i64>>)>, tally: &mut Tally) {
    for (leaf, y, rx) in pending.drain(..) {
        match rx.recv() {
            Ok(Ok(ok)) => {
                let expect = oracle(&ok.gen.st, &ok.path, y);
                let path_ok = ok.path == ok.gen.st.tree().path_from_root(leaf);
                if ok.answers != expect || !path_ok {
                    tally.wrong += 1;
                    eprintln!(
                        "WRONG answer for y={y} leaf={leaf:?} on generation {} (degraded={})",
                        ok.gen.id, ok.degraded
                    );
                } else if ok.degraded {
                    tally.answered_degraded += 1;
                } else {
                    tally.answered_exact += 1;
                }
            }
            Ok(Err(_)) => tally.detected_errors += 1,
            Err(_) => tally.dropped += 1,
        }
    }
}

fn main() {
    let t0 = Instant::now();
    let mut rng = SmallRng::seed_from_u64(0xC4A0_5EED);
    let tree = gen::balanced_binary(7, 8000, SizeDist::Uniform, &mut rng);
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 512,
        default_deadline: Duration::from_millis(250),
        audit_interval: Duration::from_millis(20),
        processors: 1 << 10,
        ..ServeConfig::default()
    };
    let svc = Service::start(tree, ParamMode::Auto, cfg);
    let leaves = svc.snapshot().st.tree().leaves();
    let node_count = svc.snapshot().st.tree().len() as u32;

    let mut tally = Tally::default();
    let mut pending: Vec<(NodeId, i64, Receiver<QueryResult<i64>>)> = Vec::new();
    let mut queries = 0u64;
    let mut update_ops = 0u64;
    let mut injections = 0u64;
    let mut kills = 0u64;
    let mut shed_submits = 0u64;

    for op in 1..=TOTAL_OPS {
        if op % INJECT_EVERY == 0 {
            // Alternate static-structure corruption (bridges, catalogs,
            // skeleton keys) with dynamic-path corruption (buffers,
            // counter); the corrupted snapshot is published like a bad
            // replica push.
            let spec = if rng.gen_bool(0.5) {
                FaultSpec::one_of_each()
            } else {
                FaultSpec::one_of_each_dynamic()
            };
            let plan = svc.inject(&spec, rng.gen());
            injections += (plan.structural_len() + plan.dynamic_len()) as u64;
        } else if op % KILL_EVERY == 0 {
            svc.arm_kills(FaultPlan {
                seed: op as u64,
                faults: vec![Fault::KillProcessors {
                    at_round: rng.gen_range(0..4),
                    count: 1 << 9,
                }],
            });
            kills += 1;
        } else if op % AUDIT_EVERY == 0 {
            svc.trigger_audit();
        } else if rng.gen_bool(0.10) {
            let ops: Vec<UpdateOp<i64>> = (0..8)
                .map(|_| {
                    let node = NodeId(rng.gen_range(0..node_count));
                    let key = rng.gen_range(0..20_000_000i64);
                    if rng.gen_bool(0.7) {
                        UpdateOp::Insert(node, key)
                    } else {
                        UpdateOp::Remove(node, key)
                    }
                })
                .collect();
            svc.update_batch(&ops);
            update_ops += ops.len() as u64;
        } else {
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            let y = rng.gen_range(-5..20_000_005i64);
            match svc.submit(leaf, y, None) {
                Ok(rx) => pending.push((leaf, y, rx)),
                Err(_) => shed_submits += 1,
            }
            queries += 1;
        }
        if pending.len() >= DRAIN_AT {
            drain(&mut pending, &mut tally);
        }
    }
    drain(&mut pending, &mut tally);
    let stats = svc.shutdown();

    println!(
        "chaos_serve: {TOTAL_OPS} driver ops in {:.2?}",
        t0.elapsed()
    );
    println!(
        "  queries submitted        {queries} (shed at submit: {shed_submits}, dropped at shutdown: {})",
        tally.dropped
    );
    println!("  update ops applied       {update_ops}");
    println!("  faults injected          {injections} (+{kills} kill schedules)");
    println!(
        "  answered exact/degraded  {}/{}",
        tally.answered_exact, tally.answered_degraded
    );
    println!(
        "  detected errors          {} (timeouts {}, quarantined {}, degraded-fail {})",
        tally.detected_errors, stats.timeouts, stats.quarantined_rejects, stats.structural_failures
    );
    println!(
        "  corruption detected      {} (retries {}, probes {}/{} failed)",
        stats.corruption_detected, stats.retries, stats.probe_failures, stats.probes
    );
    println!(
        "  audits run/dirty         {}/{}  repairs {}  quarantine opens {}",
        stats.audits_run, stats.audits_dirty, stats.repairs, stats.quarantine_opens
    );
    println!(
        "  generations published    {}  (rebuilds {})",
        stats.generations_published,
        svc_rebuilds(&stats)
    );
    println!("  SILENTLY WRONG ANSWERS   {}", tally.wrong);

    assert_eq!(tally.wrong, 0, "chaos run produced a silently wrong answer");
    assert!(injections > 0, "chaos must actually inject faults");
    assert!(
        stats.audits_dirty > 0,
        "injected corruption must be caught by the auditor"
    );
    assert!(stats.repairs > 0, "caught corruption must be repaired");
    let answered = tally.answered_exact + tally.answered_degraded;
    assert!(
        answered > (queries * 9) / 10,
        "most queries must be answered despite chaos ({answered}/{queries})"
    );
    println!("chaos_serve: OK — zero silently-wrong answers across {TOTAL_OPS} ops");
}

fn svc_rebuilds(stats: &fc_serve::ServeStats) -> u64 {
    // Publishes = rebuilds + repair republishes + injected pushes; the
    // split is in the printed audit/repair lines above.
    stats.generations_published
}
