//! Fault injection round trip: corrupt a cooperative search structure with
//! a seeded fault plan, catch every corruption with the self-audit, repair
//! only the blamed regions, and re-validate — then kill half the PRAM
//! mid-search and watch the search degrade gracefully.
//!
//! ```text
//! cargo run -p fc-bench --release --example fault_injection
//! ```

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::search::search_path_naive;
use fc_coop::explicit::{coop_search_explicit, coop_search_explicit_checked};
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use fc_resilience::{audit, repair, Fault, FaultPlan, FaultSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let tree = gen::balanced_binary(10, 1 << 14, SizeDist::Uniform, &mut rng);
    let mut st = CoopStructure::preprocess(tree, ParamMode::Auto);
    println!(
        "structure: {} nodes, {} words total",
        st.tree().len(),
        st.total_space_words()
    );

    // 1. Inject one fault of every structural kind, deterministically.
    let plan = FaultPlan::generate(&st, &FaultSpec::one_of_each(), 42);
    println!("\ninjecting {} faults (seed 42):", plan.structural_len());
    for f in &plan.faults {
        println!("  {f:?}");
    }
    plan.apply(&mut st);

    // 2. Detect: the audit localizes every corruption.
    let report = audit(&st);
    println!("\naudit: {} findings", report.findings.len());
    for b in &report.findings {
        println!("  {b:?}");
    }
    assert!(!report.is_clean());

    // 3. A checked query on the corrupted structure errors instead of
    //    answering wrong (when it crosses a tampered region).
    let leaf = gen::random_leaf(st.tree(), &mut rng);
    let path = st.tree().path_from_root(leaf);
    let mut pram = Pram::new(1 << 16, Model::Crew);
    match coop_search_explicit_checked(&st, &path, 123_456, &mut pram) {
        Ok(_) => println!("\nchecked query missed the tampered regions: answer verified exact"),
        Err(e) => println!("\nchecked query refused to answer: {e}"),
    }

    // 4. Repair only the blamed regions, then re-validate.
    let stats = repair(&mut st, &report);
    println!(
        "\nrepair: {} rounds, {} catalog entries fixed, {} rows recomputed, {} units rebuilt",
        stats.rounds, stats.catalog_entries_fixed, stats.rows_recomputed, stats.units_rebuilt
    );
    println!(
        "cost: {} words touched vs {} for a full rebuild (fallback used: {})",
        stats.repair_ops, stats.full_rebuild_ops, stats.fell_back_to_full_rebuild
    );
    assert!(audit(&st).is_clean());
    invariants::validate(&invariants::check_all(st.cascade())).expect("invariants after repair");
    println!("audit clean, invariants validate: structure restored");

    // 5. Degraded mode: kill half the processors two rounds into a search.
    let p0 = 1usize << 16;
    let leaf = gen::random_leaf(st.tree(), &mut rng);
    let path = st.tree().path_from_root(leaf);
    let y = rng.gen_range(0..(1i64 << 18));
    let mut pram = Pram::new(p0, Model::Crew);
    FaultPlan {
        seed: 0,
        faults: vec![Fault::KillProcessors {
            at_round: 2,
            count: p0 / 2,
        }],
    }
    .arm(&mut pram);
    let out = coop_search_explicit(&st, &path, y, &mut pram);
    let truth = search_path_naive(st.tree(), &path, y, None);
    assert_eq!(out.finds, truth.results);
    let mut fresh = Pram::new(p0 / 2, Model::Crew);
    coop_search_explicit(&st, &path, y, &mut fresh);
    println!(
        "\ndegraded mode: {} -> {} processors at round 2; exact answer in {} steps (fresh run at p/2: {} steps)",
        p0,
        pram.processors(),
        pram.steps(),
        fresh.steps()
    );
}
