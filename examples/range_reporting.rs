//! Geometric retrieval (Section 4): orthogonal segment intersection, 2D
//! range search, and point enclosure, in both of Theorem 6's retrieval
//! models.
//!
//! ```text
//! cargo run -p fc-bench --release --example range_reporting
//! ```

use fc_coop::ParamMode;
use fc_pram::{Model, Pram};
use fc_retrieval::enclosure::{random_rects, PointEnclosure};
use fc_retrieval::range2d::{random_points, RangeTree2D, Rect};
use fc_retrieval::segint::{random_segments, HQuery, SegmentIntersection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let p = 1usize << 16;

    // --- Orthogonal segment intersection -------------------------------
    let segs = random_segments(10_000, 100_000, &mut rng);
    let si = SegmentIntersection::build(segs, ParamMode::Auto);
    println!(
        "segment intersection: n = 10000, catalog entries = {} (O(n log n))",
        si.catalog_size()
    );
    let q = HQuery {
        y: 50_000,
        x_lo: 20_000,
        x_hi: 60_000,
    };
    let mut pd = Pram::new(p, Model::Crew);
    let direct = si.query_coop(q, true, &mut pd);
    let mut pi = Pram::new(p, Model::Crcw);
    let indirect = si.query_coop(q, false, &mut pi);
    println!(
        "  query {q:?}\n  k = {} segments; direct retrieval {} steps, indirect {} steps",
        direct.total,
        pd.steps(),
        pi.steps()
    );
    assert_eq!(si.collect_ids(&direct), si.query_brute(q));
    assert_eq!(direct.total, indirect.total);

    // --- 2D orthogonal range search -------------------------------------
    let pts = random_points(8192, 1 << 20, &mut rng);
    let rt = RangeTree2D::build(pts, ParamMode::Auto);
    let r = Rect {
        x1: 100_000,
        x2: 500_000,
        y1: 200_000,
        y2: 800_000,
    };
    let mut pr = Pram::new(p, Model::Crew);
    let list = rt.query_coop(r, true, &mut pr);
    println!(
        "\nrange search: n = 8192, query {r:?}\n  k = {} points in {} steps",
        list.total,
        pr.steps()
    );
    assert_eq!(rt.collect_ids(&list), rt.query_brute(r));

    // --- Point enclosure -------------------------------------------------
    let rects = random_rects(8000, 100_000, &mut rng);
    let pe = PointEnclosure::build(rects);
    let (qx, qy) = (rng.gen_range(0..100_000), rng.gen_range(0..100_000));
    let mut pp = Pram::new(p, Model::Crew);
    let ids = pe.query_coop(qx, qy, &mut pp);
    println!(
        "\npoint enclosure: n = 8000 rectangles, query ({qx}, {qy})\n  k = {} containing rectangles in {} steps",
        ids.len(),
        pp.steps()
    );
    assert_eq!(ids, pe.query_brute(qx, qy));

    println!("\nall three reports verified against brute force");
}
