//! Dynamic cooperative search (the paper's open problem 4): insert and
//! delete catalog entries under query load, with buffering and global
//! rebuilding keeping searches exact.
//!
//! ```text
//! cargo run -p fc-bench --release --example dynamic_updates
//! ```

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::NodeId;
use fc_coop::dynamic::DynamicCoop;
use fc_coop::ParamMode;
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let tree = gen::balanced_binary(10, 1 << 14, SizeDist::Uniform, &mut rng);
    println!(
        "initial tree: {} nodes, {} catalog entries",
        tree.len(),
        tree.total_catalog_size()
    );
    let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
    let mut pram = Pram::new(1 << 16, Model::Crew);
    let node_count = dy.structure().tree().len() as u32;

    println!(
        "\n{:>9}  {:>8}  {:>8}  {:>14}  {:>12}",
        "updates", "pending", "rebuilds", "query steps", "verified"
    );
    let mut total_updates = 0usize;
    for _phase in 0..6 {
        // A burst of mixed updates.
        for _ in 0..3000 {
            let node = NodeId(rng.gen_range(0..node_count));
            let key = rng.gen_range(0..1_000_000i64);
            if rng.gen_bool(0.65) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
            total_updates += 1;
        }
        // Queries, verified against the logical catalogs.
        let mut steps = 0u64;
        let mut verified = 0usize;
        for _ in 0..15 {
            let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
            let path = dy.structure().tree().path_from_root(leaf);
            let y = rng.gen_range(0..1_000_000i64);
            let mut qp = Pram::new(1 << 16, Model::Crew);
            let got = dy.search(&path, y, &mut qp);
            steps += qp.steps();
            let want: Vec<Option<i64>> = path
                .iter()
                .map(|&node| dy.logical_catalog(node).into_iter().find(|&k| k >= y))
                .collect();
            assert_eq!(got, want);
            verified += 1;
        }
        println!(
            "{:>9}  {:>8}  {:>8}  {:>14.1}  {:>10}/15",
            total_updates,
            dy.pending_changes(),
            dy.rebuilds,
            steps as f64 / 15.0,
            verified
        );
    }
    let gs = dy.gen_stats();
    println!(
        "\ngeneration stats: generation {}, {} rebuilds, {} changes drained \
         total ({} by the last rebuild), {} still pending, {} post-rebuild \
         audit failures",
        gs.generation,
        gs.rebuilds,
        gs.total_drained,
        gs.last_drained,
        gs.pending,
        gs.audit_failures
    );
    assert_eq!(gs.audit_failures, 0, "rebuilds must re-audit clean");
    // Not every update survives to a drain: an insert annihilated by its
    // own remove (or a no-op) buffers fewer net changes than updates made.
    assert!(
        gs.total_drained + gs.pending <= total_updates,
        "drained + pending cannot exceed the updates applied"
    );
    println!("every query matched the logical (post-update) catalogs exactly");
}
