//! Dynamic cooperative search (the paper's open problem 4): insert and
//! delete catalog entries under query load, two ways.
//!
//! * **Buffered mode** (the baseline): updates buffer per node; a global
//!   clone-and-rebuild drains them once the threshold trips.
//! * **Incremental mode** (`fc-dyn`): each update patches bridges and
//!   samples along the affected node-to-root path only, so the cost of an
//!   update is per key touched, not per structure — rebuilds only happen
//!   as density-triggered compaction or corruption fallback.
//!
//! ```text
//! cargo run -p fc-bench --release --example dynamic_updates
//! ```

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::NodeId;
use fc_coop::dynamic::DynamicCoop;
use fc_coop::ParamMode;
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PHASES: usize = 6;
const BURST: usize = 3000;
const QUERIES: usize = 15;

fn run(mut dy: DynamicCoop<i64>, label: &str, seed: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pram = Pram::new(1 << 16, Model::Crew);
    let node_count = dy.structure().tree().len() as u32;

    println!("\n== {label} ==");
    println!(
        "{:>9}  {:>8}  {:>9}  {:>10}  {:>14}  {:>12}",
        "updates", "rebuilds", "incr", "cost/op", "query steps", "verified"
    );
    let mut total_updates = 0usize;
    for _phase in 0..PHASES {
        // A burst of mixed updates.
        for _ in 0..BURST {
            let node = NodeId(rng.gen_range(0..node_count));
            let key = rng.gen_range(0..1_000_000i64);
            if rng.gen_bool(0.65) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
            total_updates += 1;
        }
        // Queries, verified against the logical catalogs. In incremental
        // mode every update so far is already visible; in buffered mode
        // the search corrects static answers against the buffers.
        let mut steps = 0u64;
        let mut verified = 0usize;
        for _ in 0..QUERIES {
            let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
            let path = dy.structure().tree().path_from_root(leaf);
            let y = rng.gen_range(0..1_000_000i64);
            let mut qp = Pram::new(1 << 16, Model::Crew);
            let got = dy.search(&path, y, &mut qp);
            steps += qp.steps();
            let want: Vec<Option<i64>> = path
                .iter()
                .map(|&node| dy.logical_catalog(node).into_iter().find(|&k| k >= y))
                .collect();
            assert_eq!(got, want);
            verified += 1;
        }
        let gs = dy.gen_stats();
        let cost_per_op = if gs.incremental_applies > 0 {
            gs.keys_touched as f64 / gs.incremental_applies as f64
        } else {
            0.0
        };
        println!(
            "{:>9}  {:>8}  {:>9}  {:>10.1}  {:>14.1}  {:>10}/{QUERIES}",
            total_updates,
            dy.rebuilds,
            gs.incremental_applies,
            cost_per_op,
            steps as f64 / QUERIES as f64,
            verified
        );
    }

    let gs = dy.gen_stats();
    println!(
        "gen stats: generation {}, {} rebuilds ({} fallback), {} incremental \
         applies touching {} keys, {} live / {} tombstoned entries \
         (ratio {:.4}), {} audit failures",
        gs.generation,
        gs.rebuilds,
        gs.fallback_rebuilds,
        gs.incremental_applies,
        gs.keys_touched,
        gs.live_entries,
        gs.tombstones,
        gs.tombstone_ratio(),
        gs.audit_failures
    );
    assert_eq!(gs.audit_failures, 0, "rebuilds must re-audit clean");
    if gs.incremental_applies > 0 {
        let mean = gs.keys_touched as f64 / gs.incremental_applies as f64;
        let n = dy.structure().tree().total_catalog_size();
        println!(
            "per-update touched cost: {mean:.1} slots+nodes (structure holds \
             {n} entries — cost is per key, not per structure)"
        );
        assert!(
            mean < n as f64 / 10.0,
            "incremental cost must not scale with the structure"
        );
    }
    dy.rebuilds as usize
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let tree = gen::balanced_binary(10, 1 << 14, SizeDist::Uniform, &mut rng);
    println!(
        "initial tree: {} nodes, {} catalog entries",
        tree.len(),
        tree.total_catalog_size()
    );

    let buffered = run(
        DynamicCoop::new(tree.clone(), ParamMode::Auto, 0.25),
        "buffered (clone-and-rebuild baseline)",
        2027,
    );
    let incremental = run(
        DynamicCoop::new_incremental(tree, ParamMode::Auto, 0.25),
        "incremental (fc-dyn node-to-root patches)",
        2027,
    );

    println!(
        "\nsame workload: {buffered} full rebuilds buffered vs {incremental} \
         in incremental mode"
    );
    assert!(
        incremental <= buffered,
        "incremental mode must not rebuild more often than the baseline"
    );
    println!("every query matched the logical (post-update) catalogs exactly");
}
