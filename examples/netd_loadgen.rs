//! Multi-process loadgen gate for the network ingress (registered under
//! fc-net in `crates/net/Cargo.toml`).
//!
//! One binary, three roles (selected by `FC_NET_ROLE`, the same
//! self-exec idiom as `tests/store_recovery.rs`):
//!
//! * **parent** (no role) — orchestrates: spawns the server process
//!   (`fc-netd` if it sits next to this example in the target dir,
//!   otherwise a self-exec'd twin), then drives four phases and asserts
//!   their invariants.
//! * **server** — `fc-netd`'s run loop: deterministic cluster, `FCNET001`
//!   ingress, `LISTENING`/`READY`/`DRAINED` lines on stdout, exit 0 iff
//!   the drain forced nothing.
//! * **client** — rebuilds the seed-derived tree (its own copy of the
//!   sequential oracle), fires paced queries over the wire through
//!   `RetryClient`, verifies every `Ok` against the oracle, and prints
//!   `CLIENT ok <n> err <n> wrong <n>`.
//!
//! Phases and invariants:
//!
//! 1. **Throughput** — 4 client processes at ~200 qps each for 3 s:
//!    zero wrong answers, nonzero throughput.
//! 2. **Overload** — more idle connections than `--max-conns`: every
//!    connection past the cap receives a *typed* `Overloaded` reply,
//!    not a silent close or a hang.
//! 3. **Client kill** — SIGKILL one client mid-stream: the server keeps
//!    serving oracle-equal answers to everyone else.
//! 4. **SIGTERM mid-storm** — TERM the server while 3 clients hammer it:
//!    the server drains (bounded time, zero forced connections, exit 0),
//!    clients see answers or typed errors — never a wrong answer.
//!
//! Run with `cargo run --release -p fc-net --example netd_loadgen`.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogTree, NodeId};
use fc_net::proto::{self, DEFAULT_MAX_FRAME_LEN};
use fc_net::{
    install_sigterm_drain, sigterm_received, ClientConfig, ErrorCode, NetConfig, NetError,
    NetServer, RetryClient,
};
use fc_serve::ServeConfig;
use fc_shard::{ShardCluster, ShardConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TREE_SEED: u64 = 0x10AD_5EED;
const TREE_DEPTH: u32 = 5;
const TREE_KEYS: usize = 1_500;
const KEY_SPAN: i64 = 200_000;
const MAX_CONNS: usize = 24;
const OVERLOAD_EXTRA: usize = 8;
const DRAIN_MS: u64 = 8_000;

fn main() {
    match std::env::var("FC_NET_ROLE").as_deref() {
        Ok("server") => std::process::exit(server_role()),
        Ok("client") => std::process::exit(client_role()),
        _ => parent(),
    }
}

fn build_tree() -> CatalogTree<i64> {
    let mut rng = SmallRng::seed_from_u64(TREE_SEED);
    gen::balanced_binary(TREE_DEPTH, TREE_KEYS, SizeDist::Uniform, &mut rng)
}

// ---------------------------------------------------------------------
// Server role: fc-netd's run loop, self-exec'd (used when the fc-netd
// binary wasn't built alongside this example).
// ---------------------------------------------------------------------

fn server_role() -> i32 {
    install_sigterm_drain();
    let tree = build_tree();
    let cluster = Arc::new(ShardCluster::<i64>::start(
        &tree,
        fc_coop::ParamMode::Auto,
        ShardConfig {
            shards: 3,
            replicas: 2,
            serve: ServeConfig {
                workers: 2,
                default_deadline: Duration::from_secs(5),
                audit_interval: Duration::from_millis(250),
                processors: 1 << 9,
                ..ServeConfig::default()
            },
            batch_threads: 2,
            default_deadline: Duration::from_secs(10),
            ..ShardConfig::default()
        },
    ));
    let server = NetServer::start(
        Arc::clone(&cluster),
        "127.0.0.1:0",
        NetConfig {
            max_conns: MAX_CONNS,
            idle_timeout: Duration::from_secs(3),
            drain_grace: Duration::from_millis(500),
            drain_timeout: Duration::from_millis(DRAIN_MS),
            ..NetConfig::default()
        },
    )
    .expect("bind");
    println!("LISTENING {}", server.local_addr());
    println!("READY");
    let _ = std::io::stdout().flush();
    while !sigterm_received() && !server.is_draining() {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    let report = server.drain();
    println!(
        "DRAINED took_ms {} open_at_drain {} forced {} queries {} answers {} \
         errors {} shed_conns {} proto_errors {}",
        report.took.as_millis(),
        report.open_at_drain,
        report.forced,
        stats.queries,
        stats.answers,
        stats.errors_sent,
        stats.shed_conns,
        stats.proto_errors,
    );
    let _ = std::io::stdout().flush();
    i32::from(report.forced != 0)
}

// ---------------------------------------------------------------------
// Client role: paced oracle-checked load.
// ---------------------------------------------------------------------

fn oracle(tree: &CatalogTree<i64>, leaf: NodeId, y: i64) -> Vec<(u32, Option<i64>)> {
    tree.path_from_root(leaf)
        .iter()
        .map(|&node| {
            let cat = tree.catalog(node);
            (node.0, cat.get(cat.partition_point(|k| *k < y)).copied())
        })
        .collect()
}

fn client_role() -> i32 {
    let addr: SocketAddr = std::env::var("FC_NET_ADDR")
        .expect("FC_NET_ADDR")
        .parse()
        .expect("addr");
    let qps: u64 = std::env::var("FC_NET_QPS")
        .expect("FC_NET_QPS")
        .parse()
        .unwrap();
    let secs: u64 = std::env::var("FC_NET_SECS")
        .expect("FC_NET_SECS")
        .parse()
        .unwrap();
    let cseed: u64 = std::env::var("FC_NET_CSEED")
        .expect("FC_NET_CSEED")
        .parse()
        .unwrap();
    let tree = build_tree();
    let leaves = tree.leaves();
    let mut rng = SmallRng::seed_from_u64(cseed);
    let mut client = RetryClient::new(
        addr,
        ClientConfig {
            read_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        },
        2,
        cseed,
    );
    let period = Duration::from_nanos(1_000_000_000 / qps.max(1));
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(secs);
    let (mut ok, mut err, mut wrong) = (0u64, 0u64, 0u64);
    let mut tick = 0u32;
    while Instant::now() < deadline {
        let leaf = leaves[rng.gen_range(0..leaves.len())];
        let y = rng.gen_range(-KEY_SPAN..KEY_SPAN);
        match client.query(leaf.0, y, Some(Duration::from_secs(2))) {
            Ok(ans) => {
                if ans.entries == oracle(&tree, leaf, y) {
                    ok += 1;
                } else {
                    wrong += 1;
                    eprintln!("CLIENT-WRONG leaf {} key {y}: {:?}", leaf.0, ans.entries);
                }
            }
            // Typed errors and transport failures during shutdown are
            // legal outcomes; *wrong* answers never are.
            Err(NetError::Remote(e)) if e.code == ErrorCode::ShuttingDown => {
                err += 1;
                break; // the server is draining; stop adding load
            }
            Err(_) => err += 1,
        }
        tick += 1;
        let next = t0 + period * tick;
        if let Some(sleep) = next.checked_duration_since(Instant::now()) {
            std::thread::sleep(sleep);
        }
    }
    println!("CLIENT ok {ok} err {err} wrong {wrong}");
    let _ = std::io::stdout().flush();
    i32::from(wrong != 0)
}

// ---------------------------------------------------------------------
// Parent: orchestration + assertions.
// ---------------------------------------------------------------------

struct ServerProc {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
}

fn spawn_server() -> ServerProc {
    let me = std::env::current_exe().expect("current_exe");
    // Prefer the real fc-netd binary when it was built alongside
    // (target/<profile>/examples/netd_loadgen → target/<profile>/fc-netd);
    // otherwise self-exec the server role, which runs the same loop.
    let netd = me
        .parent()
        .and_then(|examples| examples.parent())
        .map(|profile| profile.join("fc-netd"))
        .filter(|p| p.is_file());
    let mut cmd = match netd {
        Some(bin) => {
            let mut c = Command::new(bin);
            c.args([
                "--addr",
                "127.0.0.1:0",
                "--seed",
                &TREE_SEED.to_string(),
                "--depth",
                &TREE_DEPTH.to_string(),
                "--keys",
                &TREE_KEYS.to_string(),
                "--max-conns",
                &MAX_CONNS.to_string(),
                "--idle-ms",
                "3000",
                "--grace-ms",
                "500",
                "--drain-ms",
                &DRAIN_MS.to_string(),
            ]);
            c
        }
        None => {
            let mut c = Command::new(me);
            c.env("FC_NET_ROLE", "server");
            c
        }
    };
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn server");
    let mut reader = BufReader::new(child.stdout.take().expect("server stdout"));
    let mut addr = None;
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("server banner");
        if let Some(rest) = line.trim().strip_prefix("LISTENING ") {
            addr = Some(rest.parse().expect("listen addr"));
        }
    }
    ServerProc {
        child,
        reader,
        addr: addr.expect("server never printed LISTENING"),
    }
}

fn spawn_client(addr: SocketAddr, qps: u64, secs: u64, cseed: u64) -> Child {
    Command::new(std::env::current_exe().expect("current_exe"))
        .env("FC_NET_ROLE", "client")
        .env("FC_NET_ADDR", addr.to_string())
        .env("FC_NET_QPS", qps.to_string())
        .env("FC_NET_SECS", secs.to_string())
        .env("FC_NET_CSEED", cseed.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn client")
}

/// Wait for a client and parse its `CLIENT ok N err N wrong N` line.
fn reap_client(child: Child, phase: &str) -> (u64, u64, u64) {
    let out = child.wait_with_output().expect("client wait");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("CLIENT "))
        .unwrap_or_else(|| panic!("{phase}: client printed no CLIENT line:\n{stdout}"));
    let nums: Vec<u64> = line
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .collect();
    assert_eq!(nums.len(), 3, "{phase}: bad CLIENT line: {line}");
    assert!(
        out.status.success(),
        "{phase}: client exited nonzero ({line})"
    );
    (nums[0], nums[1], nums[2])
}

fn parse_drained(line: &str) -> std::collections::HashMap<String, u64> {
    let words: Vec<&str> = line.split_whitespace().collect();
    words
        .windows(2)
        .filter_map(|w| w[1].parse().ok().map(|v| (w[0].to_string(), v)))
        .collect()
}

fn parent() {
    // --- Phase 1: throughput at the stated qps, zero wrong answers. ---
    let mut srv = spawn_server();
    let addr = srv.addr;
    println!("loadgen: server up at {addr} (pid {})", srv.child.id());
    println!("loadgen: phase 1 — 4 clients × 200 qps × 3 s");
    let clients: Vec<Child> = (0..4)
        .map(|i| spawn_client(addr, 200, 3, 100 + i))
        .collect();
    let (mut total_ok, mut total_err) = (0u64, 0u64);
    for c in clients {
        let (ok, err, wrong) = reap_client(c, "throughput");
        assert_eq!(wrong, 0, "throughput phase produced wrong answers");
        total_ok += ok;
        total_err += err;
    }
    assert!(
        total_ok >= 800,
        "throughput phase: expected ≥800 oracle-equal answers, got {total_ok} (err {total_err})"
    );
    println!("loadgen: phase 1 ok — {total_ok} oracle-equal answers, {total_err} typed errors");

    // --- Phase 2: overload — connections past the cap get a typed
    //     Overloaded reply, not a silent close or a hang. ---
    println!(
        "loadgen: phase 2 — {} holders against a {MAX_CONNS}-conn cap",
        MAX_CONNS + OVERLOAD_EXTRA
    );
    std::thread::sleep(Duration::from_millis(500)); // let phase-1 conns close
    let mut holders = Vec::new();
    let mut overloaded = 0usize;
    for _ in 0..MAX_CONNS + OVERLOAD_EXTRA {
        let s = TcpStream::connect(addr).expect("holder connect");
        s.set_read_timeout(Some(Duration::from_millis(1_000)))
            .unwrap();
        holders.push(s);
    }
    for s in &mut holders {
        if let Ok(frame) = proto::read_frame(s, DEFAULT_MAX_FRAME_LEN) {
            if let Ok((proto::Response::Error(e), _)) =
                proto::decode_response::<i64>(&frame, DEFAULT_MAX_FRAME_LEN)
            {
                assert_eq!(
                    e.code,
                    ErrorCode::Overloaded,
                    "shed connection got a non-Overloaded reply: {e:?}"
                );
                overloaded += 1;
            }
        }
    }
    drop(holders);
    assert!(
        overloaded >= OVERLOAD_EXTRA,
        "expected ≥{OVERLOAD_EXTRA} typed Overloaded sheds, got {overloaded}"
    );
    println!("loadgen: phase 2 ok — {overloaded} typed Overloaded replies");

    // --- Phase 3: SIGKILL a client mid-stream; everyone else unharmed. ---
    println!("loadgen: phase 3 — killing a client mid-stream");
    std::thread::sleep(Duration::from_millis(500)); // let holders close
    let mut victim = spawn_client(addr, 200, 4, 300);
    let survivor = spawn_client(addr, 200, 4, 301);
    std::thread::sleep(Duration::from_secs(1));
    victim.kill().expect("kill client"); // SIGKILL: no goodbye frame
    let _ = victim.wait();
    let (ok, _err, wrong) = reap_client(survivor, "client-kill");
    assert_eq!(wrong, 0, "client-kill phase produced wrong answers");
    assert!(ok > 0, "survivor client made no progress after the kill");
    println!("loadgen: phase 3 ok — survivor answered {ok} queries oracle-equal");

    // --- Phase 4: SIGTERM the server mid-storm; bounded graceful drain,
    //     zero forced connections, zero wrong answers, exit 0. ---
    println!("loadgen: phase 4 — SIGTERM mid-storm");
    let storm: Vec<Child> = (0..3)
        .map(|i| spawn_client(addr, 200, 4, 400 + i))
        .collect();
    std::thread::sleep(Duration::from_secs(1));
    let term = Command::new("kill")
        .args(["-TERM", &srv.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let t_term = Instant::now();

    // Clients ride out the drain: typed errors allowed, wrongness not.
    for c in storm {
        let (_ok, _err, wrong) = reap_client(c, "sigterm-storm");
        assert_eq!(wrong, 0, "sigterm phase produced wrong answers");
    }

    // The server prints DRAINED and exits 0 within the drain bound.
    let mut drained_line = String::new();
    loop {
        let mut line = String::new();
        if srv.reader.read_line(&mut line).expect("server stdout") == 0 {
            break;
        }
        if line.starts_with("DRAINED ") {
            drained_line = line;
        }
    }
    assert!(!drained_line.is_empty(), "server never printed DRAINED");
    let fields = parse_drained(&drained_line);
    let status = loop {
        if let Some(st) = srv.child.try_wait().expect("server wait") {
            break st;
        }
        assert!(
            t_term.elapsed() < Duration::from_millis(DRAIN_MS + 5_000),
            "server did not exit within the drain bound"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        status.success(),
        "server exited nonzero after SIGTERM: {status}"
    );
    assert_eq!(
        fields.get("forced").copied(),
        Some(0),
        "drain forced connections closed: {drained_line}"
    );
    let took = fields.get("took_ms").copied().unwrap_or(u64::MAX);
    assert!(
        took <= DRAIN_MS,
        "drain took {took} ms, bound is {DRAIN_MS} ms: {drained_line}"
    );
    let answers = fields.get("answers").copied().unwrap_or(0);
    assert!(answers > 0, "server served no answers: {drained_line}");
    println!("loadgen: phase 4 ok — drained in {took} ms, forced 0, {answers} answers served");
    println!("loadgen: PASS — zero silently-wrong answers across all phases");
}
