//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors the subset of criterion's API its benches call:
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark closure is
//! timed over a handful of iterations and the mean is printed — enough for
//! a sanity-check `cargo bench`, with none of criterion's statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean = Some(start.elapsed() / self.iters as u32);
    }
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 5 }
    }
}

impl Criterion {
    /// Accepted for compatibility; the stub keys iteration count off this.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.iters = (n as u64).clamp(1, 50);
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.iters, name, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(iters: u64, label: &str, mut f: F) {
    let mut b = Bencher { iters, mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench {label:<40} {mean:>12.2?}/iter"),
        None => println!("bench {label:<40} (no iter() call)"),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sampling config.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(self.c.iters, &format!("{}/{}", self.name, id), f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(self.c.iters, &format!("{}/{}", self.name, id.full), |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("f", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| b.iter(|| p * p));
        g.finish();
    }
}
