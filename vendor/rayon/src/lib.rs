//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors a sequential shim with the same call surface:
//! `par_iter`/`into_par_iter`/`par_chunks`/`par_chunks_mut` return ordinary
//! std iterators (every adaptor — `map`, `zip`, `for_each`, `collect` —
//! comes for free), and [`join`] runs its closures back to back. The PRAM
//! cost model in `fc-pram` charges steps analytically, so wall-clock
//! parallelism is an optimization, not a correctness requirement, anywhere
//! this shim is used.

#![warn(missing_docs)]

/// Run both closures (sequentially, in order) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads a real pool would use on this host.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `into_par_iter` for owning collections and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Sequential shim: identical to `into_iter`.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// `par_iter` for borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Iterator type produced (the std borrowed iterator).
    type Iter: Iterator;
    /// Sequential shim: identical to `iter`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut` for mutably borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Iterator type produced (the std mutable iterator).
    type Iter: Iterator;
    /// Sequential shim: identical to `iter_mut`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T> {
    /// Sequential shim: identical to `chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Chunked traversal of mutable slices.
pub trait ParallelSliceMut<T> {
    /// Sequential shim: identical to `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn shims_match_std() {
        let v = vec![1, 2, 3, 4, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let squares: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
        let mut out = vec![0u64; 5];
        out.par_chunks_mut(2)
            .zip(v.par_chunks(2))
            .for_each(|(o, i)| o.iter_mut().zip(i).for_each(|(a, b)| *a = *b as u64));
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        let (a, b) = crate::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert!(crate::current_num_threads() >= 1);
    }
}
