//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors the minimal surface it actually uses: a seedable,
//! deterministic [`SmallRng`] (SplitMix64) plus the [`Rng`] / [`SeedableRng`]
//! traits with `gen_range` / `gen_bool` / `gen`. Determinism per seed is the
//! only contract the workspace relies on (all callers seed explicitly via
//! `seed_from_u64`); statistical quality beyond SplitMix64 is not needed.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` so that
/// `Range<T>: SampleRange<T>` is a single blanket impl — which is what
/// lets integer-literal ranges infer their type from the use site.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let width = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(width > 0, "gen_range: empty range");
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::from_rng(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f32::from_rng(rng)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::from_rng(self) < p
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
