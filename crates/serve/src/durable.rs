//! [`DurableService`]: a [`Service`] whose updates survive `kill -9`.
//!
//! The wrapper pairs one service with one [`fc_store::Store`] directory
//! and enforces the write-ahead contract:
//!
//! * **Create** persists the generation-0 snapshot *before* the service
//!   starts — an empty store directory can never be mistaken for an empty
//!   tree.
//! * **Every update batch** is appended (and fsynced) to the WAL *before*
//!   the in-memory [`DynamicCoop`](fc_coop::dynamic::DynamicCoop) buffers
//!   see it, so an acknowledged `update_batch` is durable by the time it
//!   returns.
//! * **Every publish** (threshold rebuild or explicit
//!   [`DurableService::checkpoint`]) persists the newly published
//!   generation as a snapshot watermarked at the last appended sequence
//!   number, then prunes snapshots and dead WAL segments.
//! * **Recovery** ([`DurableService::recover`]) replays
//!   snapshot + WAL through [`fc_store::recover`], re-persists the
//!   recovered state as a fresh snapshot (so the next crash recovers from
//!   one snapshot, not snapshot + long log), and only then starts serving.
//!
//! Durability only covers updates routed through this wrapper: calling
//! [`Service::update_batch`] directly on the inner service bypasses the
//! log by construction.

use crate::service::{ServeConfig, ServeStats, Service};
use fc_catalog::{CatalogKey, CatalogTree};
use fc_coop::dynamic::UpdateOp;
use fc_coop::ParamMode;
use fc_store::{KeyCodec, Recovered, Store, StoreConfig, StoreError};
use std::path::Path;
use std::sync::Mutex;

/// A [`Service`] with snapshot + WAL durability. See the module docs for
/// the write-ahead contract.
pub struct DurableService<K: CatalogKey + KeyCodec> {
    svc: Service<K>,
    store: Store<K>,
    /// Serializes durable writers so the WAL order equals the apply order.
    write_lock: Mutex<()>,
}

impl<K: CatalogKey + KeyCodec> DurableService<K> {
    /// Start a fresh durable service over `tree`, persisting the
    /// generation-0 snapshot to `dir` before serving begins.
    pub fn create(
        dir: &Path,
        tree: CatalogTree<K>,
        mode: ParamMode,
        cfg: ServeConfig,
        store_cfg: StoreConfig,
    ) -> Result<Self, StoreError> {
        let store = Store::open(dir, store_cfg)?;
        store.persist_snapshot(&tree, 0)?;
        let svc = Service::start(tree, mode, cfg);
        Ok(DurableService {
            svc,
            store,
            write_lock: Mutex::new(()),
        })
    }

    /// Recover from `dir` (newest valid snapshot + WAL replay + audit —
    /// see [`fc_store::recover`]) and start serving the recovered state.
    /// Returns the recovery report alongside the running service; refuses
    /// with a typed [`StoreError`] rather than serve anything the audit
    /// cannot prove clean.
    pub fn recover(
        dir: &Path,
        mode: ParamMode,
        cfg: ServeConfig,
        store_cfg: StoreConfig,
    ) -> Result<(Self, Recovered<K>), StoreError> {
        let rec = fc_store::recover::<K>(dir)?;
        let store = Store::open(dir, store_cfg)?;
        // Re-persist the recovered state so the next recovery starts from
        // one snapshot instead of re-replaying the whole log (§12's
        // WAL-vs-rebuild trade), then drop what that snapshot covers.
        store.persist_snapshot(&rec.tree, rec.generation)?;
        store.prune()?;
        let svc = Service::start(rec.tree.clone(), mode, cfg);
        Ok((
            DurableService {
                svc,
                store,
                write_lock: Mutex::new(()),
            },
            rec,
        ))
    }

    /// Apply one update batch durably: WAL append (fsynced) first, then
    /// the in-memory apply. Returns `true` when the batch triggered a
    /// rebuild (the new generation is snapshotted before returning).
    pub fn update_batch(&self, ops: &[UpdateOp<K>]) -> Result<bool, StoreError> {
        let _g = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        // fc-lint: allow(lock-discipline) -- intentional: WAL append order must equal apply order, so writers serialize across the fsync
        self.store.append_batch(ops)?;
        // fc-lint: allow(lock-discipline) -- intentional: the apply (and any rebuild fsync) stays under the writer lock to keep WAL order = apply order
        let rebuilt = self.svc.update_batch(ops);
        if rebuilt {
            // fc-lint: allow(lock-discipline) -- intentional: snapshot the generation this batch published before admitting the next writer
            self.persist_published()?;
        }
        Ok(rebuilt)
    }

    /// Force a rebuild + publish and persist the published generation.
    /// Returns the new snapshot id.
    pub fn checkpoint(&self) -> Result<u64, StoreError> {
        let _g = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        // fc-lint: allow(lock-discipline) -- intentional: checkpoint publishes and persists atomically w.r.t. concurrent writers
        self.svc.force_publish();
        // fc-lint: allow(lock-discipline) -- intentional: persist the exact generation just published, before the next writer moves it
        self.persist_published()
    }

    /// Persist the just-published generation: log a rebuild marker first
    /// (epoch-cut provenance), then snapshot watermarked past it, so a
    /// crash between the two replays the marker, never loses it.
    fn persist_published(&self) -> Result<u64, StoreError> {
        let generation = self.svc.gen_stats().generation;
        self.store.append_rebuild_marker(generation)?;
        let snapshot = self.svc.snapshot();
        let id = self
            .store
            .persist_snapshot(snapshot.st.tree(), generation)?;
        self.store.prune()?;
        Ok(id)
    }

    /// The inner service (queries, audits, health — everything except
    /// updates, which must go through [`DurableService::update_batch`] to
    /// stay durable).
    pub fn service(&self) -> &Service<K> {
        &self.svc
    }

    /// The underlying store (for tests and observability).
    pub fn store(&self) -> &Store<K> {
        &self.store
    }

    /// Stop the service and return its counters. The store files remain
    /// on disk for the next [`DurableService::recover`].
    pub fn shutdown(self) -> ServeStats {
        self.svc.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::fs;
    use std::path::PathBuf;
    use std::time::Duration;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-durable-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            audit_interval: Duration::from_millis(50),
            ..ServeConfig::default()
        }
    }

    fn no_fsync() -> StoreConfig {
        StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        }
    }

    fn tree(seed: u64) -> CatalogTree<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        gen::balanced_binary(4, 600, SizeDist::Uniform, &mut rng)
    }

    #[test]
    fn create_update_shutdown_recover_round_trips() {
        let dir = tmp("roundtrip");
        let t = tree(31);
        let ds = DurableService::create(&dir, t.clone(), ParamMode::Auto, small_cfg(), no_fsync())
            .unwrap();
        for i in 0..20i64 {
            let node = NodeId((i % t.len() as i64) as u32);
            ds.update_batch(&[UpdateOp::Insert(node, 5_000_000 + i)])
                .unwrap();
        }
        ds.checkpoint().unwrap();
        let stats = ds.shutdown();
        assert_eq!(stats.submitted, 0);

        let (ds2, rec) =
            DurableService::<i64>::recover(&dir, ParamMode::Auto, small_cfg(), no_fsync()).unwrap();
        assert_eq!(rec.last_seq, 21, "20 updates + the checkpoint marker");
        assert_eq!(
            rec.replayed_records, 0,
            "checkpoint watermarked the whole log, marker included"
        );
        assert_eq!(rec.rebuild_markers, 0, "marker covered by the snapshot");
        // Every inserted key is present in the recovered service's
        // published generation.
        let snapshot = ds2.service().snapshot();
        let inserted_node = NodeId(0);
        assert!(snapshot
            .st
            .tree()
            .catalog(inserted_node)
            .contains(&5_000_000));
        // And durable updates continue seamlessly after recovery.
        ds2.update_batch(&[UpdateOp::Insert(NodeId(1), 6_000_000)])
            .unwrap();
        assert_eq!(ds2.store().last_seq(), 22);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_mode_updates_survive_unclean_stop() {
        let dir = tmp("incr");
        let t = tree(35);
        let cfg = ServeConfig {
            incremental: true,
            ..small_cfg()
        };
        let ds = DurableService::create(&dir, t, ParamMode::Auto, cfg.clone(), no_fsync()).unwrap();
        for i in 0..30i64 {
            let node = NodeId((i % 7) as u32);
            ds.update_batch(&[UpdateOp::Insert(node, 8_000_000 + i)])
                .unwrap();
        }
        let gs = ds.service().gen_stats();
        assert_eq!(gs.incremental_applies, 30, "fast path took every op");
        drop(ds); // unclean stop: the ops live only in the WAL
        let (ds2, rec) =
            DurableService::<i64>::recover(&dir, ParamMode::Auto, cfg, no_fsync()).unwrap();
        assert_eq!(rec.replayed_records, 30);
        let snapshot = ds2.service().snapshot();
        for i in 0..30i64 {
            let node = NodeId((i % 7) as u32);
            assert!(
                snapshot.st.tree().catalog(node).contains(&(8_000_000 + i)),
                "acked incremental update {i} lost"
            );
        }
        // An uncovered marker (crash between marker append and snapshot
        // persist) replays as provenance, not as an error.
        ds2.store().append_rebuild_marker(99).unwrap();
        drop(ds2);
        let (_ds3, rec3) = DurableService::<i64>::recover(
            &dir,
            ParamMode::Auto,
            ServeConfig {
                incremental: true,
                ..small_cfg()
            },
            no_fsync(),
        )
        .unwrap();
        assert_eq!(rec3.rebuild_markers, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replays_unsnapshotted_tail() {
        let dir = tmp("tail");
        let t = tree(33);
        let ds = DurableService::create(&dir, t, ParamMode::Auto, small_cfg(), no_fsync()).unwrap();
        // No checkpoint: these live only in the WAL.
        for i in 0..7i64 {
            ds.update_batch(&[UpdateOp::Insert(NodeId(2), 7_000_000 + i)])
                .unwrap();
        }
        drop(ds); // simulate an unclean stop: no checkpoint, no shutdown
        let (ds2, rec) =
            DurableService::<i64>::recover(&dir, ParamMode::Auto, small_cfg(), no_fsync()).unwrap();
        assert_eq!(rec.replayed_records, 7);
        let snapshot = ds2.service().snapshot();
        for i in 0..7i64 {
            assert!(
                snapshot
                    .st
                    .tree()
                    .catalog(NodeId(2))
                    .contains(&(7_000_000 + i)),
                "key {i} lost"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
