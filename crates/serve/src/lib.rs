//! # fc-serve — deadline-aware concurrent serving of cooperative searches
//!
//! The paper's cooperative search is a PRAM algorithm; this crate wraps the
//! workspace's implementation (`fc-coop`) in a production-shaped *service*
//! so the robustness machinery (`fc-resilience`) can be exercised under
//! concurrency, deadlines, and injected chaos:
//!
//! * [`service::Service`] — a std-thread worker pool answering path
//!   queries against immutable published generations;
//! * [`epoch::EpochPtr`] — epoch-based hot swap: rebuilds publish with one
//!   atomic swap, in-flight readers drain on the old generation, and
//!   retired generations are reclaimed only when every reader slot has
//!   moved past the retire epoch (readers never block on the writer);
//! * [`queue::AdmissionQueue`] — bounded admission with immediate load
//!   shedding;
//! * per-query deadlines propagated into the search itself via
//!   `fc_coop::CancelToken` (polled at every descent step);
//! * [`backoff::DecorrelatedJitter`] — retry backoff for transient
//!   structural failures (a corrupted generation that a repair republish
//!   fixes between attempts);
//! * [`quarantine::Quarantine`] — a circuit breaker over audit-blamed
//!   subtrees: quarantined paths are served by a degraded per-node binary
//!   search over the authoritative native catalogs until probe queries
//!   certify the repaired structure;
//! * a background auditor thread running `fc-resilience`'s audit on a
//!   schedule (and on demand when a worker detects corruption), repairing
//!   and republishing.
//!
//! The service's contract: **a query either returns an answer equal to the
//! sequential oracle on the generation that served it, or a typed
//! [`ServeError`] — never a silently wrong answer.** The chaos harness
//! (`examples/chaos_serve.rs`, `tests/serve_concurrency.rs`) asserts this
//! over ≥10⁵ mixed query/update/fault/kill operations.

#![warn(missing_docs)]

pub mod backoff;
pub mod durable;
pub mod epoch;
pub mod error;
pub mod quarantine;
pub mod queue;
pub mod service;
mod worker;

pub use backoff::DecorrelatedJitter;
pub use durable::DurableService;
pub use epoch::EpochPtr;
pub use error::ServeError;
pub use quarantine::{BreakerState, Quarantine};
pub use queue::{AdmissionQueue, PushError};
pub use service::{
    Generation, QueryOk, QueryResult, ReplicaHealth, ServeConfig, ServeStats, Service,
};
