//! The query service: workers, auditor, updates, and generation publishing.
//!
//! ## Threads and ownership
//!
//! * **Query workers** (`cfg.workers` threads) pop jobs from the
//!   [`AdmissionQueue`] and execute them against an immutable published
//!   [`Generation`] acquired through the [`EpochPtr`]. Workers never touch
//!   the writer state, so queries make progress during rebuilds by
//!   construction — there is no lock a reader could wait on.
//! * **The writer** (a [`Mutex`]-guarded [`DynamicCoop`]) is mutated only by
//!   update callers and the auditor. A rebuild (threshold-triggered or
//!   forced) cuts a new [`Generation`] snapshot and publishes it with one
//!   atomic swap; in-flight queries drain on the generation they pinned.
//! * **The auditor** wakes on a schedule (or on demand, when a worker's
//!   checked search detects corruption), audits the *published* generation
//!   plus the writer's buffers, quarantines blamed subtrees behind the
//!   [`Quarantine`] circuit breaker, repairs the writer state in place
//!   (localized, audit-guided), republishes, and half-opens the breaker so
//!   probe queries can close it.
//!
//! ## Answer integrity
//!
//! The fault model treats native catalogs as authoritative; everything else
//! is derived. A query answer is produced by the checked cooperative search
//! and then (by default) verified per node against the native catalog, so
//! an `Ok` answer always equals the oracle answer *on the generation that
//! served it* — corruption can cost latency (retries, degraded reads,
//! quarantine), never silent wrongness.

use crate::epoch::EpochPtr;
use crate::error::ServeError;
use crate::quarantine::{BreakerState, Quarantine};
use crate::queue::{AdmissionQueue, PushError};
use crate::worker;
use fc_catalog::{CatalogKey, CatalogTree, NodeId};
use fc_coop::dynamic::{DynamicCoop, GenStats, UpdateOp};
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use fc_resilience::{audit, repair, Blame, FaultPlan, FaultSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunables for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Query worker threads (0 is allowed — useful for admission tests).
    pub workers: usize,
    /// Admission queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Deadline applied when a query does not carry its own.
    pub default_deadline: Duration,
    /// Cooperative-search retries before falling back to a degraded read.
    pub retries: u32,
    /// Decorrelated-jitter backoff floor between retries.
    pub backoff_base: Duration,
    /// Decorrelated-jitter backoff ceiling between retries.
    pub backoff_cap: Duration,
    /// Background audit period (the auditor also wakes on demand).
    pub audit_interval: Duration,
    /// Virtual processors per query's cooperative search.
    pub processors: usize,
    /// Serve quarantined / persistently failing queries from the native
    /// catalogs instead of erroring.
    pub degraded_reads: bool,
    /// Verify every exact answer against the native catalog (cheap:
    /// `O(path · log)`; turns any corruption the checked search misses
    /// into a detected error instead of a wrong answer).
    pub verify_answers: bool,
    /// In half-open quarantine, every `probe_every`-th quarantined-path
    /// query probes the cooperative path.
    pub probe_every: u64,
    /// Consecutive probe successes that close the breaker.
    pub close_after: u64,
    /// Rebuild threshold as a fraction of total catalog size (see
    /// [`DynamicCoop::new`]).
    pub rebuild_frac: f64,
    /// Run the writer in `fc-dyn` incremental mode: updates patch bridges
    /// and samples along the affected node-to-root path (cost per key
    /// touched) instead of buffering toward threshold rebuilds. Published
    /// generations then only advance on fallback rebuilds (density
    /// violation, detected corruption) or explicit checkpoints.
    pub incremental: bool,
    /// Seed for worker backoff jitter.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 256,
            default_deadline: Duration::from_millis(250),
            retries: 3,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
            audit_interval: Duration::from_millis(100),
            processors: 1 << 12,
            degraded_reads: true,
            verify_answers: true,
            probe_every: 4,
            close_after: 4,
            rebuild_frac: 0.25,
            incremental: false,
            seed: 0x5E12_FE11,
        }
    }
}

/// One published, immutable snapshot of the search structure.
pub struct Generation<K: CatalogKey> {
    /// Monotone publish id (0 = the generation cut at [`Service::start`]).
    pub id: u64,
    /// The static cooperative structure queries run against.
    pub st: CoopStructure<K>,
}

/// A successful query.
pub struct QueryOk<K: CatalogKey> {
    /// Per-path-node answers: the smallest native catalog entry `>= y`
    /// (`None` = `+∞`), exactly as the sequential oracle on
    /// [`QueryOk::gen`] would report.
    pub answers: Vec<Option<K>>,
    /// The root-to-leaf path the query descended (on [`QueryOk::gen`]).
    pub path: Vec<NodeId>,
    /// The generation that served the answer — tests oracle against this,
    /// not against "the latest" structure.
    pub gen: Arc<Generation<K>>,
    /// `true` if the answer came from the degraded per-node binary search
    /// (quarantine or persistent cooperative-search failure).
    pub degraded: bool,
    /// Cooperative-search attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// What a query resolves to.
pub type QueryResult<K> = Result<QueryOk<K>, ServeError>;

impl<K: CatalogKey> std::fmt::Debug for Generation<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generation")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<K: CatalogKey> std::fmt::Debug for QueryOk<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryOk")
            .field("answers", &self.answers)
            .field("path", &self.path)
            .field("gen", &self.gen.id)
            .field("degraded", &self.degraded)
            .field("attempts", &self.attempts)
            .finish()
    }
}

/// One admitted query job.
pub(crate) struct Job<K: CatalogKey> {
    pub(crate) leaf: NodeId,
    pub(crate) y: K,
    pub(crate) deadline: Instant,
    pub(crate) resp: mpsc::Sender<QueryResult<K>>,
}

/// Monotone event counters (atomics; see [`ServeStats`] for the snapshot).
#[derive(Default)]
pub(crate) struct Stats {
    pub(crate) submitted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) completed_exact: AtomicU64,
    pub(crate) completed_degraded: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) quarantined_rejects: AtomicU64,
    pub(crate) structural_failures: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) corruption_detected: AtomicU64,
    pub(crate) probes: AtomicU64,
    pub(crate) probe_failures: AtomicU64,
    pub(crate) audits_run: AtomicU64,
    pub(crate) audits_dirty: AtomicU64,
    pub(crate) repairs: AtomicU64,
    pub(crate) generations_published: AtomicU64,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries admitted to the queue.
    pub submitted: u64,
    /// Queries shed at admission (queue full).
    pub shed: u64,
    /// Queries answered by the cooperative search.
    pub completed_exact: u64,
    /// Queries answered by the degraded per-node binary search.
    pub completed_degraded: u64,
    /// Queries abandoned at their deadline.
    pub timeouts: u64,
    /// Quarantined-path queries rejected (degraded reads disabled).
    pub quarantined_rejects: u64,
    /// Queries that exhausted retries with degraded reads disabled.
    pub structural_failures: u64,
    /// Cooperative-search retries performed.
    pub retries: u64,
    /// Structural errors detected by the checked search / verifier.
    pub corruption_detected: u64,
    /// Half-open probe queries sent through the cooperative path.
    pub probes: u64,
    /// Probes that failed (re-opening the breaker).
    pub probe_failures: u64,
    /// Audit cycles run.
    pub audits_run: u64,
    /// Audit cycles that found corruption.
    pub audits_dirty: u64,
    /// Repair passes performed on the writer state.
    pub repairs: u64,
    /// Generations published (rebuilds + repairs; excludes generation 0).
    pub generations_published: u64,
    /// Breaker transitions into `Open` (including re-opens).
    pub quarantine_opens: u64,
}

/// A point-in-time health snapshot of one service instance, exposed for
/// cluster-level routing (`fc-shard` replica failover and hot-shard
/// detection). Cheap: atomic loads plus one queue-length lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Quarantine circuit-breaker state (`Closed` = fully healthy).
    pub breaker: BreakerState,
    /// Number of currently quarantined arena nodes.
    pub quarantined_nodes: usize,
    /// Queries currently waiting in the admission queue.
    pub queue_len: usize,
    /// Admission queue capacity (the shed threshold).
    pub queue_cap: usize,
    /// Queries shed at admission so far.
    pub shed: u64,
    /// Queries admitted so far.
    pub submitted: u64,
    /// Current epoch of the generation pointer (bumped once per publish).
    pub epoch: u64,
}

impl ReplicaHealth {
    /// Saturation of the admission queue in `[0, 1]` — the routing signal
    /// the shard rebalancer combines with shed counts to find hot shards.
    pub fn queue_frac(&self) -> f64 {
        self.queue_len as f64 / self.queue_cap.max(1) as f64
    }
}

/// State shared by the service handle, the workers, and the auditor.
pub(crate) struct Shared<K: CatalogKey> {
    pub(crate) cfg: ServeConfig,
    pub(crate) epoch: EpochPtr<Generation<K>>,
    pub(crate) queue: AdmissionQueue<Job<K>>,
    pub(crate) quarantine: Quarantine,
    pub(crate) stats: Stats,
    pub(crate) shutdown: AtomicBool,
    pub(crate) audit_wake: (Mutex<bool>, Condvar),
    /// One-shot processor-kill schedule: the next query attempt takes it.
    pub(crate) kill_plan: Mutex<Option<FaultPlan>>,
}

impl<K: CatalogKey> Shared<K> {
    /// Wake the auditor thread now (idempotent).
    pub(crate) fn request_audit(&self) {
        let (lock, cv) = &self.audit_wake;
        let mut pending = lock.lock().unwrap_or_else(|p| p.into_inner());
        *pending = true;
        drop(pending);
        cv.notify_all();
    }
}

/// The mutable writer side: the dynamic structure plus its cost meter.
pub(crate) struct Writer<K: CatalogKey> {
    pub(crate) dy: DynamicCoop<K>,
    pub(crate) pram: Pram,
    pub(crate) next_gen: u64,
}

/// A running query service (see module docs). Dropping the handle shuts
/// the service down; [`Service::shutdown`] does the same and returns the
/// final counters.
pub struct Service<K: CatalogKey> {
    shared: Arc<Shared<K>>,
    writer: Arc<Mutex<Writer<K>>>,
    workers: Vec<JoinHandle<()>>,
    auditor: Option<JoinHandle<()>>,
    ext_slot: usize,
    ext_lock: Mutex<()>,
}

impl<K: CatalogKey> Service<K> {
    /// Preprocess `tree`, publish generation 0, and spawn the worker pool
    /// and the auditor.
    pub fn start(tree: CatalogTree<K>, mode: ParamMode, cfg: ServeConfig) -> Self {
        let frac = cfg.rebuild_frac.max(f64::MIN_POSITIVE);
        let dy = if cfg.incremental {
            DynamicCoop::new_incremental(tree, mode, frac)
        } else {
            DynamicCoop::new(tree, mode, frac)
        };
        let gen0 = Arc::new(Generation {
            id: 0,
            st: dy.structure().clone(),
        });
        // Slot layout: [0, workers) = query workers, then auditor, then one
        // externally lockable slot for Service::snapshot/audit_blocking.
        let shared = Arc::new(Shared {
            epoch: EpochPtr::new(gen0, cfg.workers + 2),
            queue: AdmissionQueue::new(cfg.queue_cap),
            quarantine: Quarantine::new(cfg.probe_every, cfg.close_after),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            audit_wake: (Mutex::new(false), Condvar::new()),
            kill_plan: Mutex::new(None),
            cfg,
        });
        let writer = Arc::new(Mutex::new(Writer {
            dy,
            pram: Pram::new(shared.cfg.processors.max(1), Model::Crew),
            next_gen: 0,
        }));
        let workers = (0..shared.cfg.workers)
            .map(|slot| {
                let sh = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("fc-serve-w{slot}"))
                    .spawn(move || worker::worker_loop(sh, slot))
                    .expect("spawn query worker")
            })
            .collect();
        let auditor_slot = shared.cfg.workers;
        let auditor = {
            let sh = Arc::clone(&shared);
            let wr = Arc::clone(&writer);
            thread::Builder::new()
                .name("fc-serve-auditor".to_owned())
                .spawn(move || auditor_loop(sh, wr, auditor_slot))
                .expect("spawn auditor")
        };
        Service {
            ext_slot: auditor_slot + 1,
            shared,
            writer,
            workers,
            auditor: Some(auditor),
            ext_lock: Mutex::new(()),
        }
    }

    /// Submit a query for the smallest logical entry `>= y` at every node
    /// on the root-to-leaf path of `leaf`. Non-blocking: returns the
    /// response channel, or sheds immediately when the queue is full.
    /// `deadline` defaults to [`ServeConfig::default_deadline`].
    pub fn submit(
        &self,
        leaf: NodeId,
        y: K,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<QueryResult<K>>, ServeError> {
        if self.shared.shutdown.load(SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        let budget = deadline.unwrap_or(self.shared.cfg.default_deadline);
        let job = Job {
            leaf,
            y,
            deadline: Instant::now() + budget,
            resp: tx,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, SeqCst);
                Ok(rx)
            }
            Err(PushError::Full(_)) => {
                self.shared.stats.shed.fetch_add(1, SeqCst);
                Err(ServeError::Shed {
                    queue_len: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// [`Service::submit`] and wait for the answer.
    pub fn query_blocking(&self, leaf: NodeId, y: K, deadline: Option<Duration>) -> QueryResult<K> {
        let rx = self.submit(leaf, y, deadline)?;
        rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Apply one update; returns `true` if it triggered a rebuild (and a
    /// new generation was published).
    pub fn update(&self, op: UpdateOp<K>) -> bool {
        self.update_batch(&[op])
    }

    /// Apply a batch of updates atomically with respect to rebuilds (see
    /// [`DynamicCoop::apply_batch`]); publishes a new generation if the
    /// commit point rebuilt. Queries keep draining on the old generation
    /// throughout.
    pub fn update_batch(&self, ops: &[UpdateOp<K>]) -> bool {
        let mut guard = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let w = &mut *guard;
        let rebuilt = w.dy.apply_batch(ops, &mut w.pram);
        if rebuilt {
            // fc-lint: allow(lock-discipline) -- by design: publish_locked requires the writer lock; readers never take it (epoch pin only)
            publish_locked(&self.shared, w);
        }
        rebuilt
    }

    /// Drain all buffered updates into the catalogs now and publish the
    /// resulting generation, regardless of the rebuild threshold.
    pub fn force_publish(&self) {
        let mut guard = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let w = &mut *guard;
        w.dy.force_rebuild(&mut w.pram);
        // fc-lint: allow(lock-discipline) -- by design: publish_locked requires the writer lock; readers never take it (epoch pin only)
        publish_locked(&self.shared, w);
    }

    /// Chaos hook: resolve `spec` into a fault plan, apply it to the
    /// writer state (static structure + dynamic buffers), and publish the
    /// corrupted snapshot — modelling a bad replica push. Returns the
    /// plan for logging/replay.
    pub fn inject(&self, spec: &FaultSpec, seed: u64) -> FaultPlan {
        let mut guard = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let w = &mut *guard;
        let plan = FaultPlan::generate_dynamic(&w.dy, spec, seed);
        plan.apply_dynamic(&mut w.dy);
        // fc-lint: allow(lock-discipline) -- by design: publish_locked requires the writer lock; readers never take it (epoch pin only)
        publish_locked(&self.shared, w);
        plan
    }

    /// Chaos hook: arm a one-shot processor-kill schedule; exactly one
    /// subsequent query attempt runs under it.
    pub fn arm_kills(&self, plan: FaultPlan) {
        let mut slot = self
            .shared
            .kill_plan
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *slot = Some(plan);
    }

    /// Wake the background auditor now.
    pub fn trigger_audit(&self) {
        self.shared.request_audit();
    }

    /// Run one audit cycle synchronously on the caller's thread (same
    /// logic as the background auditor). Returns `true` if corruption was
    /// found (and repaired + republished).
    pub fn audit_blocking(&self) -> bool {
        let _ext = self.ext_lock.lock().unwrap_or_else(|p| p.into_inner());
        // fc-lint: allow(lock-discipline) -- intentional: ext_lock serializes external pin/audit callers; audit_cycle's publish happens under the writer lock it takes itself
        audit_cycle(&self.shared, &self.writer, self.ext_slot)
    }

    /// Pin and return the currently published generation.
    pub fn snapshot(&self) -> Arc<Generation<K>> {
        let _ext = self.ext_lock.lock().unwrap_or_else(|p| p.into_inner());
        self.shared.epoch.load(self.ext_slot)
    }

    /// Rebuild/generation counters of the writer state.
    pub fn gen_stats(&self) -> GenStats {
        self.writer
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .dy
            .gen_stats()
    }

    /// Current quarantine breaker state.
    pub fn quarantine_state(&self) -> BreakerState {
        self.shared.quarantine.state()
    }

    /// Currently quarantined arena nodes.
    pub fn quarantined_nodes(&self) -> Vec<u32> {
        self.shared.quarantine.nodes()
    }

    /// Health snapshot for cluster routing (see [`ReplicaHealth`]).
    pub fn health(&self) -> ReplicaHealth {
        ReplicaHealth {
            breaker: self.shared.quarantine.state(),
            quarantined_nodes: self.shared.quarantine.nodes().len(),
            queue_len: self.shared.queue.len(),
            queue_cap: self.shared.queue.capacity(),
            shed: self.shared.stats.shed.load(SeqCst),
            submitted: self.shared.stats.submitted.load(SeqCst),
            epoch: self.shared.epoch.epoch(),
        }
    }

    /// Queries currently waiting in the admission queue (admission hook
    /// for cluster-level load balancing).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Chaos hook: force-open the quarantine breaker over `nodes` without
    /// running an audit — models a replica whose entire structure is
    /// distrusted (e.g. a failed health check). Queries crossing the set
    /// degrade or reject exactly as with an audit-driven open; the next
    /// audit cycle repairs and half-opens as usual.
    pub fn force_quarantine(&self, nodes: impl IntoIterator<Item = u32>) {
        self.shared.quarantine.open(nodes);
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        ServeStats {
            submitted: s.submitted.load(SeqCst),
            shed: s.shed.load(SeqCst),
            completed_exact: s.completed_exact.load(SeqCst),
            completed_degraded: s.completed_degraded.load(SeqCst),
            timeouts: s.timeouts.load(SeqCst),
            quarantined_rejects: s.quarantined_rejects.load(SeqCst),
            structural_failures: s.structural_failures.load(SeqCst),
            retries: s.retries.load(SeqCst),
            corruption_detected: s.corruption_detected.load(SeqCst),
            probes: s.probes.load(SeqCst),
            probe_failures: s.probe_failures.load(SeqCst),
            audits_run: s.audits_run.load(SeqCst),
            audits_dirty: s.audits_dirty.load(SeqCst),
            repairs: s.repairs.load(SeqCst),
            generations_published: s.generations_published.load(SeqCst),
            quarantine_opens: self.shared.quarantine.opens(),
        }
    }

    /// Stop admitting, drain, join all threads, and return the final
    /// counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        self.shared.queue.close();
        self.shared.request_audit();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.auditor.take() {
            let _ = h.join();
        }
        self.shared.epoch.try_reclaim();
    }
}

impl<K: CatalogKey> Drop for Service<K> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Cut a snapshot of the writer's structure and publish it. Caller holds
/// the writer lock; readers are unaffected (one atomic swap).
pub(crate) fn publish_locked<K: CatalogKey>(shared: &Shared<K>, w: &mut Writer<K>) {
    w.next_gen += 1;
    let gen = Arc::new(Generation {
        id: w.next_gen,
        st: w.dy.structure().clone(),
    });
    shared.epoch.swap(gen);
    shared.stats.generations_published.fetch_add(1, SeqCst);
}

/// One auditor cycle: audit the published generation and the writer's
/// buffers; on corruption, quarantine the blamed region, repair the writer
/// state (localized, audit-guided), republish, and half-open the breaker.
/// Returns `true` if corruption was found.
pub(crate) fn audit_cycle<K: CatalogKey>(
    shared: &Shared<K>,
    writer: &Mutex<Writer<K>>,
    slot: usize,
) -> bool {
    shared.stats.audits_run.fetch_add(1, SeqCst);
    let gen = shared.epoch.load(slot);
    let report = audit(&gen.st);
    let buffers_dirty = {
        let guard = writer.lock().unwrap_or_else(|p| p.into_inner());
        guard.dy.audit_buffers().is_err()
    };
    if report.is_clean() && !buffers_dirty {
        // Clean structure but an open breaker: nothing to repair (e.g. a
        // forced quarantine, or a repair that already republished), so move
        // to half-open and let probe queries close it.
        if shared.quarantine.state() == BreakerState::Open {
            shared.quarantine.half_open();
        }
        return false;
    }
    shared.stats.audits_dirty.fetch_add(1, SeqCst);

    // Quarantine the blamed region: node-granular blames directly, plus
    // every node of any blamed skeleton unit (the search trusts skeleton
    // keys across the whole unit).
    let mut blamed: Vec<u32> = report.blamed_nodes();
    for b in &report.findings {
        if let Blame::Skeleton { sub, unit } = *b {
            if let Some(u) = gen
                .st
                .substructures()
                .get(sub)
                .and_then(|s| s.units.get(unit))
            {
                blamed.extend(u.nodes.iter().map(|id| id.0));
            }
        }
    }
    blamed.sort_unstable();
    blamed.dedup();
    let quarantined = !blamed.is_empty();
    if quarantined {
        shared.quarantine.open(blamed);
    }

    // Repair the writer state under its lock — queries never take this
    // lock, they keep draining on published generations (degraded on
    // quarantined paths) while the repair runs.
    {
        let mut guard = writer.lock().unwrap_or_else(|p| p.into_inner());
        let w = &mut *guard;
        let writer_report = audit(w.dy.structure());
        if !writer_report.is_clean() {
            repair(w.dy.structure_mut_for_repair(), &writer_report);
        }
        if w.dy.audit_buffers().is_err() {
            if w.dy.incremental() {
                // Incremental mode: "buffer" dirt is cascade dirt (corrupt
                // bridge/link/finger or density violation). The localized
                // repair story does not apply to the slot arena — the
                // always-correct fallback is a clone-and-rebuild from the
                // live (flat-arena) catalogs, which also compacts.
                w.dy.force_rebuild(&mut w.pram);
            } else {
                repair_buffers(&mut w.dy);
            }
        }
        shared.stats.repairs.fetch_add(1, SeqCst);
        // fc-lint: allow(lock-discipline) -- by design: the repaired state must publish before the writer lock is released, or a writer could republish corruption
        publish_locked(shared, w);
    }
    if quarantined {
        shared.quarantine.half_open();
    }
    true
}

/// Restore the buffer invariants from the authoritative static catalogs:
/// drop insert-buffer keys already present statically, delete-buffer keys
/// absent statically, resolve ins/del overlaps in favor of the insert, and
/// resynchronize the change counter. Idempotent; afterwards
/// [`DynamicCoop::audit_buffers`] passes.
pub(crate) fn repair_buffers<K: CatalogKey>(dy: &mut DynamicCoop<K>) {
    let cats: Vec<Vec<K>> = {
        let tree = dy.structure().tree();
        tree.ids().map(|id| tree.catalog(id).to_vec()).collect()
    };
    let (ins, del, changes) = dy.buffers_mut_for_fault_injection();
    let mut buffered = 0usize;
    for ((ins_v, del_v), cat) in ins.iter_mut().zip(del.iter_mut()).zip(&cats) {
        ins_v.retain(|k| cat.binary_search(k).is_err());
        del_v.retain(|k| cat.binary_search(k).is_ok());
        let overlap: Vec<K> = ins_v.intersection(del_v).copied().collect();
        for k in &overlap {
            del_v.remove(k);
        }
        buffered += ins_v.len() + del_v.len();
    }
    *changes = buffered;
}

fn auditor_loop<K: CatalogKey>(shared: Arc<Shared<K>>, writer: Arc<Mutex<Writer<K>>>, slot: usize) {
    loop {
        {
            let (lock, cv) = &shared.audit_wake;
            let mut pending = lock.lock().unwrap_or_else(|p| p.into_inner());
            if !*pending {
                let (g, _) = cv
                    .wait_timeout(pending, shared.cfg.audit_interval)
                    .unwrap_or_else(|p| p.into_inner());
                pending = g;
            }
            *pending = false;
        }
        if shared.shutdown.load(SeqCst) {
            break;
        }
        audit_cycle(&shared, &writer, slot);
        shared.epoch.try_reclaim();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn oracle<K: CatalogKey>(st: &CoopStructure<K>, path: &[NodeId], y: K) -> Vec<Option<K>> {
        path.iter()
            .map(|&node| {
                let cat = st.tree().catalog(node);
                cat.get(cat.partition_point(|k| *k < y)).copied()
            })
            .collect()
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            default_deadline: Duration::from_secs(5),
            audit_interval: Duration::from_secs(3600), // manual audits only
            processors: 1 << 8,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn blocking_queries_match_the_serving_generation_oracle() {
        let mut rng = SmallRng::seed_from_u64(901);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let svc = Service::start(tree, ParamMode::Auto, small_cfg());
        let leaves = svc.snapshot().st.tree().leaves();
        for i in 0..40 {
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            let y = rng.gen_range(-10..70_000i64);
            let ok = svc
                .query_blocking(leaf, y, None)
                .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
            assert!(!ok.degraded);
            assert_eq!(ok.path, ok.gen.st.tree().path_from_root(leaf));
            assert_eq!(ok.answers, oracle(&ok.gen.st, &ok.path, y), "query {i}");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed_exact, 40);
        assert_eq!(stats.corruption_detected, 0);
    }

    #[test]
    fn expired_deadline_times_out_instead_of_answering() {
        let mut rng = SmallRng::seed_from_u64(903);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let svc = Service::start(tree, ParamMode::Auto, small_cfg());
        let leaf = svc.snapshot().st.tree().leaves()[0];
        let res = svc.query_blocking(leaf, 5i64, Some(Duration::ZERO));
        assert!(matches!(res, Err(ServeError::Timeout { .. })), "{res:?}");
        let stats = svc.shutdown();
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn full_queue_sheds_at_admission() {
        let mut rng = SmallRng::seed_from_u64(905);
        let tree = gen::balanced_binary(4, 200, SizeDist::Uniform, &mut rng);
        let cfg = ServeConfig {
            workers: 0, // nothing drains the queue
            queue_cap: 2,
            ..small_cfg()
        };
        let svc = Service::start(tree, ParamMode::Auto, cfg);
        let leaf = svc.snapshot().st.tree().leaves()[0];
        let _rx1 = svc.submit(leaf, 1i64, None).expect("slot 1");
        let _rx2 = svc.submit(leaf, 2i64, None).expect("slot 2");
        let shed = svc.submit(leaf, 3i64, None);
        assert!(matches!(shed, Err(ServeError::Shed { queue_len: 2 })));
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.shed, 1);
    }

    #[test]
    fn forced_publish_makes_buffered_updates_visible_to_queries() {
        let mut rng = SmallRng::seed_from_u64(907);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let svc = Service::start(tree, ParamMode::Auto, small_cfg());
        let snap0 = svc.snapshot();
        assert_eq!(snap0.id, 0);
        let leaf = snap0.st.tree().leaves()[0];
        let node = snap0.st.tree().path_from_root(leaf)[1];
        let key = 123_456_789i64;
        assert!(!svc.update(UpdateOp::Insert(node, key)), "below threshold");
        // Buffered but unpublished: queries still serve the old generation.
        let before = svc.query_blocking(leaf, key, None).expect("query");
        assert_eq!(before.gen.id, 0);
        assert_ne!(before.answers[1], Some(key));
        svc.force_publish();
        let after = svc.query_blocking(leaf, key, None).expect("query");
        assert!(after.gen.id >= 1);
        assert_eq!(after.answers[1], Some(key));
        assert_eq!(svc.gen_stats().rebuilds, 1);
        let stats = svc.shutdown();
        assert!(stats.generations_published >= 1);
    }

    #[test]
    fn inject_audit_repair_republish_quarantine_cycle() {
        let mut rng = SmallRng::seed_from_u64(909);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let cfg = ServeConfig {
            workers: 0,
            ..small_cfg()
        };
        let svc = Service::start(tree, ParamMode::Auto, cfg);
        // Seed some buffered churn so dynamic faults have sites, then
        // corrupt both the static structure and the buffers.
        let node = svc.snapshot().st.tree().root();
        for k in 0..80 {
            svc.update(UpdateOp::Insert(node, 2_000_000 + k));
        }
        let plan = svc.inject(&FaultSpec::one_of_each(), 42);
        assert!(plan.structural_len() > 0);
        let corrupted = svc.snapshot();
        assert!(!audit(&corrupted.st).is_clean(), "corruption was published");

        assert!(svc.audit_blocking(), "audit must find the injected faults");
        assert_eq!(svc.quarantine_state(), BreakerState::HalfOpen);
        assert!(!svc.quarantined_nodes().is_empty());
        let repaired = svc.snapshot();
        assert!(repaired.id > corrupted.id, "repair republished");
        assert!(audit(&repaired.st).is_clean(), "republished gen is clean");
        assert!(!svc.audit_blocking(), "second audit is clean");

        let stats = svc.shutdown();
        assert!(stats.audits_dirty >= 1);
        assert!(stats.repairs >= 1);
        assert!(stats.quarantine_opens >= 1);
    }

    #[test]
    fn corrupted_buffers_are_repaired_not_baked_in() {
        let mut rng = SmallRng::seed_from_u64(911);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let cfg = ServeConfig {
            workers: 0,
            ..small_cfg()
        };
        let svc = Service::start(tree, ParamMode::Auto, cfg);
        let node = svc.snapshot().st.tree().root();
        for k in 0..20 {
            svc.update(UpdateOp::Insert(node, 3_000_000 + k));
        }
        let spec = FaultSpec::one_of_each_dynamic();
        let plan = svc.inject(&spec, 7);
        assert_eq!(plan.dynamic_len(), spec.dynamic_total());
        assert!(svc.audit_blocking(), "buffer corruption must be detected");
        // After repair the buffers audit clean and a forced rebuild drains
        // them without baking phantom keys into the catalogs.
        svc.force_publish();
        let snap = svc.snapshot();
        assert!(audit(&snap.st).is_clean());
        let legit: Vec<i64> = (0..20).map(|k| 3_000_000 + k).collect();
        for k in &legit {
            assert!(snap.st.tree().catalog(node).binary_search(k).is_ok());
        }
        svc.shutdown();
    }
}
