//! Epoch-based hot swap of an immutable generation pointer.
//!
//! The service publishes each rebuilt structure as an immutable
//! [`Arc`]-owned *generation*. Readers acquire the current generation
//! wait-free (one announce/validate loop plus two atomic loads); a writer
//! publishes a new generation with a single atomic swap and *retires* the
//! old pointer, which is freed only once every reader slot is either
//! quiescent or pinned at a later epoch. Readers therefore never block on
//! the writer — in-flight searches simply drain on the generation they
//! pinned — and the writer never blocks on readers (reclamation is
//! deferred, not awaited).
//!
//! ## Protocol
//!
//! Reader slot `s` (one slot per thread, exclusively owned):
//!
//! 1. announce: `slots[s] = global` (re-read and re-announce until stable);
//! 2. acquire: `ptr = current`; bump the [`Arc`] strong count via the raw
//!    pointer; only then
//! 3. unpin: `slots[s] = 0`.
//!
//! Writer: `old = current.swap(new)`, `r = ++global`, retire `(r, old)`.
//! A retired pointer is reclaimed when every slot `v` satisfies `v == 0 ∨
//! v >= r`. All accesses are `SeqCst`; in the single total order, a slot
//! pinned with epoch `< r` may have read `current` before the swap, so its
//! pointer stays alive; a slot pinned with epoch `>= r` validated its
//! announcement after the writer's increment, hence after the swap, so its
//! subsequent `current` load cannot observe the retired pointer. A slot
//! read as `0` either unpinned (strong count already bumped) or has not yet
//! validated — and its validation will observe an epoch `>= r`.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A hot-swappable `Arc<T>` with per-slot epoch pinning (see module docs).
pub struct EpochPtr<T: Send + Sync> {
    current: AtomicPtr<T>,
    global: AtomicU64,
    slots: Box<[AtomicU64]>,
    retired: Mutex<Vec<(u64, *mut T)>>,
}

// The raw pointers in `current`/`retired` are `Arc`-owned `T`s; moving or
// sharing the handle across threads is exactly as safe as sharing `Arc<T>`.
unsafe impl<T: Send + Sync> Send for EpochPtr<T> {}
unsafe impl<T: Send + Sync> Sync for EpochPtr<T> {}

impl<T: Send + Sync> EpochPtr<T> {
    /// A new pointer holding `initial`, with `slots` reader slots. Each
    /// slot index must be used by at most one thread at a time.
    pub fn new(initial: Arc<T>, slots: usize) -> Self {
        let slots = (0..slots.max(1)).map(|_| AtomicU64::new(0)).collect();
        EpochPtr {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            global: AtomicU64::new(1),
            slots,
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Number of reader slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The current global epoch (starts at 1, bumped once per [`swap`]).
    ///
    /// [`swap`]: EpochPtr::swap
    pub fn epoch(&self) -> u64 {
        self.global.load(SeqCst)
    }

    /// Acquire the current value from reader slot `slot`. Wait-free apart
    /// from the (bounded-in-practice) announce/validate loop; never blocks
    /// on a concurrent [`EpochPtr::swap`].
    pub fn load(&self, slot: usize) -> Arc<T> {
        let s = &self.slots[slot];
        debug_assert_eq!(s.load(SeqCst), 0, "slot {slot} used re-entrantly");
        let mut e = self.global.load(SeqCst);
        loop {
            s.store(e, SeqCst);
            let now = self.global.load(SeqCst);
            if now == e {
                break;
            }
            e = now;
        }
        let ptr = self.current.load(SeqCst);
        // SAFETY: the slot is pinned at epoch `e`, and this load happened
        // after the pin was validated; per the module-level argument no
        // writer can release this pointer's strong count until the slot
        // unpins or re-pins at a later epoch, so `ptr` is a live Arc.
        unsafe { Arc::increment_strong_count(ptr) };
        let arc = unsafe { Arc::from_raw(ptr) };
        s.store(0, SeqCst);
        arc
    }

    /// Publish `new` as the current value and retire the old one. Never
    /// blocks on readers; reclamation of the old value is deferred until
    /// every slot has moved past the retire epoch. Safe to call from
    /// multiple writer threads concurrently.
    pub fn swap(&self, new: Arc<T>) {
        let old = self.current.swap(Arc::into_raw(new) as *mut T, SeqCst);
        let retire_epoch = self.global.fetch_add(1, SeqCst) + 1;
        {
            let mut retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
            retired.push((retire_epoch, old));
        }
        self.try_reclaim();
    }

    /// Drop every retired pointer whose retire epoch is safely behind all
    /// pinned slots. Returns how many were reclaimed. Called automatically
    /// by [`EpochPtr::swap`]; exposed for tests and idle sweeps.
    pub fn try_reclaim(&self) -> usize {
        let mut retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        let mut freed = 0usize;
        retired.retain(|&(r, ptr)| {
            let safe = self
                .slots
                .iter()
                .all(|s| matches!(s.load(SeqCst), v if v == 0 || v >= r));
            if safe {
                // SAFETY: `ptr` came from `Arc::into_raw` in `swap` and no
                // reader can still acquire it (see module docs).
                unsafe { drop(Arc::from_raw(ptr)) };
                freed += 1;
            }
            !safe
        });
        freed
    }

    /// Retired-but-not-yet-reclaimed generations (for stats/tests).
    pub fn retired_count(&self) -> usize {
        self.retired.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

impl<T: Send + Sync> Drop for EpochPtr<T> {
    fn drop(&mut self) {
        // Exclusive access: no reader can be pinned any more.
        let retired = self.retired.get_mut().unwrap_or_else(|p| p.into_inner());
        for &(_, ptr) in retired.iter() {
            unsafe { drop(Arc::from_raw(ptr)) };
        }
        retired.clear();
        unsafe { drop(Arc::from_raw(self.current.load(SeqCst))) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn load_returns_latest_swap() {
        let ep = EpochPtr::new(Arc::new(1u64), 2);
        assert_eq!(*ep.load(0), 1);
        ep.swap(Arc::new(2));
        assert_eq!(*ep.load(0), 2);
        assert_eq!(*ep.load(1), 2);
        assert_eq!(ep.epoch(), 2);
        assert_eq!(ep.retired_count(), 0, "idle swap reclaims immediately");
    }

    #[test]
    fn held_arc_survives_swaps() {
        let ep = EpochPtr::new(Arc::new(vec![7u64; 64]), 1);
        let held = ep.load(0);
        for i in 0..10 {
            ep.swap(Arc::new(vec![i; 64]));
        }
        // The pinned slots are all quiescent, so old generations are freed,
        // but the Arc we still hold keeps its payload alive independently.
        assert_eq!(held[0], 7);
        assert_eq!(*ep.load(0), vec![9u64; 64]);
    }

    #[test]
    fn aborted_announce_neither_leaks_nor_blocks_reclamation() {
        // A reader announces an epoch into its slot but aborts (unpins)
        // before validating/acquiring. The writer must still be able to
        // reclaim everything: an aborted announcement is indistinguishable
        // from a quiescent slot once it stores 0, and a *stale* announced
        // value must never be left behind to pin future retirees.
        let ep = EpochPtr::new(Arc::new(vec![1u64; 32]), 3);
        // Slot 2 announces the current epoch, then aborts before the
        // validate/acquire steps (simulating a reader killed mid-`load`
        // after step 1 of the protocol, whose unwind resets the slot).
        ep.slots[2].store(ep.global.load(SeqCst), SeqCst);
        ep.slots[2].store(0, SeqCst);
        let weak_gen0 = {
            let g = ep.load(0);
            Arc::downgrade(&g)
        };
        ep.swap(Arc::new(vec![2u64; 32]));
        ep.try_reclaim();
        assert_eq!(
            ep.retired_count(),
            0,
            "aborted announce must not block reclamation"
        );
        assert!(
            weak_gen0.upgrade().is_none(),
            "retired generation must actually be freed (no leak)"
        );
        // Sanity: a slot still *pinned* (announced, never aborted) at an
        // epoch below the retire epoch does block, until it unpins.
        ep.slots[2].store(ep.global.load(SeqCst), SeqCst);
        ep.swap(Arc::new(vec![3u64; 32]));
        assert_eq!(ep.retired_count(), 1, "live pin must block reclamation");
        ep.slots[2].store(0, SeqCst);
        ep.try_reclaim();
        assert_eq!(ep.retired_count(), 0);
    }

    #[test]
    fn reader_churn_reclaims_every_retired_generation() {
        // Readers pin/unpin in a tight loop while the writer swaps; at the
        // end every retired generation must have been freed (tracked via
        // weak refs — `retired_count` alone can't see a strong-count leak).
        const SWAPS: u64 = 500;
        let ep = Arc::new(EpochPtr::new(Arc::new(0u64), 4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|slot| {
                let ep = Arc::clone(&ep);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(SeqCst) {
                        let g = ep.load(slot);
                        std::hint::black_box(*g);
                    }
                })
            })
            .collect();
        let mut weaks = Vec::with_capacity(SWAPS as usize);
        for i in 1..=SWAPS {
            let next = Arc::new(i);
            weaks.push(Arc::downgrade(&next));
            ep.swap(next);
        }
        stop.store(true, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        ep.try_reclaim();
        assert_eq!(ep.retired_count(), 0, "quiescent slots must drain fully");
        let live: usize = weaks.iter().filter(|w| w.upgrade().is_some()).count();
        assert_eq!(live, 1, "only the current generation may remain live");
        assert_eq!(*ep.load(0), SWAPS);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_generations() {
        // Payload invariant: both halves equal. A use-after-free or torn
        // publish would (under ASan-less CI, probabilistically) break it.
        let ep = Arc::new(EpochPtr::new(Arc::new((0u64, 0u64)), 4));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|slot| {
                let ep = Arc::clone(&ep);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(SeqCst) {
                        let g = ep.load(slot);
                        assert_eq!(g.0, g.1, "torn generation");
                        assert!(g.0 >= last, "generations went backwards");
                        last = g.0;
                    }
                    last
                })
            })
            .collect();
        for i in 1..=2000u64 {
            ep.swap(Arc::new((i, i)));
        }
        stop.store(true, SeqCst);
        for r in readers {
            let last = r.join().unwrap();
            assert!(last <= 2000);
        }
        ep.try_reclaim();
        assert_eq!(ep.retired_count(), 0, "all readers quiescent");
        assert_eq!(*ep.load(0), (2000, 2000));
    }
}
