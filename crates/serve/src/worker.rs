//! The query worker hot path.
//!
//! Everything a worker does between popping a job and sending its response
//! lives here, and is written panic-free: a worker that unwinds would
//! silently drop its queue share, so this module avoids `unwrap`/`expect`/
//! `panic!` and direct indexing entirely (enforced by the `xtask lint`
//! hot-path scope). Mutex poisoning is absorbed with `into_inner` — the
//! protected values are plans/flags that stay valid across an unwinding
//! peer.
//!
//! Per job: deadline gate → pin generation → quarantine gate (probe or
//! degrade) → checked cooperative search with retry + decorrelated-jitter
//! backoff → per-node answer verification against the native catalog →
//! degraded fallback. Every exit is either a verified-correct answer or a
//! typed [`ServeError`]; corruption detections wake the auditor.

use crate::backoff::DecorrelatedJitter;
use crate::error::ServeError;
use crate::service::{Generation, Job, QueryOk, QueryResult, Shared};
use fc_catalog::{CatalogKey, FcError, NodeId};
use fc_coop::{coop_search_explicit_cancellable, CancelToken};
use fc_pram::{Model, Pram};
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Worker thread body: drain the admission queue until it closes.
pub(crate) fn worker_loop<K: CatalogKey>(shared: Arc<Shared<K>>, slot: usize) {
    let jitter_seed = shared
        .cfg
        .seed
        .wrapping_add((slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut backoff =
        DecorrelatedJitter::new(shared.cfg.backoff_base, shared.cfg.backoff_cap, jitter_seed);
    while let Some(job) = shared.queue.pop() {
        let Job {
            leaf,
            y,
            deadline,
            resp,
        } = job;
        let result = execute(&shared, slot, leaf, y, deadline, &mut backoff);
        match &result {
            Ok(ok) if ok.degraded => {
                shared.stats.completed_degraded.fetch_add(1, SeqCst);
            }
            Ok(_) => {
                shared.stats.completed_exact.fetch_add(1, SeqCst);
            }
            Err(ServeError::Timeout { .. }) => {
                shared.stats.timeouts.fetch_add(1, SeqCst);
            }
            Err(ServeError::Quarantined { .. }) => {
                shared.stats.quarantined_rejects.fetch_add(1, SeqCst);
            }
            Err(ServeError::Degraded { .. }) => {
                shared.stats.structural_failures.fetch_add(1, SeqCst);
            }
            Err(_) => {}
        }
        // The client may have given up (dropped receiver): not an error.
        let _ = resp.send(result);
        backoff.reset();
    }
}

fn execute<K: CatalogKey>(
    shared: &Shared<K>,
    slot: usize,
    leaf: NodeId,
    y: K,
    deadline: Instant,
    backoff: &mut DecorrelatedJitter,
) -> QueryResult<K> {
    if shared.shutdown.load(SeqCst) {
        return Err(ServeError::ShuttingDown);
    }
    let cancel = CancelToken::with_deadline(deadline);
    if cancel.is_cancelled() {
        // Queued past its deadline: shed late rather than answer late.
        return Err(timeout(deadline));
    }
    let mut gen = shared.epoch.load(slot);
    let mut path = gen.st.tree().path_from_root(leaf);

    if let Some(node) = shared.quarantine.quarantined_on_path(&path) {
        if shared.quarantine.take_probe_ticket() {
            shared.stats.probes.fetch_add(1, SeqCst);
            match attempt(shared, &gen, &path, y, &cancel) {
                Ok(answers) => {
                    shared.quarantine.record_probe_success();
                    return finish(gen, path, answers, false, 1);
                }
                Err(FcError::Cancelled) => return Err(timeout(deadline)),
                Err(_) => {
                    shared.stats.probe_failures.fetch_add(1, SeqCst);
                    shared.quarantine.record_probe_failure();
                    shared.request_audit();
                }
            }
        }
        if !shared.cfg.degraded_reads {
            return Err(ServeError::Quarantined { node });
        }
        let answers = degraded_answers(&gen, &path, y, deadline, &cancel)?;
        return finish(gen, path, answers, true, 1);
    }

    let mut attempts: u32 = 0;
    // Which published generations the attempts observed (consecutive
    // dedup): reported through `ServeError::Degraded` so a failing query
    // names the generation(s) it saw.
    let mut gens_seen: Vec<u64> = vec![gen.id];
    let last_err;
    loop {
        attempts += 1;
        match attempt(shared, &gen, &path, y, &cancel) {
            Ok(answers) => return finish(gen, path, answers, false, attempts),
            Err(FcError::Cancelled) => return Err(timeout(deadline)),
            Err(e) => {
                shared.stats.corruption_detected.fetch_add(1, SeqCst);
                shared.request_audit();
                if attempts > shared.cfg.retries {
                    last_err = e;
                    break;
                }
            }
        }
        shared.stats.retries.fetch_add(1, SeqCst);
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(timeout(deadline));
        }
        thread::sleep(backoff.next_delay().min(remaining));
        // A repair/rebuild may have republished meanwhile; retry against
        // the freshest generation.
        gen = shared.epoch.load(slot);
        path = gen.st.tree().path_from_root(leaf);
        if gens_seen.last() != Some(&gen.id) {
            gens_seen.push(gen.id);
        }
    }
    if shared.cfg.degraded_reads {
        let answers = degraded_answers(&gen, &path, y, deadline, &cancel)?;
        finish(gen, path, answers, true, attempts)
    } else {
        Err(ServeError::Degraded {
            error: last_err,
            attempts,
            gens: gens_seen,
        })
    }
}

/// One checked, cancellable cooperative search plus per-node answer
/// verification. Any detected inconsistency — window overrun, bridge
/// violation, or a verifier mismatch the checked search missed — comes
/// back as a structural `Err`, never as a wrong answer.
fn attempt<K: CatalogKey>(
    shared: &Shared<K>,
    gen: &Arc<Generation<K>>,
    path: &[NodeId],
    y: K,
    cancel: &CancelToken,
) -> Result<Vec<Option<K>>, FcError> {
    let mut pram = Pram::new(shared.cfg.processors.max(1), Model::Crew);
    let kills = {
        let mut armed = shared.kill_plan.lock().unwrap_or_else(|p| p.into_inner());
        armed.take()
    };
    if let Some(plan) = kills {
        plan.arm(&mut pram);
    }
    let res = coop_search_explicit_cancellable(&gen.st, path, y, &mut pram, cancel)?;
    let mut answers = Vec::with_capacity(path.len());
    for (&node, find) in path.iter().zip(res.finds.iter()) {
        let cat = gen.st.tree().catalog(node);
        let ans = cat.get(find.native_idx as usize).copied();
        if shared.cfg.verify_answers && !verify_one(cat, y, ans) {
            return Err(FcError::CorruptCatalog {
                node: node.0,
                entry: find.native_idx as usize,
            });
        }
        answers.push(ans);
    }
    Ok(answers)
}

/// The smallest native entry `>= y` must equal the reported answer — a
/// binary-search check against the authoritative catalog.
fn verify_one<K: CatalogKey>(cat: &[K], y: K, ans: Option<K>) -> bool {
    cat.get(cat.partition_point(|k| *k < y)).copied() == ans
}

/// Degraded read: per-node binary search over the native catalogs, which
/// the fault model treats as authoritative — correct on any generation,
/// corrupted or not, at `O(path · log)` sequential cost.
fn degraded_answers<K: CatalogKey>(
    gen: &Generation<K>,
    path: &[NodeId],
    y: K,
    deadline: Instant,
    cancel: &CancelToken,
) -> Result<Vec<Option<K>>, ServeError> {
    let mut answers = Vec::with_capacity(path.len());
    for &node in path {
        if cancel.is_cancelled() {
            return Err(timeout(deadline));
        }
        let cat = gen.st.tree().catalog(node);
        answers.push(cat.get(cat.partition_point(|k| *k < y)).copied());
    }
    Ok(answers)
}

fn finish<K: CatalogKey>(
    gen: Arc<Generation<K>>,
    path: Vec<NodeId>,
    answers: Vec<Option<K>>,
    degraded: bool,
    attempts: u32,
) -> QueryResult<K> {
    Ok(QueryOk {
        answers,
        path,
        gen,
        degraded,
        attempts,
    })
}

fn timeout(deadline: Instant) -> ServeError {
    ServeError::Timeout {
        missed_by: Instant::now().saturating_duration_since(deadline),
    }
}
