//! Bounded admission queue with load shedding.
//!
//! Submission never blocks: a full queue *sheds* the query immediately
//! ([`PushError::Full`]), on the theory that work which cannot start soon
//! will miss its deadline anyway — better to fail fast at admission than to
//! time out after consuming a worker. Workers block on [`AdmissionQueue::pop`]
//! and drain remaining items after [`AdmissionQueue::close`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected (the item is handed back).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — the item was shed.
    Full(T),
    /// The queue has been closed — the service is shutting down.
    Closed(T),
}

struct Inner<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue (mutex + condvar; contention is one lock per
/// submit/pop, far below the cost of a cooperative search).
pub struct AdmissionQueue<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `cap` pending items.
    pub fn new(cap: usize) -> Self {
        AdmissionQueue {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Capacity (the shed threshold).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Pending items right now.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).q.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `item`, or shed it without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.q.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.q.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Take the next item, blocking while the queue is open and empty.
    /// After [`AdmissionQueue::close`], remaining items are still drained;
    /// `None` means closed-and-empty (worker should exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = inner.q.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Close the queue: pending items remain poppable, new pushes fail,
    /// and blocked poppers wake up.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_exactly_past_capacity() {
        let q = AdmissionQueue::new(3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.try_push(4), Err(PushError::Full(4)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(4).is_ok());
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = AdmissionQueue::new(8);
        q.try_push(10).ok();
        q.close();
        assert_eq!(q.try_push(11), Err(PushError::Closed(11)));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_popper_wakes_on_push_and_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..5 {
            while q.try_push(i).is_err() {
                thread::yield_now();
            }
        }
        q.close();
        let got = h.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
