//! Typed service errors, extending the structural [`FcError`] taxonomy.

use fc_catalog::FcError;
use std::fmt;
use std::time::Duration;

/// Why the service could not (or would not) answer a query.
///
/// Every variant is a *detected* condition — the service's contract is that
/// a query either returns a correct answer (exact or degraded) or one of
/// these errors; it never returns a silently wrong answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query's deadline expired before an answer was produced. The
    /// deadline is propagated into the cooperative search itself (via
    /// `fc_coop::CancelToken`), so a query caught mid-descent stops at the
    /// next descent step rather than running to completion.
    Timeout {
        /// How far past the deadline the query was abandoned.
        missed_by: Duration,
    },
    /// The admission queue was full and the query was shed at submission
    /// time (load shedding: reject early instead of queueing work that
    /// would time out anyway).
    Shed {
        /// Queue capacity at the time of the shed.
        queue_len: usize,
    },
    /// The search path crosses a quarantined (blamed-by-audit) region and
    /// degraded reads are disabled.
    Quarantined {
        /// Arena index of the first quarantined node on the path.
        node: u32,
    },
    /// The cooperative search kept failing (corruption detected by the
    /// checked search, or too few live processors) through every retry,
    /// and the degraded fallback is disabled.
    Degraded {
        /// The last structural error observed.
        error: FcError,
        /// Total attempts made (1 + retries).
        attempts: u32,
        /// Generation ids the attempts ran against, in observation order
        /// (deduplicated consecutively). A failed query thereby reports
        /// *which* published generation(s) it saw — the signal the shard
        /// layer needs to tell a corrupt replica from cross-replica
        /// divergence.
        gens: Vec<u64>,
    },
    /// The service is shutting down; the query was not executed.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Timeout { missed_by } => {
                write!(f, "query deadline exceeded (missed by {missed_by:?})")
            }
            ServeError::Shed { queue_len } => {
                write!(f, "query shed: admission queue full ({queue_len} slots)")
            }
            ServeError::Quarantined { node } => {
                write!(
                    f,
                    "path crosses quarantined node {node} and degraded reads are off"
                )
            }
            ServeError::Degraded {
                error,
                attempts,
                gens,
            } => {
                write!(
                    f,
                    "search failed after {attempts} attempts (generations {gens:?}): {error}"
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Degraded { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::Degraded {
            error: FcError::NoProcessors,
            attempts: 3,
            gens: vec![4, 5],
        };
        assert!(e.to_string().contains("3 attempts"));
        assert!(e.to_string().contains("[4, 5]"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::ShuttingDown).is_none());
    }
}
