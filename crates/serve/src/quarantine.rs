//! Quarantine circuit breaker over audit-blamed subtree regions.
//!
//! When the background auditor finds structural corruption it *opens* the
//! breaker with the set of blamed arena nodes. While open, queries whose
//! root-to-leaf path touches a blamed node are not trusted to the
//! cooperative search: they are answered by the degraded per-node binary
//! search over the native catalogs (authoritative under the fault model),
//! or rejected if degraded reads are disabled. Queries that avoid the
//! blamed region keep using the fast path.
//!
//! After the auditor repairs and republishes, the breaker moves to
//! *half-open*: most quarantined-path queries stay degraded, but every
//! `probe_every`-th one is sent through the full cooperative search as a
//! probe. `close_after` consecutive probe successes close the breaker and
//! clear the node set; any probe failure re-opens it.
//!
//! State machine: `Closed → Open → HalfOpen → {Closed | Open}`.

use fc_catalog::NodeId;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::SeqCst};
use std::sync::RwLock;

/// Circuit-breaker state (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// No active quarantine; all queries take the cooperative path.
    Closed,
    /// Corruption blamed and not yet repaired: quarantined paths degrade.
    Open,
    /// Repair published; probes trickle through the cooperative path.
    HalfOpen,
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// The quarantine set plus breaker state. All methods are `&self` and
/// thread-safe; the hot-path check is one atomic load when closed.
pub struct Quarantine {
    state: AtomicU8,
    nodes: RwLock<BTreeSet<u32>>,
    probe_counter: AtomicU64,
    probe_successes: AtomicU64,
    probe_every: u64,
    close_after: u64,
    opens: AtomicU64,
}

impl Quarantine {
    /// A closed breaker. In half-open state every `probe_every`-th
    /// quarantined-path query probes the cooperative path, and
    /// `close_after` consecutive probe successes close the breaker.
    pub fn new(probe_every: u64, close_after: u64) -> Self {
        Quarantine {
            state: AtomicU8::new(CLOSED),
            nodes: RwLock::new(BTreeSet::new()),
            probe_counter: AtomicU64::new(0),
            probe_successes: AtomicU64::new(0),
            probe_every: probe_every.max(1),
            close_after: close_after.max(1),
            opens: AtomicU64::new(0),
        }
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        match self.state.load(SeqCst) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// The quarantined arena nodes (snapshot, sorted).
    pub fn nodes(&self) -> Vec<u32> {
        self.nodes
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .copied()
            .collect()
    }

    /// Times the breaker transitioned into `Open` (including re-opens).
    pub fn opens(&self) -> u64 {
        self.opens.load(SeqCst)
    }

    /// The first quarantined node on `path`, if the breaker is not closed
    /// and the path touches the quarantine set. One atomic load when
    /// closed; a shared-lock set lookup otherwise.
    pub fn quarantined_on_path(&self, path: &[NodeId]) -> Option<u32> {
        if self.state.load(SeqCst) == CLOSED {
            return None;
        }
        let nodes = self.nodes.read().unwrap_or_else(|p| p.into_inner());
        if nodes.is_empty() {
            return None;
        }
        path.iter().map(|id| id.0).find(|v| nodes.contains(v))
    }

    /// Open the breaker over `blamed` (adds to any existing set).
    pub fn open(&self, blamed: impl IntoIterator<Item = u32>) {
        {
            let mut nodes = self.nodes.write().unwrap_or_else(|p| p.into_inner());
            nodes.extend(blamed);
        }
        self.probe_successes.store(0, SeqCst);
        self.state.store(OPEN, SeqCst);
        self.opens.fetch_add(1, SeqCst);
    }

    /// Move `Open → HalfOpen` (called after a repair is published). No-op
    /// in other states.
    pub fn half_open(&self) {
        let _ = self.state.compare_exchange(OPEN, HALF_OPEN, SeqCst, SeqCst);
        self.probe_successes.store(0, SeqCst);
    }

    /// In half-open state, decide whether this quarantined-path query is a
    /// probe (true for every `probe_every`-th call). Always false
    /// otherwise.
    pub fn take_probe_ticket(&self) -> bool {
        if self.state.load(SeqCst) != HALF_OPEN {
            return false;
        }
        self.probe_counter
            .fetch_add(1, SeqCst)
            .is_multiple_of(self.probe_every)
    }

    /// Record a successful probe; returns `true` if this success closed
    /// the breaker (and cleared the quarantine set).
    pub fn record_probe_success(&self) -> bool {
        if self.state.load(SeqCst) != HALF_OPEN {
            return false;
        }
        let ok = self.probe_successes.fetch_add(1, SeqCst) + 1;
        if ok < self.close_after {
            return false;
        }
        let mut nodes = self.nodes.write().unwrap_or_else(|p| p.into_inner());
        nodes.clear();
        self.state.store(CLOSED, SeqCst);
        true
    }

    /// Record a failed probe: back to fully open.
    pub fn record_probe_failure(&self) {
        self.probe_successes.store(0, SeqCst);
        let was = self.state.swap(OPEN, SeqCst);
        if was != OPEN {
            self.opens.fetch_add(1, SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn closed_breaker_never_flags_paths() {
        let q = Quarantine::new(4, 2);
        assert_eq!(q.state(), BreakerState::Closed);
        assert_eq!(q.quarantined_on_path(&path(&[1, 2, 3])), None);
        assert!(!q.take_probe_ticket());
    }

    #[test]
    fn open_flags_only_touching_paths() {
        let q = Quarantine::new(4, 2);
        q.open([5, 9]);
        assert_eq!(q.state(), BreakerState::Open);
        assert_eq!(q.quarantined_on_path(&path(&[1, 5, 7])), Some(5));
        assert_eq!(q.quarantined_on_path(&path(&[1, 2, 3])), None);
        assert!(!q.take_probe_ticket(), "no probes while fully open");
    }

    #[test]
    fn probes_close_after_enough_successes() {
        let q = Quarantine::new(1, 3); // every call is a probe
        q.open([5]);
        q.half_open();
        assert_eq!(q.state(), BreakerState::HalfOpen);
        assert!(q.take_probe_ticket());
        assert!(!q.record_probe_success());
        assert!(!q.record_probe_success());
        assert!(q.record_probe_success(), "third success closes");
        assert_eq!(q.state(), BreakerState::Closed);
        assert!(q.nodes().is_empty());
        assert_eq!(q.quarantined_on_path(&path(&[5])), None);
    }

    #[test]
    fn probe_failure_reopens_and_resets_progress() {
        let q = Quarantine::new(1, 2);
        q.open([5]);
        q.half_open();
        assert!(!q.record_probe_success());
        q.record_probe_failure();
        assert_eq!(q.state(), BreakerState::Open);
        assert_eq!(q.opens(), 2);
        q.half_open();
        assert!(!q.record_probe_success(), "progress was reset");
        assert!(q.record_probe_success());
    }

    #[test]
    fn probe_ticket_cadence() {
        let q = Quarantine::new(4, 100);
        q.open([1]);
        q.half_open();
        let probes = (0..12).filter(|_| q.take_probe_ticket()).count();
        assert_eq!(probes, 3, "every 4th call probes");
    }
}
