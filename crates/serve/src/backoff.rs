//! Retry backoff with decorrelated jitter.
//!
//! The classic "exponential backoff + full jitter" family; the
//! *decorrelated* variant (`sleep = min(cap, uniform(base, 3·prev))`)
//! spreads retries of competing clients apart even when they failed at the
//! same instant, while still growing roughly geometrically. Deterministic
//! per seed (vendored `SmallRng`), so chaos runs replay exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Decorrelated-jitter backoff state for one retry loop.
#[derive(Debug)]
pub struct DecorrelatedJitter {
    base_ns: u64,
    cap_ns: u64,
    prev_ns: u64,
    rng: SmallRng,
}

impl DecorrelatedJitter {
    /// A backoff starting at `base` and never exceeding `cap` per sleep.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        let base_ns = base.as_nanos().min(u64::MAX as u128) as u64;
        let cap_ns = cap.as_nanos().min(u64::MAX as u128) as u64;
        let base_ns = base_ns.max(1);
        DecorrelatedJitter {
            base_ns,
            cap_ns: cap_ns.max(base_ns),
            prev_ns: base_ns,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The next sleep duration: `min(cap, uniform(base, 3·prev))`.
    pub fn next_delay(&mut self) -> Duration {
        let hi = self
            .prev_ns
            .saturating_mul(3)
            .max(self.base_ns + 1)
            .min(self.cap_ns.max(self.base_ns + 1));
        let d = self.rng.gen_range(self.base_ns..hi.max(self.base_ns + 1));
        self.prev_ns = d.min(self.cap_ns);
        Duration::from_nanos(self.prev_ns)
    }

    /// Forget the growth history (call after a success).
    pub fn reset(&mut self) {
        self.prev_ns = self.base_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_within_base_and_cap() {
        let base = Duration::from_micros(50);
        let cap = Duration::from_millis(2);
        let mut b = DecorrelatedJitter::new(base, cap, 9);
        for _ in 0..200 {
            let d = b.next_delay();
            assert!(d >= base, "{d:?} < base");
            assert!(d <= cap, "{d:?} > cap");
        }
    }

    #[test]
    fn deterministic_per_seed_and_grows_on_average() {
        let mk = |seed| {
            let mut b =
                DecorrelatedJitter::new(Duration::from_micros(10), Duration::from_millis(10), seed);
            (0..10).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
        let seq = mk(3);
        let early: Duration = seq.iter().take(3).sum();
        let late: Duration = seq.iter().rev().take(3).sum();
        assert!(late > early, "backoff should trend upward: {seq:?}");
    }

    #[test]
    fn long_runs_saturate_at_the_cap_and_never_escape_it() {
        // Decorrelated growth is multiplicative (up to 3x per step); after
        // saturation every subsequent delay must still stay in [base, cap]
        // even over runs long enough to overflow a naive accumulator.
        let base = Duration::from_nanos(1);
        let cap = Duration::from_micros(5);
        let mut b = DecorrelatedJitter::new(base, cap, 21);
        let mut hit_cap_region = false;
        for _ in 0..10_000 {
            let d = b.next_delay();
            assert!(d >= base && d <= cap, "{d:?} outside [{base:?}, {cap:?}]");
            if d > cap / 2 {
                hit_cap_region = true;
            }
        }
        assert!(hit_cap_region, "growth never approached the cap");
    }

    #[test]
    fn degenerate_base_equals_cap_pins_every_delay() {
        let d = Duration::from_millis(1);
        let mut b = DecorrelatedJitter::new(d, d, 5);
        for _ in 0..50 {
            assert_eq!(b.next_delay(), d);
        }
        b.reset();
        assert_eq!(b.next_delay(), d, "reset must not escape the pin");
    }

    #[test]
    fn zero_base_is_clamped_to_a_positive_floor() {
        let mut b = DecorrelatedJitter::new(Duration::ZERO, Duration::from_micros(1), 6);
        for _ in 0..50 {
            let d = b.next_delay();
            assert!(d > Duration::ZERO, "a zero sleep would spin-retry");
            assert!(d <= Duration::from_micros(1));
        }
    }

    #[test]
    fn reset_restarts_from_base() {
        let mut b =
            DecorrelatedJitter::new(Duration::from_micros(10), Duration::from_millis(10), 4);
        for _ in 0..8 {
            b.next_delay();
        }
        b.reset();
        // First post-reset delay is bounded by 3*base.
        assert!(b.next_delay() <= Duration::from_micros(30));
    }
}
