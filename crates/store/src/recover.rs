//! Crash recovery: newest valid snapshot + WAL replay + audit, or a typed
//! refusal.
//!
//! The recovery state machine (documented in DESIGN.md §12):
//!
//! 1. **Load** the newest snapshot that validates end to end
//!    ([`crate::snapshot::load_newest_valid`]); corrupt newer candidates
//!    are skipped and counted.
//! 2. **Replay** every WAL record above the snapshot's watermark into a
//!    fresh [`DynamicCoop`], in sequence order, with torn-tail truncation
//!    and duplicate skipping ([`crate::wal::replay`]). Each op is
//!    pre-validated against the recovered tree — `DynamicCoop`'s buffer
//!    paths index by node id and debug-assert keys below the supremum, so
//!    an out-of-range op surfaces as [`StoreError::InvalidOp`] instead of
//!    a panic.
//! 3. **Rebuild + audit**: drain the buffers with a forced global rebuild,
//!    then run the buffer audit and the structural blame audit from
//!    `fc-resilience`. Any dirt is a typed
//!    [`StoreError::RecoveryAudit`] — the store never serves a structure
//!    it cannot prove clean.
//!
//! This file is in the `cargo xtask lint` panic-free/index-free scope up
//! to its tests.

use crate::codec::KeyCodec;
use crate::error::StoreError;
use crate::snapshot;
use crate::wal;
use fc_catalog::{CatalogKey, CatalogTree};
use fc_coop::dynamic::{DynamicCoop, UpdateOp};
use fc_coop::ParamMode;
use fc_pram::{Model, Pram};
use std::path::Path;

/// Processor count for the replay-time rebuild PRAM; recovery is offline,
/// so this only shapes the simulated schedule, not wall-clock work.
const REPLAY_PROCS: usize = 1 << 10;

/// A successful recovery: the audited-clean tree plus provenance counters
/// for observability (and the recovery-time benchmark).
#[derive(Debug, Clone)]
pub struct Recovered<K: CatalogKey> {
    /// The recovered catalog tree, drained and audit-clean.
    pub tree: CatalogTree<K>,
    /// Logical `DynamicCoop` generation after replay (snapshot generation
    /// plus one per rebuild the replay triggered).
    pub generation: u64,
    /// Id of the snapshot recovery started from.
    pub snapshot_id: u64,
    /// That snapshot's WAL watermark.
    pub wal_watermark: u64,
    /// Highest WAL sequence number reflected in [`Recovered::tree`].
    pub last_seq: u64,
    /// WAL records replayed.
    pub replayed_records: u64,
    /// Ops inside those records.
    pub replayed_ops: u64,
    /// Records skipped as already applied (watermark or duplicates).
    pub skipped_records: u64,
    /// Torn-tail bytes truncated during replay.
    pub truncated_bytes: u64,
    /// Corrupt newer snapshots that were skipped to find a valid one.
    pub snapshots_skipped: usize,
    /// Rebuild (epoch-cut) markers replayed above the watermark. Markers
    /// are advisory provenance — the final forced rebuild subsumes them —
    /// but a nonzero count means the producer died between cutting an
    /// epoch and persisting its snapshot.
    pub rebuild_markers: u64,
}

/// Recover the store in `dir` to an audited-clean tree, or refuse with a
/// typed error (see the module docs for the state machine).
pub fn recover<K: CatalogKey + KeyCodec>(dir: &Path) -> Result<Recovered<K>, StoreError> {
    let (snapshot_id, data, snapshots_skipped) = snapshot::load_newest_valid::<K>(dir)?;
    let wal_watermark = data.wal_watermark;
    let node_count = data.tree.len() as u32;
    // An infinite rebuild fraction defers every rebuild to the explicit
    // force_rebuild below, so replay cost is one rebuild, not one per
    // buffered fraction — the WAL-vs-rebuild trade DESIGN.md §12 discusses.
    let mut dy = DynamicCoop::new(data.tree, ParamMode::Auto, f64::INFINITY);
    let mut pram = Pram::new(REPLAY_PROCS, Model::Crew);
    let stats = wal::replay::<K, _>(dir, wal_watermark, |seq, entry| {
        let ops = match entry {
            wal::WalEntry::Ops(ops) => ops,
            // Advisory epoch-cut provenance: nothing to apply (the final
            // forced rebuild below subsumes any mid-log compaction).
            wal::WalEntry::RebuildMarker { .. } => return Ok(()),
        };
        for op in ops {
            let (node, key) = match op {
                UpdateOp::Insert(n, k) => (n, k),
                UpdateOp::Remove(n, k) => (n, k),
            };
            if node.0 >= node_count {
                return Err(StoreError::InvalidOp {
                    seq,
                    reason: "op names a node outside the recovered tree",
                });
            }
            if *key >= K::SUPREMUM {
                return Err(StoreError::InvalidOp {
                    seq,
                    reason: "op stores the supremum key",
                });
            }
        }
        dy.apply_batch(ops, &mut pram);
        Ok(())
    })?;

    let buffer_blames = match dy.audit_buffers() {
        Ok(()) => 0,
        Err(blames) => blames.len(),
    };
    dy.force_rebuild(&mut pram);
    let gen_stats = dy.gen_stats();
    let report = fc_resilience::audit(dy.structure());
    let findings = report.findings.len();
    if findings > 0 || buffer_blames > 0 || gen_stats.audit_failures > 0 {
        return Err(StoreError::RecoveryAudit {
            findings,
            buffer_blames,
            rebuild_failures: gen_stats.audit_failures,
        });
    }
    Ok(Recovered {
        tree: dy.structure().tree().clone(),
        generation: gen_stats.generation,
        snapshot_id,
        wal_watermark,
        last_seq: stats.last_seq,
        replayed_records: stats.records_applied,
        replayed_ops: stats.ops_applied,
        skipped_records: stats.records_skipped,
        truncated_bytes: stats.truncated_bytes,
        snapshots_skipped,
        rebuild_markers: stats.markers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreConfig};
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-store-rec-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tree(seed: u64) -> CatalogTree<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        gen::balanced_binary(4, 400, SizeDist::Uniform, &mut rng)
    }

    fn no_fsync() -> StoreConfig {
        StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        }
    }

    /// Oracle: the same ops applied in-memory, no disk in the loop.
    fn oracle(t: &CatalogTree<i64>, batches: &[Vec<UpdateOp<i64>>]) -> CatalogTree<i64> {
        let mut dy = DynamicCoop::new(t.clone(), ParamMode::Auto, f64::INFINITY);
        let mut pram = Pram::new(64, Model::Crew);
        for b in batches {
            dy.apply_batch(b, &mut pram);
        }
        dy.force_rebuild(&mut pram);
        dy.structure().tree().clone()
    }

    fn batches(t: &CatalogTree<i64>, n: usize) -> Vec<Vec<UpdateOp<i64>>> {
        let nodes = t.len() as u32;
        (0..n)
            .map(|i| {
                let node = NodeId((i as u32 * 7) % nodes);
                vec![
                    UpdateOp::Insert(node, 1_000_000 + i as i64 * 3),
                    UpdateOp::Insert(node, 1_000_001 + i as i64 * 3),
                    UpdateOp::Remove(node, 1_000_000 + i as i64 * 3),
                ]
            })
            .collect()
    }

    fn trees_equal(a: &CatalogTree<i64>, b: &CatalogTree<i64>) -> bool {
        a.len() == b.len()
            && a.ids()
                .all(|id| a.parent(id) == b.parent(id) && a.catalog(id) == b.catalog(id))
    }

    #[test]
    fn snapshot_plus_wal_replay_matches_oracle() {
        let dir = tmp("oracle");
        let t = tree(21);
        let bs = batches(&t, 12);
        let store = Store::<i64>::open(&dir, no_fsync()).unwrap();
        store.persist_snapshot(&t, 0).unwrap();
        for b in &bs {
            store.append_batch(b).unwrap();
        }
        drop(store);
        let rec = recover::<i64>(&dir).unwrap();
        assert_eq!(rec.replayed_records, 12);
        assert_eq!(rec.replayed_ops, 36);
        assert_eq!(rec.last_seq, 12);
        assert!(trees_equal(&rec.tree, &oracle(&t, &bs)), "replay == oracle");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn watermarked_snapshot_halves_the_replay() {
        let dir = tmp("watermark");
        let t = tree(23);
        let bs = batches(&t, 10);
        let store = Store::<i64>::open(&dir, no_fsync()).unwrap();
        store.persist_snapshot(&t, 0).unwrap();
        for b in &bs[..5] {
            store.append_batch(b).unwrap();
        }
        // Mid-stream snapshot of the oracle state at batch 5.
        let mid = oracle(&t, &bs[..5]);
        store.persist_snapshot(&mid, 1).unwrap();
        for b in &bs[5..] {
            store.append_batch(b).unwrap();
        }
        drop(store);
        let rec = recover::<i64>(&dir).unwrap();
        assert_eq!(rec.wal_watermark, 5);
        assert_eq!(rec.replayed_records, 5, "only post-watermark records");
        assert!(trees_equal(&rec.tree, &oracle(&t, &bs)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_range_node_is_invalid_op_not_panic() {
        let dir = tmp("badnode");
        let t = tree(25);
        let store = Store::<i64>::open(&dir, no_fsync()).unwrap();
        store.persist_snapshot(&t, 0).unwrap();
        // A record that decodes fine but names a node the tree lacks.
        store
            .append_batch(&[UpdateOp::Insert(NodeId(t.len() as u32 + 50), 7)])
            .unwrap();
        drop(store);
        let err = recover::<i64>(&dir).unwrap_err();
        assert!(matches!(err, StoreError::InvalidOp { seq: 1, .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_snapshot_is_typed() {
        let dir = tmp("nosnap");
        assert!(matches!(
            recover::<i64>(&dir).unwrap_err(),
            StoreError::NoSnapshot { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
