//! Typed durability errors.
//!
//! The store extends the workspace's correctness contract to disk: a
//! recovery either reproduces an audited-clean structure or returns one of
//! these errors — corrupted bytes must never surface as a silently-wrong
//! answer, and the recovery path must never panic on them (enforced by
//! `cargo xtask lint` over `wal.rs` / `snapshot.rs` / `recover.rs`).

use std::path::PathBuf;

/// Everything that can go wrong between the bytes on disk and a served
/// generation.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing (`"open"`, `"rename"`, `"fsync"`, ...).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file does not start with the expected magic bytes.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found on disk.
        version: u32,
    },
    /// The file encodes keys of a different width than the requested key
    /// type (e.g. an `i32` store opened as `i64`).
    KeyWidthMismatch {
        /// The offending file.
        path: PathBuf,
        /// Width of the requested key type, in bytes.
        expected: u32,
        /// Width recorded on disk.
        found: u32,
    },
    /// A section's CRC-32 does not match its bytes (bit flip, partial
    /// overwrite).
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// Which section failed (`"header"`, `"parents"`, `"keys"`, ...).
        section: &'static str,
    },
    /// The file ends before a section it promised (and the context rules
    /// out a legal torn tail — torn WAL tails are truncated, not errored).
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// The section that was cut short.
        section: &'static str,
    },
    /// The snapshot's checksums pass but its content cannot form a valid
    /// catalog tree (bad parent order, non-increasing catalog, ...).
    SnapshotInvalid {
        /// The offending file.
        path: PathBuf,
        /// Human-readable violation.
        reason: String,
    },
    /// A WAL record is corrupt in a position where torn-tail truncation is
    /// not a sound explanation (mid-segment bad CRC, impossible sequence
    /// number, undecodable op).
    WalCorrupt {
        /// The offending segment.
        path: PathBuf,
        /// Byte offset of the corrupt record frame.
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
    /// The WAL is missing records: the next segment on disk starts past
    /// the highest sequence number recovered so far.
    MissingSegment {
        /// The last sequence number accounted for; `after_seq + 1` is the
        /// first missing record.
        after_seq: u64,
    },
    /// A WAL record decoded cleanly (framing and CRC pass) but names an op
    /// the recovered tree cannot accept — a node outside the tree or a
    /// supremum key. Applying it would panic inside `DynamicCoop`, so
    /// recovery refuses with this instead.
    InvalidOp {
        /// Sequence number of the offending record.
        seq: u64,
        /// What was wrong with the op.
        reason: &'static str,
    },
    /// No snapshot file in the store directory parsed as valid.
    NoSnapshot {
        /// Snapshot files that were found but rejected as corrupt.
        corrupt: usize,
    },
    /// Recovery rebuilt a structure but the post-recovery audit found it
    /// dirty; the store refuses to hand it out.
    RecoveryAudit {
        /// Structural blame findings from `fc_resilience::audit`.
        findings: usize,
        /// Buffer-invariant violations from `DynamicCoop::audit_buffers`.
        buffer_blames: usize,
        /// Rebuilds whose self-audit failed during replay.
        rebuild_failures: u64,
    },
    /// The cluster manifest is unreadable or inconsistent with the shard
    /// data on disk.
    ManifestInvalid {
        /// Human-readable violation.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "io error during {op} on {}: {source}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "bad magic in {}", path.display())
            }
            StoreError::UnsupportedVersion { path, version } => {
                write!(
                    f,
                    "unsupported format version {version} in {}",
                    path.display()
                )
            }
            StoreError::KeyWidthMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "key width mismatch in {}: expected {expected} bytes, found {found}",
                path.display()
            ),
            StoreError::ChecksumMismatch { path, section } => {
                write!(f, "checksum mismatch in {} ({section})", path.display())
            }
            StoreError::Truncated { path, section } => {
                write!(f, "{} truncated mid-{section}", path.display())
            }
            StoreError::SnapshotInvalid { path, reason } => {
                write!(f, "invalid snapshot {}: {reason}", path.display())
            }
            StoreError::WalCorrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt WAL record in {} at byte {offset}: {reason}",
                path.display()
            ),
            StoreError::MissingSegment { after_seq } => {
                write!(f, "WAL is missing records after sequence {after_seq}")
            }
            StoreError::InvalidOp { seq, reason } => {
                write!(f, "WAL record {seq} holds an inapplicable op: {reason}")
            }
            StoreError::NoSnapshot { corrupt } => {
                write!(
                    f,
                    "no valid snapshot found ({corrupt} corrupt candidate(s))"
                )
            }
            StoreError::RecoveryAudit {
                findings,
                buffer_blames,
                rebuild_failures,
            } => write!(
                f,
                "recovered structure failed its audit: {findings} structural finding(s), \
                 {buffer_blames} buffer blame(s), {rebuild_failures} rebuild failure(s) — \
                 refusing to serve"
            ),
            StoreError::ManifestInvalid { reason } => {
                write!(f, "invalid cluster manifest: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Helper: wrap an `io::Error` with its operation and path.
    pub fn io(op: &'static str, path: &std::path::Path, source: std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::RecoveryAudit {
            findings: 2,
            buffer_blames: 1,
            rebuild_failures: 0,
        };
        let msg = format!("{e}");
        assert!(msg.contains("refusing to serve"), "{msg}");
        let e = StoreError::MissingSegment { after_seq: 41 };
        assert!(format!("{e}").contains("41"));
    }
}
