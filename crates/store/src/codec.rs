//! Fixed-width key serialization and the CRC-32 every on-disk format in
//! this crate uses.
//!
//! Keys are encoded little-endian at a fixed width per type so snapshot
//! and WAL sections have predictable sizes (the reader can pre-validate
//! section lengths before touching content). The CRC is the standard
//! IEEE/zlib CRC-32 (reflected, polynomial `0xEDB88320`), table-driven and
//! computed at `const`-folded table cost — no external dependency.

/// A catalog key that can round-trip through the store's on-disk formats.
///
/// Implementations must be *total*: any `WIDTH`-byte string decodes to
/// `Some` value (integer keys satisfy this trivially), so a decode failure
/// always means a framing bug, not a key-value quirk — the store treats
/// `None` as corruption.
pub trait KeyCodec: Sized + Copy {
    /// Encoded width in bytes.
    const WIDTH: u32;

    /// Append the little-endian encoding of `self` to `out`.
    fn encode_key(&self, out: &mut Vec<u8>);

    /// Decode from exactly [`KeyCodec::WIDTH`] bytes; `None` on a length
    /// mismatch.
    fn decode_key(bytes: &[u8]) -> Option<Self>;
}

macro_rules! int_codec {
    ($($t:ty => $w:expr),* $(,)?) => {
        $(impl KeyCodec for $t {
            const WIDTH: u32 = $w;

            fn encode_key(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode_key(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        })*
    };
}

int_codec!(i64 => 8, u64 => 8, i32 => 4, u32 => 4);

/// The CRC-32 lookup table (IEEE polynomial, reflected).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the zlib/`cksum -o3` convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vectors for the IEEE CRC-32.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = b"fractional cascading".to_vec();
        let clean = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn int_keys_round_trip() {
        let mut buf = Vec::new();
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            buf.clear();
            v.encode_key(&mut buf);
            assert_eq!(buf.len() as u32, <i64 as KeyCodec>::WIDTH);
            assert_eq!(i64::decode_key(&buf), Some(v));
        }
        let mut buf = Vec::new();
        42u32.encode_key(&mut buf);
        assert_eq!(u32::decode_key(&buf), Some(42));
        assert_eq!(u32::decode_key(&buf[..3]), None, "short read is None");
    }
}
