//! Byte-level plumbing shared by every on-disk format: a bounds-checked
//! cursor for parsing and the temp-file → fsync → atomic-rename write
//! protocol.
//!
//! Nothing here panics or indexes directly — parse failures surface as
//! `None` so the format modules can map them to their typed
//! [`StoreError`](crate::StoreError)s with file/offset context.

use crate::error::StoreError;
use std::fs;
use std::io::Write;
use std::path::Path;

/// A forward-only cursor over a byte slice. Every read is bounds-checked;
/// running off the end yields `None`, never a panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset from the start of the buffer.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Take the next `n` bytes, advancing the cursor.
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// Write `bytes` to `path` atomically: write a sibling temp file, fsync
/// it, rename it over `path`, then fsync the directory so the rename
/// itself is durable. A crash at any point leaves either the old file or
/// the new one — never a half-written mix.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8], fsync: bool) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io("create", &tmp, e))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::io("write", &tmp, e))?;
        if fsync {
            f.sync_all().map_err(|e| StoreError::io("fsync", &tmp, e))?;
        }
    }
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename", path, e))?;
    if fsync {
        if let Some(dir) = path.parent() {
            sync_dir(dir);
        }
    }
    Ok(())
}

/// Fsync a directory so a just-completed rename/create/unlink in it is
/// durable. Directory fsync is a Linux-ism; on filesystems or platforms
/// that refuse it the failure is ignored — the data-file fsync already
/// happened and this is strictly additional hardening.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_is_bounds_checked() {
        let buf = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0];
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), Some(1));
        assert_eq!(r.pos(), 4);
        assert_eq!(r.u64(), Some(2));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), None, "past the end is None, not a panic");
        assert_eq!(r.take(1), None);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("fc-store-frame-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.bin");
        atomic_write(&path, b"first", true).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second-longer", true).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second-longer");
        // No temp litter left behind.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["x.bin".to_string()], "{names:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
