//! Disk fault injection for durability tests: torn writes, bit flips,
//! missing segments, and half-completed rotations.
//!
//! These helpers extend the workspace's fault-injection story (see
//! `fc-resilience::fault` for in-memory corruption) to the storage layer.
//! They are deliberately blunt — byte surgery on real files — because
//! that is exactly what the recovery path has to survive. Test-support
//! code: the recovery paths under `cargo xtask lint` never call in here.

use crate::wal::{encode_segment_header, SEG_HEADER_LEN};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// XOR one byte of `path` at `offset` with `mask` (a simulated bit flip /
/// media error). Errors if the offset is past EOF or the mask is zero.
pub fn flip_byte(path: &Path, offset: u64, mask: u8) -> io::Result<()> {
    if mask == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "mask is zero"));
    }
    let mut bytes = fs::read(path)?;
    let b = bytes
        .get_mut(offset as usize)
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "offset past EOF"))?;
    *b ^= mask;
    fs::write(path, bytes)
}

/// Chop `n` bytes off the end of `path` (a simulated torn write). Returns
/// the new length.
pub fn truncate_tail(path: &Path, n: u64) -> io::Result<u64> {
    let len = fs::metadata(path)?.len();
    let new_len = len.saturating_sub(n);
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(new_len)?;
    Ok(new_len)
}

/// Append raw garbage to `path` (a partially-written frame that never got
/// its fsync).
pub fn append_garbage(path: &Path, garbage: &[u8]) -> io::Result<()> {
    use std::io::Write;
    let mut f = fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(garbage)
}

/// Paths of all WAL segments in `dir`, ascending by start sequence.
pub fn wal_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    crate::wal::list_segments(dir)
        .map(|v| v.into_iter().map(|s| s.path).collect())
        .map_err(|e| io::Error::other(e.to_string()))
}

/// Paths of all snapshot files in `dir`, newest first.
pub fn snapshot_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    crate::snapshot::list_snapshot_files(dir)
        .map(|v| v.into_iter().map(|(_, p)| p).collect())
        .map_err(|e| io::Error::other(e.to_string()))
}

/// Fabricate a **half-completed segment rotation**: copy the final record
/// of the last WAL segment into a brand-new segment whose `start_seq` is
/// that record's sequence number. Replay now sees the same sequence number
/// in two segments — the idempotent-replay regression this store must not
/// double-apply. Returns the new segment's path, or `None` when there is
/// no segment with a full record to duplicate (or the duplicate would
/// collide with the source file's name).
pub fn half_rotate_last_segment(dir: &Path) -> io::Result<Option<PathBuf>> {
    let segs = wal_segments(dir)?;
    let Some(last) = segs.last() else {
        return Ok(None);
    };
    let bytes = fs::read(last)?;
    if bytes.len() < SEG_HEADER_LEN + 16 {
        return Ok(None);
    }
    let key_width = u32::from_le_bytes(bytes[12..16].try_into().unwrap_or([0; 4]));
    // Walk the frames to find the last complete one and its sequence.
    let mut pos = SEG_HEADER_LEN;
    let mut last_frame: Option<(usize, usize, u64)> = None;
    while pos + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap_or([0; 4])) as usize;
        let end = pos + 4 + len + 4;
        if end > bytes.len() || len < 12 {
            break;
        }
        let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap_or([0; 8]));
        last_frame = Some((pos, end, seq));
        pos = end;
    }
    let Some((start, end, seq)) = last_frame else {
        return Ok(None);
    };
    let mut seg = encode_segment_header(key_width, seq);
    seg.extend_from_slice(&bytes[start..end]);
    let path = dir.join(crate::wal::segment_file_name(seq));
    if &path == last {
        return Ok(None);
    }
    fs::write(&path, seg)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreConfig};
    use fc_catalog::NodeId;
    use fc_coop::dynamic::UpdateOp;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fc-store-fault-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn surgery_helpers_do_what_they_say() {
        let dir = tmp("surgery");
        let p = dir.join("f.bin");
        fs::write(&p, [0u8; 16]).unwrap();
        flip_byte(&p, 3, 0x80).unwrap();
        assert_eq!(fs::read(&p).unwrap()[3], 0x80);
        assert!(flip_byte(&p, 99, 1).is_err(), "past EOF is an error");
        assert_eq!(truncate_tail(&p, 6).unwrap(), 10);
        append_garbage(&p, &[1, 2, 3]).unwrap();
        assert_eq!(fs::metadata(&p).unwrap().len(), 13);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn half_rotation_duplicates_the_final_sequence() {
        let dir = tmp("halfrot");
        let cfg = StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        };
        let store = Store::<i64>::open(&dir, cfg).unwrap();
        for i in 0..4 {
            store
                .append_batch(&[UpdateOp::Insert(NodeId(0), i)])
                .unwrap();
        }
        drop(store);
        let dup = half_rotate_last_segment(&dir).unwrap().unwrap();
        assert!(dup.ends_with("wal-00000000000000000004.fcw"), "{dup:?}");
        // Replay applies each sequence exactly once.
        let stats = crate::wal::replay::<i64, _>(&dir, 0, |_, _| Ok(())).unwrap();
        assert_eq!(stats.records_applied, 4);
        assert_eq!(stats.records_skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
