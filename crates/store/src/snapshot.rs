//! The versioned, checksummed generation snapshot format.
//!
//! A snapshot is one published generation's full logical state — the
//! catalog tree, flattened into three fixed-layout sections — plus the WAL
//! sequence number it is current through (`wal_watermark`), so recovery
//! knows exactly which log records are already baked in.
//!
//! ## Layout (format 1, all integers little-endian)
//!
//! ```text
//! magic        8B  "FCSNAP01"
//! format       u32
//! key_width    u32  bytes per key (must match the opening key type)
//! node_count   u64
//! total_keys   u64
//! logical_gen  u64  DynamicCoop generation the snapshot was cut from
//! wal_watermark u64 highest WAL seq reflected in the catalogs
//! header_crc   u32  CRC-32 of the 48 header bytes above
//! parents      node_count × u32   (u32::MAX = root)          + u32 CRC
//! lens         node_count × u32   per-node catalog lengths   + u32 CRC
//! keys         total_keys × key_width, node-major             + u32 CRC
//! ```
//!
//! Files are named `snap-<id>.fcs` with a zero-padded store-monotone id
//! (ids only grow, so "newest" is a filename sort, not an mtime race) and
//! written via temp-file + fsync + atomic rename ([`crate::frame`]).
//!
//! Reading **re-validates everything**: magic, version, key width, every
//! section CRC, and then the structural preconditions of
//! [`CatalogTree::from_parents`] (exactly one root, parents precede
//! children, strictly increasing catalogs below the supremum) — the tree
//! builder panics on violations, so the reader proves them impossible
//! first and returns typed [`StoreError`]s instead. This file is in the
//! `cargo xtask lint` panic-free/index-free scope up to its tests.

use crate::codec::{crc32, KeyCodec};
use crate::error::StoreError;
use crate::frame::{atomic_write, Reader};
use fc_catalog::{CatalogKey, CatalogTree};
use std::fs;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FCSNAP01";
const FORMAT: u32 = 1;
/// Header bytes covered by `header_crc`.
const HEADER_LEN: usize = 48;

/// A decoded snapshot: the reconstructed tree plus its provenance.
#[derive(Debug, Clone)]
pub struct SnapshotData<K: CatalogKey> {
    /// The catalog tree exactly as persisted (drained — no buffered ops).
    pub tree: CatalogTree<K>,
    /// `DynamicCoop` generation counter at the time the snapshot was cut.
    pub logical_gen: u64,
    /// Highest WAL sequence number whose effects the tree includes;
    /// recovery replays strictly newer records only.
    pub wal_watermark: u64,
}

/// File name for snapshot id `id` (zero-padded so lexicographic order is
/// numeric order).
pub(crate) fn snap_file_name(id: u64) -> String {
    format!("snap-{id:020}.fcs")
}

/// Parse a snapshot id back out of a file name.
pub(crate) fn parse_snap_id(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".fcs")?
        .parse()
        .ok()
}

/// Serialize `tree` in the format described in the module docs.
pub fn encode_snapshot<K: CatalogKey + KeyCodec>(
    tree: &CatalogTree<K>,
    logical_gen: u64,
    wal_watermark: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&K::WIDTH.to_le_bytes());
    out.extend_from_slice(&(tree.len() as u64).to_le_bytes());
    out.extend_from_slice(&(tree.total_catalog_size() as u64).to_le_bytes());
    out.extend_from_slice(&logical_gen.to_le_bytes());
    out.extend_from_slice(&wal_watermark.to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());

    let mut sec: Vec<u8> = Vec::new();
    for id in tree.ids() {
        let p = tree.parent(id).map_or(u32::MAX, |p| p.0);
        sec.extend_from_slice(&p.to_le_bytes());
    }
    out.extend_from_slice(&sec);
    out.extend_from_slice(&crc32(&sec).to_le_bytes());

    sec.clear();
    for id in tree.ids() {
        sec.extend_from_slice(&(tree.catalog(id).len() as u32).to_le_bytes());
    }
    out.extend_from_slice(&sec);
    out.extend_from_slice(&crc32(&sec).to_le_bytes());

    sec.clear();
    // The tree stores all catalogs node-major in one flat array — the
    // byte-identical keys section falls out of a single pass over it.
    for k in tree.catalog_flat() {
        k.encode_key(&mut sec);
    }
    out.extend_from_slice(&sec);
    out.extend_from_slice(&crc32(&sec).to_le_bytes());
    out
}

fn truncated(path: &Path, section: &'static str) -> StoreError {
    StoreError::Truncated {
        path: path.to_path_buf(),
        section,
    }
}

fn invalid(path: &Path, reason: impl Into<String>) -> StoreError {
    StoreError::SnapshotInvalid {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// Decode and fully validate a snapshot (see module docs). The returned
/// tree is guaranteed constructible: every `CatalogTree::from_parents`
/// precondition has been checked with a typed error first.
pub fn decode_snapshot<K: CatalogKey + KeyCodec>(
    path: &Path,
    bytes: &[u8],
) -> Result<SnapshotData<K>, StoreError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8).ok_or_else(|| truncated(path, "header"))?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let format = r.u32().ok_or_else(|| truncated(path, "header"))?;
    if format != FORMAT {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            version: format,
        });
    }
    let width = r.u32().ok_or_else(|| truncated(path, "header"))?;
    if width != K::WIDTH {
        return Err(StoreError::KeyWidthMismatch {
            path: path.to_path_buf(),
            expected: K::WIDTH,
            found: width,
        });
    }
    let node_count = r.u64().ok_or_else(|| truncated(path, "header"))?;
    let total_keys = r.u64().ok_or_else(|| truncated(path, "header"))?;
    let logical_gen = r.u64().ok_or_else(|| truncated(path, "header"))?;
    let wal_watermark = r.u64().ok_or_else(|| truncated(path, "header"))?;
    let header_crc = r.u32().ok_or_else(|| truncated(path, "header"))?;
    let header = bytes
        .get(..HEADER_LEN)
        .ok_or_else(|| truncated(path, "header"))?;
    if crc32(header) != header_crc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            section: "header",
        });
    }

    let nc = usize::try_from(node_count)
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| invalid(path, format!("node_count {node_count} unusable")))?;
    let tk = usize::try_from(total_keys)
        .ok()
        .ok_or_else(|| invalid(path, "total_keys overflows usize"))?;
    let parents_len = nc
        .checked_mul(4)
        .ok_or_else(|| invalid(path, "parents section overflows"))?;
    let keys_len = tk
        .checked_mul(width as usize)
        .ok_or_else(|| invalid(path, "keys section overflows"))?;
    let expected = parents_len
        .checked_add(parents_len) // lens section is the same size as parents
        .and_then(|v| v.checked_add(keys_len))
        .and_then(|v| v.checked_add(12)) // three section CRCs
        .ok_or_else(|| invalid(path, "section sizes overflow"))?;
    if r.remaining() < expected {
        return Err(truncated(path, "sections"));
    }
    if r.remaining() > expected {
        return Err(invalid(path, "trailing bytes after last section"));
    }

    let psec = r
        .take(parents_len)
        .ok_or_else(|| truncated(path, "parents"))?;
    let pcrc = r.u32().ok_or_else(|| truncated(path, "parents"))?;
    if crc32(psec) != pcrc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            section: "parents",
        });
    }
    let lsec = r.take(parents_len).ok_or_else(|| truncated(path, "lens"))?;
    let lcrc = r.u32().ok_or_else(|| truncated(path, "lens"))?;
    if crc32(lsec) != lcrc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            section: "lens",
        });
    }
    let ksec = r.take(keys_len).ok_or_else(|| truncated(path, "keys"))?;
    let kcrc = r.u32().ok_or_else(|| truncated(path, "keys"))?;
    if crc32(ksec) != kcrc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            section: "keys",
        });
    }

    // Checksums pass: now prove the content can form a tree before handing
    // it to the (panicking) builder.
    let parents = read_u32s(psec, nc).ok_or_else(|| invalid(path, "parents undecodable"))?;
    let lens = read_u32s(lsec, nc).ok_or_else(|| invalid(path, "lens undecodable"))?;
    let lens_sum: u64 = lens.iter().map(|&l| l as u64).sum();
    if lens_sum != total_keys {
        return Err(invalid(
            path,
            format!("catalog lengths sum to {lens_sum}, header says {total_keys}"),
        ));
    }
    let mut root_seen = false;
    let mut child_counts = vec![0u8; nc];
    for (i, &p) in parents.iter().enumerate() {
        if p == u32::MAX {
            if root_seen {
                return Err(invalid(path, "more than one root"));
            }
            root_seen = true;
        } else if (p as usize) >= i {
            return Err(invalid(
                path,
                format!("parent {p} of node {i} does not precede it"),
            ));
        } else if let Some(c) = child_counts.get_mut(p as usize) {
            *c = c.saturating_add(1);
            if *c > 2 {
                // The whole serving stack preprocesses binary trees only
                // (higher degrees are binarized before they reach a
                // service); a >2 fan-out would panic inside preprocess.
                return Err(invalid(
                    path,
                    format!("node {p} has more than two children"),
                ));
            }
        }
    }
    if !root_seen {
        return Err(invalid(path, "no root node"));
    }

    let mut kr = Reader::new(ksec);
    let mut catalogs: Vec<Vec<K>> = Vec::with_capacity(nc);
    for (i, &len) in lens.iter().enumerate() {
        let mut cat: Vec<K> = Vec::with_capacity(len as usize);
        for _ in 0..len {
            let kb = kr
                .take(K::WIDTH as usize)
                .ok_or_else(|| truncated(path, "keys"))?;
            let k = K::decode_key(kb).ok_or_else(|| invalid(path, "key undecodable"))?;
            if k >= K::SUPREMUM {
                return Err(invalid(path, format!("node {i} stores the supremum")));
            }
            cat.push(k);
        }
        let increasing = cat.windows(2).all(|w| match w {
            [a, b] => a < b,
            _ => true,
        });
        if !increasing {
            return Err(invalid(
                path,
                format!("catalog of node {i} not strictly increasing"),
            ));
        }
        catalogs.push(cat);
    }

    let parent_opts: Vec<Option<u32>> = parents
        .iter()
        .map(|&p| if p == u32::MAX { None } else { Some(p) })
        .collect();
    // Every from_parents precondition is now proven: exactly one root,
    // parents precede children, catalogs strictly increasing and below the
    // supremum — this cannot panic.
    let tree = CatalogTree::from_parents(parent_opts, catalogs);
    Ok(SnapshotData {
        tree,
        logical_gen,
        wal_watermark,
    })
}

fn read_u32s(sec: &[u8], n: usize) -> Option<Vec<u32>> {
    let mut r = Reader::new(sec);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Some(out)
}

/// Encode and atomically persist a snapshot as `snap-<id>.fcs` in `dir`.
/// Returns the final path.
pub fn write_snapshot_file<K: CatalogKey + KeyCodec>(
    dir: &Path,
    snap_id: u64,
    tree: &CatalogTree<K>,
    logical_gen: u64,
    wal_watermark: u64,
    fsync: bool,
) -> Result<PathBuf, StoreError> {
    let bytes = encode_snapshot(tree, logical_gen, wal_watermark);
    let path = dir.join(snap_file_name(snap_id));
    atomic_write(&path, &bytes, fsync)?;
    Ok(path)
}

/// Read and fully validate one snapshot file.
pub fn read_snapshot_file<K: CatalogKey + KeyCodec>(
    path: &Path,
) -> Result<SnapshotData<K>, StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io("read", path, e))?;
    decode_snapshot(path, &bytes)
}

/// All snapshot files in `dir` as `(id, path)`, newest (highest id) first.
pub fn list_snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io("read_dir", dir, e))?;
    let mut out: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read_dir", dir, e))?;
        let name = entry.file_name();
        if let Some(id) = name.to_str().and_then(parse_snap_id) {
            out.push((id, entry.path()));
        }
    }
    out.sort_by_key(|&(id, _)| std::cmp::Reverse(id));
    Ok(out)
}

/// Load the newest snapshot that validates end to end, skipping corrupt
/// newer ones (each skip is counted). Errors with the *newest* candidate's
/// failure when nothing validates, or [`StoreError::NoSnapshot`] when the
/// directory has no snapshot files at all.
pub fn load_newest_valid<K: CatalogKey + KeyCodec>(
    dir: &Path,
) -> Result<(u64, SnapshotData<K>, usize), StoreError> {
    let candidates = list_snapshot_files(dir)?;
    if candidates.is_empty() {
        return Err(StoreError::NoSnapshot { corrupt: 0 });
    }
    let mut first_err: Option<StoreError> = None;
    let mut skipped = 0usize;
    for (id, path) in &candidates {
        match read_snapshot_file::<K>(path) {
            Ok(data) => return Ok((*id, data, skipped)),
            Err(e) => {
                skipped += 1;
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    Err(first_err.unwrap_or(StoreError::NoSnapshot { corrupt: skipped }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-store-snap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tree(seed: u64) -> CatalogTree<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        gen::balanced_binary(5, 900, SizeDist::Uniform, &mut rng)
    }

    fn trees_equal(a: &CatalogTree<i64>, b: &CatalogTree<i64>) -> bool {
        a.len() == b.len()
            && a.ids()
                .all(|id| a.parent(id) == b.parent(id) && a.catalog(id) == b.catalog(id))
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = tmp("roundtrip");
        let t = tree(11);
        let path = write_snapshot_file(&dir, 7, &t, 3, 99, true).unwrap();
        let bytes1 = fs::read(&path).unwrap();
        let data = read_snapshot_file::<i64>(&path).unwrap();
        assert_eq!(data.logical_gen, 3);
        assert_eq!(data.wal_watermark, 99);
        assert!(trees_equal(&t, &data.tree));
        // Re-encoding the decoded tree reproduces the same bytes.
        let bytes2 = encode_snapshot(&data.tree, 3, 99);
        assert_eq!(bytes1, bytes2, "snapshot encoding is canonical");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_section_crc_catches_a_flip() {
        let dir = tmp("flips");
        let t = tree(13);
        let path = write_snapshot_file(&dir, 1, &t, 0, 0, false).unwrap();
        let clean = fs::read(&path).unwrap();
        // Flip one byte in each structural region and expect a typed error.
        for &off in &[9usize, 20, HEADER_LEN + 2, clean.len() - 6] {
            let mut bad = clean.clone();
            bad[off] ^= 0x40;
            let err = decode_snapshot::<i64>(&path, &bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::ChecksumMismatch { .. }
                        | StoreError::UnsupportedVersion { .. }
                        | StoreError::KeyWidthMismatch { .. }
                        | StoreError::SnapshotInvalid { .. }
                        | StoreError::Truncated { .. }
                ),
                "offset {off}: {err}"
            );
        }
        // Magic flip is its own error.
        let mut bad = clean.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot::<i64>(&path, &bad).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_width_is_typed() {
        let dir = tmp("width");
        let t = tree(15);
        let path = write_snapshot_file(&dir, 1, &t, 0, 0, false).unwrap();
        let err = read_snapshot_file::<i32>(&path).unwrap_err();
        assert!(matches!(
            err,
            StoreError::KeyWidthMismatch {
                expected: 4,
                found: 8,
                ..
            }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_valid_skips_corrupt_newer_snapshots() {
        let dir = tmp("newest");
        let t = tree(17);
        write_snapshot_file(&dir, 1, &t, 1, 10, false).unwrap();
        let newer = write_snapshot_file(&dir, 2, &t, 2, 20, false).unwrap();
        // Corrupt the newer one.
        let mut bytes = fs::read(&newer).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newer, bytes).unwrap();
        let (id, data, skipped) = load_newest_valid::<i64>(&dir).unwrap();
        assert_eq!((id, skipped), (1, 1));
        assert_eq!(data.wal_watermark, 10);
        // Corrupt both: the newest candidate's typed error comes back.
        let older = dir.join(snap_file_name(1));
        let mut bytes = fs::read(&older).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&older, bytes).unwrap();
        assert!(load_newest_valid::<i64>(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_no_snapshot() {
        let dir = tmp("empty");
        assert!(matches!(
            load_newest_valid::<i64>(&dir).unwrap_err(),
            StoreError::NoSnapshot { corrupt: 0 }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_ids_sort_numerically() {
        assert_eq!(parse_snap_id(&snap_file_name(7)), Some(7));
        assert_eq!(parse_snap_id("snap-x.fcs"), None);
        assert!(snap_file_name(9) < snap_file_name(10), "zero padding");
    }
}
