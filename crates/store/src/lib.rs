//! fc-store: snapshot + WAL durability for fractional-cascading services.
//!
//! This crate extends the workspace's correctness contract — *the
//! oracle-equal answer or a typed error, never a silently-wrong answer* —
//! across process death. It persists a published
//! [`CatalogTree`](fc_catalog::CatalogTree) generation as a versioned,
//! checksummed [`snapshot`], logs every buffered
//! [`UpdateOp`](fc_coop::dynamic::UpdateOp) batch through a CRC-framed
//! [`wal`] *before* the in-memory structure sees it, and on restart
//! [`recover`](recover())s by replaying the log into a fresh generation and
//! refusing — with a typed [`StoreError`] — to serve anything the
//! `fc-resilience` blame audit cannot prove clean.
//!
//! The pieces:
//!
//! * [`Store`] — one directory of `snap-*.fcs` + `wal-*.fcw` files with an
//!   append/persist/prune API (`fc-serve`'s `DurableService` wraps it).
//! * [`recover()`] — the crash-recovery state machine: newest valid
//!   snapshot → ordered idempotent replay → forced rebuild → audit.
//! * [`manifest`] — the cluster commit point: routing-table version and
//!   cuts persisted alongside per-shard stores so `fc-shard` cold-starts
//!   with routing restored (`DurableCluster`).
//! * [`fault`] — byte-surgery helpers (torn writes, bit flips, missing
//!   segments, half rotations) for the durability test suites.
//!
//! Everything is `std`-only: keys serialize through [`KeyCodec`], the
//! CRC-32 is built in, and the recovery paths (`snapshot.rs`, `wal.rs`,
//! `recover.rs`, `manifest.rs`) are in the `cargo xtask lint` scope —
//! lexically panic-free and index-free, because a recovery that panics on
//! corrupt bytes is just a slower way to serve a wrong answer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
mod error;
pub mod fault;
mod frame;
pub mod manifest;
mod recover;
pub mod snapshot;
mod store;
pub mod wal;

pub use codec::{crc32, KeyCodec};
pub use error::StoreError;
pub use manifest::{read_manifest, write_manifest, Manifest};
pub use recover::{recover, Recovered};
pub use snapshot::{load_newest_valid, read_snapshot_file, write_snapshot_file, SnapshotData};
pub use store::{Store, StoreConfig};
pub use wal::{ReplayStats, WalEntry};
