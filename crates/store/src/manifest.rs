//! The cluster manifest: the single commit point for a durable cluster's
//! shape.
//!
//! `MANIFEST.fcm` records the checkpoint epoch, the routing-table version
//! and its cut keys. Shard data lives under `epoch-<n>/shard-<i>/`
//! (each an independent [`crate::Store`] directory); the manifest's atomic
//! rename is what commits a new epoch — a crash mid-split leaves the old
//! manifest pointing at the old epoch directory, whose shard stores are
//! untouched, so a restart never sees a half-split routing table.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic         8B  "FCMANIF1"
//! format        u32
//! key_width     u32
//! epoch         u64  checkpoint epoch directory to load
//! table_version u64  RoutingTable version to restore
//! shard_count   u64
//! cuts          (shard_count − 1) × key_width, strictly ascending
//! crc           u32  CRC-32 of everything above
//! ```
//!
//! This file is in the `cargo xtask lint` panic-free/index-free scope up
//! to its tests.

use crate::codec::{crc32, KeyCodec};
use crate::error::StoreError;
use crate::frame::{atomic_write, Reader};
use fc_catalog::CatalogKey;
use std::fs;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FCMANIF1";
const FORMAT: u32 = 1;
/// File name of the manifest inside a cluster directory.
pub const MANIFEST_FILE: &str = "MANIFEST.fcm";

/// A durable cluster's committed shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest<K> {
    /// Checkpoint epoch; shard stores live under `epoch-<epoch>/shard-<i>/`.
    pub epoch: u64,
    /// Routing-table version to restore (queries carry this for staleness
    /// detection, so it must survive restarts).
    pub table_version: u64,
    /// Routing cut keys, strictly ascending; shard `i` owns
    /// `[cuts[i-1], cuts[i])`.
    pub cuts: Vec<K>,
}

impl<K> Manifest<K> {
    /// Number of shards this manifest describes.
    pub fn shards(&self) -> usize {
        self.cuts.len() + 1
    }
}

/// Directory of checkpoint epoch `epoch` under `dir`.
pub fn epoch_dir(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("epoch-{epoch}"))
}

/// Store directory of shard `shard` inside an epoch directory.
pub fn shard_dir(epoch_dir: &Path, shard: usize) -> PathBuf {
    epoch_dir.join(format!("shard-{shard}"))
}

/// Serialize a manifest.
pub fn encode_manifest<K: CatalogKey + KeyCodec>(m: &Manifest<K>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&K::WIDTH.to_le_bytes());
    out.extend_from_slice(&m.epoch.to_le_bytes());
    out.extend_from_slice(&m.table_version.to_le_bytes());
    out.extend_from_slice(&(m.shards() as u64).to_le_bytes());
    for c in &m.cuts {
        c.encode_key(&mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn invalid(reason: impl Into<String>) -> StoreError {
    StoreError::ManifestInvalid {
        reason: reason.into(),
    }
}

/// Decode and validate a manifest.
pub fn decode_manifest<K: CatalogKey + KeyCodec>(
    path: &Path,
    bytes: &[u8],
) -> Result<Manifest<K>, StoreError> {
    let body_len = match bytes.len().checked_sub(4) {
        Some(n) => n,
        None => {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                section: "manifest",
            })
        }
    };
    let body = bytes.get(..body_len).ok_or_else(|| StoreError::Truncated {
        path: path.to_path_buf(),
        section: "manifest",
    })?;
    let mut r = Reader::new(bytes);
    let magic = r.take(8).ok_or_else(|| StoreError::Truncated {
        path: path.to_path_buf(),
        section: "manifest",
    })?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let truncated = || StoreError::Truncated {
        path: path.to_path_buf(),
        section: "manifest",
    };
    let format = r.u32().ok_or_else(truncated)?;
    if format != FORMAT {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            version: format,
        });
    }
    let width = r.u32().ok_or_else(truncated)?;
    if width != K::WIDTH {
        return Err(StoreError::KeyWidthMismatch {
            path: path.to_path_buf(),
            expected: K::WIDTH,
            found: width,
        });
    }
    let epoch = r.u64().ok_or_else(truncated)?;
    let table_version = r.u64().ok_or_else(truncated)?;
    let shard_count = r.u64().ok_or_else(truncated)?;
    if shard_count == 0 {
        return Err(invalid("zero shards"));
    }
    let cut_count = usize::try_from(shard_count - 1)
        .ok()
        .ok_or_else(|| invalid("shard count overflows"))?;
    let mut cuts: Vec<K> = Vec::with_capacity(cut_count);
    for _ in 0..cut_count {
        let kb = r.take(K::WIDTH as usize).ok_or_else(truncated)?;
        let k = K::decode_key(kb).ok_or_else(|| invalid("cut key undecodable"))?;
        cuts.push(k);
    }
    let crc = r.u32().ok_or_else(truncated)?;
    if r.remaining() != 0 {
        return Err(invalid("trailing bytes"));
    }
    if crc32(body) != crc {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            section: "manifest",
        });
    }
    let ascending = cuts.windows(2).all(|w| match w {
        [a, b] => a < b,
        _ => true,
    });
    if !ascending {
        return Err(invalid("cuts not strictly ascending"));
    }
    Ok(Manifest {
        epoch,
        table_version,
        cuts,
    })
}

/// Atomically commit `m` as `dir/MANIFEST.fcm`. This rename is the commit
/// point for a new epoch.
pub fn write_manifest<K: CatalogKey + KeyCodec>(
    dir: &Path,
    m: &Manifest<K>,
    fsync: bool,
) -> Result<(), StoreError> {
    atomic_write(&dir.join(MANIFEST_FILE), &encode_manifest(m), fsync)
}

/// Read and validate `dir/MANIFEST.fcm`.
pub fn read_manifest<K: CatalogKey + KeyCodec>(dir: &Path) -> Result<Manifest<K>, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    let bytes = fs::read(&path).map_err(|e| StoreError::io("read", &path, e))?;
    decode_manifest(&path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-store-man-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips() {
        let dir = tmp("roundtrip");
        let m = Manifest::<i64> {
            epoch: 3,
            table_version: 9,
            cuts: vec![-5, 100, 10_000],
        };
        write_manifest(&dir, &m, true).unwrap();
        let back = read_manifest::<i64>(&dir).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.shards(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_shard_manifest_has_no_cuts() {
        let dir = tmp("single");
        let m = Manifest::<i64> {
            epoch: 1,
            table_version: 1,
            cuts: vec![],
        };
        write_manifest(&dir, &m, false).unwrap();
        assert_eq!(read_manifest::<i64>(&dir).unwrap().shards(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_typed() {
        let dir = tmp("corrupt");
        let m = Manifest::<i64> {
            epoch: 2,
            table_version: 4,
            cuts: vec![10, 20],
        };
        write_manifest(&dir, &m, false).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let clean = fs::read(&path).unwrap();
        // Flip a cut byte: checksum catches it.
        let mut bad = clean.clone();
        let n = bad.len();
        bad[n - 10] ^= 0x04;
        assert!(matches!(
            decode_manifest::<i64>(&path, &bad).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
        // Truncation is typed.
        assert!(matches!(
            decode_manifest::<i64>(&path, &clean[..clean.len() - 5]).unwrap_err(),
            StoreError::Truncated { .. }
        ));
        // Descending cuts (with a fixed-up CRC) are structurally invalid.
        let bad = encode_manifest(&Manifest::<i64> {
            epoch: 2,
            table_version: 4,
            cuts: vec![20, 10],
        });
        assert!(matches!(
            decode_manifest::<i64>(&path, &bad).unwrap_err(),
            StoreError::ManifestInvalid { .. }
        ));
        // Wrong key width is typed.
        assert!(matches!(
            decode_manifest::<i32>(&path, &clean).unwrap_err(),
            StoreError::KeyWidthMismatch { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layout_helpers_compose() {
        let base = PathBuf::from("/x");
        let e = epoch_dir(&base, 4);
        assert_eq!(e, PathBuf::from("/x/epoch-4"));
        assert_eq!(shard_dir(&e, 2), PathBuf::from("/x/epoch-4/shard-2"));
    }
}
