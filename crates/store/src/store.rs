//! The [`Store`]: one directory holding snapshots + WAL for one catalog
//! tree, with an append/persist/prune API the serving layers wrap.
//!
//! A store directory contains `snap-<id>.fcs` files (newest-id wins) and
//! `wal-<start_seq>.fcw` segments. Opening a store scans both: it learns
//! the next snapshot id and — by replaying the log headers/frames without
//! applying anything — the next WAL sequence number, truncating any torn
//! tail it finds so the writer never appends onto a damaged segment.
//!
//! The full load-snapshot-then-replay recovery lives in
//! [`crate::recover`]; this type only manages the files and the write
//! path.

use crate::codec::KeyCodec;
use crate::error::StoreError;
use crate::snapshot;
use crate::wal::{self, WalWriter};
use fc_catalog::{CatalogKey, CatalogTree};
use fc_coop::dynamic::UpdateOp;
use std::fs;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Durability knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Rotate the active WAL segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Fsync every WAL append and snapshot write. Turning this off trades
    /// crash durability for speed (tests and benchmarks only).
    pub fsync: bool,
    /// How many snapshots [`Store::prune`] keeps (at least 1).
    pub keep_snapshots: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 1 << 20,
            fsync: true,
            keep_snapshots: 2,
        }
    }
}

struct Inner {
    wal: WalWriter,
    next_snap_id: u64,
    /// Watermark of the newest snapshot persisted (or loaded at open);
    /// prune may delete WAL segments entirely at or below it.
    last_watermark: u64,
}

/// Snapshot + WAL files for one catalog tree, in one directory.
pub struct Store<K: CatalogKey + KeyCodec> {
    dir: PathBuf,
    cfg: StoreConfig,
    inner: Mutex<Inner>,
    _key: PhantomData<K>,
}

impl<K: CatalogKey + KeyCodec> Store<K> {
    /// Open (creating the directory if needed) and scan the store.
    ///
    /// The scan truncates torn WAL tails and positions the writer after
    /// the highest durable sequence number; it does **not** validate that
    /// the snapshot + log form a recoverable whole — that is
    /// [`crate::recover`]'s job.
    pub fn open(dir: &Path, cfg: StoreConfig) -> Result<Self, StoreError> {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir, e))?;
        let (watermark, next_snap_id) = match snapshot::load_newest_valid::<K>(dir) {
            Ok((id, data, _)) => (data.wal_watermark, id + 1),
            Err(_) => {
                // No usable snapshot: still derive the next id from the
                // files present so ids stay store-monotone.
                let next = snapshot::list_snapshot_files(dir)?
                    .first()
                    .map_or(1, |(id, _)| id + 1);
                (0, next)
            }
        };
        // Baseline the scan at whatever the oldest remaining segment can
        // cover: after pruning, segments below the snapshot watermark are
        // legitimately gone and must not read as a missing-segment gap.
        let baseline = wal::list_segments(dir)?
            .first()
            .map_or(watermark, |s| watermark.max(s.start_seq.saturating_sub(1)));
        let scan = wal::replay::<K, _>(dir, baseline, |_, _| Ok(()))?;
        let next_seq = scan.last_seq.max(watermark) + 1;
        Ok(Store {
            dir: dir.to_path_buf(),
            cfg,
            inner: Mutex::new(Inner {
                wal: WalWriter::new(dir, K::WIDTH, cfg.fsync, cfg.segment_bytes, next_seq),
                next_snap_id,
                last_watermark: watermark,
            }),
            _key: PhantomData,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active configuration.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sequence number of the most recently appended record (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.lock().wal.next_seq().saturating_sub(1)
    }

    /// Append one durable record for `ops`; returns its sequence number.
    /// With fsync enabled the record is on disk when this returns — the
    /// caller may only then apply the ops to the in-memory structure.
    pub fn append_batch(&self, ops: &[UpdateOp<K>]) -> Result<u64, StoreError> {
        // fc-lint: allow(lock-discipline) -- intentional: the WAL mutex must cover the fsynced append so records hit the log in sequence order
        self.lock().wal.append(ops)
    }

    /// Append a durable rebuild-marker record: the caller cut a
    /// clone-and-rebuild epoch (compaction) whose logical generation is
    /// `generation`. Persist the matching snapshot *after* this returns so
    /// the snapshot watermark covers the marker.
    pub fn append_rebuild_marker(&self, generation: u64) -> Result<u64, StoreError> {
        // fc-lint: allow(lock-discipline) -- intentional: same ordering contract as append_batch
        self.lock().wal.append_marker(generation)
    }

    /// Atomically persist `tree` as the next snapshot, watermarked at the
    /// last appended sequence number. Returns the snapshot id.
    pub fn persist_snapshot(
        &self,
        tree: &CatalogTree<K>,
        logical_gen: u64,
    ) -> Result<u64, StoreError> {
        let mut inner = self.lock();
        let watermark = inner.wal.next_seq().saturating_sub(1);
        let id = inner.next_snap_id;
        // fc-lint: allow(lock-discipline) -- intentional: the watermark read and the snapshot write must be atomic w.r.t. concurrent appends
        snapshot::write_snapshot_file(&self.dir, id, tree, logical_gen, watermark, self.cfg.fsync)?;
        inner.next_snap_id = id + 1;
        inner.last_watermark = watermark;
        Ok(id)
    }

    /// Delete snapshots beyond the configured retention and WAL segments
    /// wholly covered by the newest snapshot's watermark. The active (last)
    /// segment is never deleted. Returns `(snapshots, segments)` removed.
    pub fn prune(&self) -> Result<(usize, usize), StoreError> {
        let inner = self.lock();
        let keep = self.cfg.keep_snapshots.max(1);
        let snaps = snapshot::list_snapshot_files(&self.dir)?;
        let mut removed_snaps = 0;
        for (_, path) in snaps.iter().skip(keep) {
            fs::remove_file(path).map_err(|e| StoreError::io("remove", path, e))?;
            removed_snaps += 1;
        }
        let segs = wal::list_segments(&self.dir)?;
        let mut removed_segs = 0;
        // Segment i spans [segs[i].start_seq, segs[i+1].start_seq); it is
        // dead once that whole range is at or below the watermark.
        for pair in segs.windows(2) {
            if let [seg, next] = pair {
                if next.start_seq <= inner.last_watermark + 1 {
                    fs::remove_file(&seg.path)
                        .map_err(|e| StoreError::io("remove", &seg.path, e))?;
                    removed_segs += 1;
                }
            }
        }
        Ok((removed_snaps, removed_segs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fc-store-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tree(seed: u64) -> CatalogTree<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        gen::balanced_binary(4, 300, SizeDist::Uniform, &mut rng)
    }

    fn ops(base: i64) -> Vec<UpdateOp<i64>> {
        vec![
            UpdateOp::Insert(NodeId(0), base),
            UpdateOp::Remove(NodeId(1), base),
        ]
    }

    #[test]
    fn sequence_numbers_survive_reopen() {
        let dir = tmp("reopen");
        let cfg = StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        };
        {
            let store = Store::<i64>::open(&dir, cfg).unwrap();
            assert_eq!(store.append_batch(&ops(1)).unwrap(), 1);
            assert_eq!(store.append_batch(&ops(2)).unwrap(), 2);
            assert_eq!(store.last_seq(), 2);
        }
        let store = Store::<i64>::open(&dir, cfg).unwrap();
        assert_eq!(store.last_seq(), 2, "scan finds the durable tail");
        assert_eq!(store.append_batch(&ops(3)).unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_ids_stay_monotone_across_reopen() {
        let dir = tmp("monotone");
        let cfg = StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        };
        let t = tree(3);
        {
            let store = Store::<i64>::open(&dir, cfg).unwrap();
            assert_eq!(store.persist_snapshot(&t, 0).unwrap(), 1);
            assert_eq!(store.persist_snapshot(&t, 1).unwrap(), 2);
        }
        let store = Store::<i64>::open(&dir, cfg).unwrap();
        assert_eq!(store.persist_snapshot(&t, 2).unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_retention_and_live_segments() {
        let dir = tmp("prune");
        let cfg = StoreConfig {
            segment_bytes: 64, // rotate roughly every record
            fsync: false,
            keep_snapshots: 2,
        };
        let store = Store::<i64>::open(&dir, cfg).unwrap();
        let t = tree(5);
        for i in 0..6 {
            store.append_batch(&ops(i)).unwrap();
            store.persist_snapshot(&t, i as u64).unwrap();
        }
        let (rs, rg) = store.prune().unwrap();
        assert_eq!(rs, 4, "6 snapshots, keep 2");
        assert!(rg >= 4, "covered segments pruned, got {rg}");
        let segs = wal::list_segments(&dir).unwrap();
        assert!(!segs.is_empty(), "active segment survives");
        // Store still opens and appends cleanly after pruning.
        drop(store);
        let store = Store::<i64>::open(&dir, cfg).unwrap();
        assert_eq!(store.append_batch(&ops(9)).unwrap(), 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_truncates_torn_tail_before_writing() {
        let dir = tmp("torn-open");
        let cfg = StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        };
        {
            let store = Store::<i64>::open(&dir, cfg).unwrap();
            for i in 0..3 {
                store.append_batch(&ops(i)).unwrap();
            }
        }
        let seg = wal::list_segments(&dir).unwrap().pop().unwrap().path;
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 2]).unwrap();
        let store = Store::<i64>::open(&dir, cfg).unwrap();
        assert_eq!(store.last_seq(), 2, "torn record 3 discarded");
        assert_eq!(store.append_batch(&ops(9)).unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
