//! The write-ahead log: length-prefixed, CRC-framed update records in
//! rotated segments.
//!
//! Every durable update batch becomes one record with a monotone sequence
//! number; the record is written and fsynced *before* the in-memory
//! [`DynamicCoop`](fc_coop::dynamic::DynamicCoop) buffers see the ops, so
//! an acknowledged batch survives any crash. Segments rotate once the
//! active one exceeds the configured byte budget; a snapshot's
//! `wal_watermark` lets [`crate::Store::prune`] delete fully-covered
//! segments.
//!
//! ## Layout (all integers little-endian)
//!
//! Segment `wal-<start_seq>.fcw`:
//!
//! ```text
//! magic      8B  "FCWALSG1"
//! format     u32
//! key_width  u32
//! start_seq  u64  sequence number of the segment's first record
//! header_crc u32  CRC-32 of the 24 bytes above
//! record*        frames, back to back
//! ```
//!
//! Record frame: `len:u32 · payload · crc:u32` where the payload is
//! `seq:u64 · op_count:u32 · (tag:u8 · node:u32 · key)*` and the CRC
//! covers the payload. Op tags are `0` (insert) and `1` (remove).
//!
//! A **rebuild marker** record reuses the frame but sets `op_count` to the
//! reserved sentinel `u32::MAX` followed by `tag:u8 = 2 · generation:u64`:
//! it records that the producer cut a clone-and-rebuild epoch (compaction)
//! at this point in the log. Markers carry no catalog mutations — replay
//! surfaces them as [`WalEntry::RebuildMarker`] so recovery can count and
//! align epoch cuts, and they advance the sequence like any record (so a
//! snapshot persisted right after one covers it with its watermark).
//!
//! ## Replay semantics
//!
//! * Records replay in sequence order; a record whose `seq` is at or below
//!   the caller's watermark (or a duplicate from a half-completed segment
//!   rotation) is **skipped**, making replay idempotent.
//! * A **torn tail** — the final segment ending mid-frame, or its final
//!   frame failing its CRC at end-of-file — is truncated away and counted
//!   in [`ReplayStats::truncated_bytes`]: those bytes were never
//!   acknowledged (the ack boundary is the frame fsync), and a torn write
//!   is indistinguishable from a flipped final frame, so the standard WAL
//!   policy applies. The truncation is *reported*, never silent.
//! * Any other corruption — a bad CRC with more data after it, an
//!   implausible length, a non-contiguous sequence, an undecodable op —
//!   is a typed [`StoreError::WalCorrupt`]; a gap between segments is
//!   [`StoreError::MissingSegment`]. Replay never panics (this file is in
//!   the `cargo xtask lint` scope up to its tests).

use crate::codec::{crc32, KeyCodec};
use crate::error::StoreError;
use crate::frame::{sync_dir, Reader};
use fc_catalog::{CatalogKey, NodeId};
use fc_coop::dynamic::UpdateOp;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FCWALSG1";
const FORMAT: u32 = 1;
/// Bytes of a segment header (including its CRC).
pub(crate) const SEG_HEADER_LEN: usize = 28;
/// Sanity cap on a single record's payload; a larger length field can only
/// come from corruption.
const MAX_PAYLOAD: u32 = 1 << 26;
/// Reserved `op_count` sentinel marking a non-ops record.
const MARKER_COUNT: u32 = u32::MAX;
/// Record tag of a rebuild (epoch-cut) marker.
const MARKER_TAG: u8 = 2;

/// One decoded WAL record, as handed to the replay callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry<K> {
    /// A durable update batch to apply.
    Ops(Vec<UpdateOp<K>>),
    /// The producer cut a clone-and-rebuild epoch (compaction) here;
    /// `generation` is the producer's logical generation after the cut.
    RebuildMarker {
        /// Producer generation after the rebuild.
        generation: u64,
    },
}

/// One WAL segment on disk.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Sequence number of the segment's first record.
    pub start_seq: u64,
    /// Path of the segment file.
    pub path: PathBuf,
}

/// What a [`replay`] pass saw and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Segment files visited.
    pub segments: usize,
    /// Records decoded and handed to the apply callback.
    pub records_applied: u64,
    /// Total ops inside the applied records.
    pub ops_applied: u64,
    /// Records skipped as already-applied (at or below the watermark, or
    /// duplicated by a half-completed rotation).
    pub records_skipped: u64,
    /// Rebuild markers among the applied records.
    pub markers: u64,
    /// Bytes of torn tail truncated off the final segment.
    pub truncated_bytes: u64,
    /// Highest sequence number accounted for (watermark if the log added
    /// nothing).
    pub last_seq: u64,
}

pub(crate) fn segment_file_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.fcw")
}

pub(crate) fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".fcw")?
        .parse()
        .ok()
}

/// Encode a segment header for a segment starting at `start_seq`.
pub(crate) fn encode_segment_header(key_width: u32, start_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEG_HEADER_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&key_width.to_le_bytes());
    out.extend_from_slice(&start_seq.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encode one record frame (`len · payload · crc`) for `ops` at `seq`.
pub(crate) fn encode_record<K: CatalogKey + KeyCodec>(seq: u64, ops: &[UpdateOp<K>]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + ops.len() * (5 + K::WIDTH as usize));
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            UpdateOp::Insert(node, k) => {
                payload.push(0);
                payload.extend_from_slice(&node.0.to_le_bytes());
                k.encode_key(&mut payload);
            }
            UpdateOp::Remove(node, k) => {
                payload.push(1);
                payload.extend_from_slice(&node.0.to_le_bytes());
                k.encode_key(&mut payload);
            }
        }
    }
    frame_of(&payload)
}

/// Encode one rebuild-marker frame for `generation` at `seq`.
pub(crate) fn encode_marker(seq: u64, generation: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(21);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&MARKER_COUNT.to_le_bytes());
    payload.push(MARKER_TAG);
    payload.extend_from_slice(&generation.to_le_bytes());
    frame_of(&payload)
}

fn frame_of(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame
}

fn decode_ops<K: CatalogKey + KeyCodec>(
    r: &mut Reader<'_>,
    count: u32,
) -> Option<Vec<UpdateOp<K>>> {
    let mut ops = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let tag = r.u8()?;
        let node = NodeId(r.u32()?);
        let key = K::decode_key(r.take(K::WIDTH as usize)?)?;
        match tag {
            0 => ops.push(UpdateOp::Insert(node, key)),
            1 => ops.push(UpdateOp::Remove(node, key)),
            _ => return None,
        }
    }
    Some(ops)
}

/// All WAL segments in `dir`, ascending by `start_seq`.
pub fn list_segments(dir: &Path) -> Result<Vec<SegmentInfo>, StoreError> {
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io("read_dir", dir, e))?;
    let mut out: Vec<SegmentInfo> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read_dir", dir, e))?;
        let name = entry.file_name();
        if let Some(start_seq) = name.to_str().and_then(parse_segment_seq) {
            out.push(SegmentInfo {
                start_seq,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|s| s.start_seq);
    Ok(out)
}

fn corrupt(path: &Path, offset: usize, reason: &'static str) -> StoreError {
    StoreError::WalCorrupt {
        path: path.to_path_buf(),
        offset: offset as u64,
        reason,
    }
}

/// Truncate a torn tail off `path` at byte `offset`, fsyncing the result.
fn truncate_at(
    path: &Path,
    offset: usize,
    file_len: usize,
    stats: &mut ReplayStats,
) -> Result<(), StoreError> {
    let f = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io("open", path, e))?;
    f.set_len(offset as u64)
        .map_err(|e| StoreError::io("truncate", path, e))?;
    f.sync_all().map_err(|e| StoreError::io("fsync", path, e))?;
    stats.truncated_bytes += file_len.saturating_sub(offset) as u64;
    Ok(())
}

/// Replay every record with `seq > watermark` through `apply`, in order,
/// truncating torn tails and skipping duplicates (see the module docs for
/// the full policy). `apply` receives `(seq, entry)` — an op batch or a
/// rebuild marker — and may veto the replay with its own `StoreError`
/// (e.g. an op naming a node outside the tree).
pub fn replay<K, F>(dir: &Path, watermark: u64, mut apply: F) -> Result<ReplayStats, StoreError>
where
    K: CatalogKey + KeyCodec,
    F: FnMut(u64, &WalEntry<K>) -> Result<(), StoreError>,
{
    let segments = list_segments(dir)?;
    let mut stats = ReplayStats {
        segments: segments.len(),
        last_seq: watermark,
        ..ReplayStats::default()
    };
    let count = segments.len();
    let mut max_seen = watermark;
    for (si, seg) in segments.iter().enumerate() {
        let is_last = si + 1 == count;
        let bytes = fs::read(&seg.path).map_err(|e| StoreError::io("read", &seg.path, e))?;
        if bytes.len() < SEG_HEADER_LEN {
            if is_last {
                // Crash before the fresh segment's header fsync completed:
                // nothing in it was ever acknowledged.
                stats.truncated_bytes += bytes.len() as u64;
                fs::remove_file(&seg.path).map_err(|e| StoreError::io("remove", &seg.path, e))?;
                continue;
            }
            return Err(StoreError::Truncated {
                path: seg.path.to_path_buf(),
                section: "segment header",
            });
        }
        let mut r = Reader::new(&bytes);
        let magic = r
            .take(8)
            .ok_or_else(|| corrupt(&seg.path, 0, "short header"))?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic {
                path: seg.path.to_path_buf(),
            });
        }
        let format = r
            .u32()
            .ok_or_else(|| corrupt(&seg.path, 8, "short header"))?;
        if format != FORMAT {
            return Err(StoreError::UnsupportedVersion {
                path: seg.path.to_path_buf(),
                version: format,
            });
        }
        let width = r
            .u32()
            .ok_or_else(|| corrupt(&seg.path, 12, "short header"))?;
        if width != K::WIDTH {
            return Err(StoreError::KeyWidthMismatch {
                path: seg.path.to_path_buf(),
                expected: K::WIDTH,
                found: width,
            });
        }
        let start_seq = r
            .u64()
            .ok_or_else(|| corrupt(&seg.path, 16, "short header"))?;
        let header_crc = r
            .u32()
            .ok_or_else(|| corrupt(&seg.path, 24, "short header"))?;
        let header = bytes
            .get(..SEG_HEADER_LEN - 4)
            .ok_or_else(|| corrupt(&seg.path, 0, "short header"))?;
        if crc32(header) != header_crc {
            return Err(StoreError::ChecksumMismatch {
                path: seg.path.to_path_buf(),
                section: "segment header",
            });
        }
        if start_seq != seg.start_seq {
            return Err(corrupt(
                &seg.path,
                16,
                "header sequence disagrees with file name",
            ));
        }
        if start_seq > max_seen + 1 {
            return Err(StoreError::MissingSegment {
                after_seq: max_seen,
            });
        }

        let mut prev_in_seg: Option<u64> = None;
        loop {
            let frame_start = r.pos();
            if r.remaining() == 0 {
                break;
            }
            if r.remaining() < 4 {
                if is_last {
                    truncate_at(&seg.path, frame_start, bytes.len(), &mut stats)?;
                    break;
                }
                return Err(corrupt(
                    &seg.path,
                    frame_start,
                    "segment truncated mid-record",
                ));
            }
            let len = r
                .u32()
                .ok_or_else(|| corrupt(&seg.path, frame_start, "short record length"))?;
            if len > MAX_PAYLOAD {
                return Err(corrupt(&seg.path, frame_start, "implausible record length"));
            }
            if r.remaining() < len as usize + 4 {
                if is_last {
                    truncate_at(&seg.path, frame_start, bytes.len(), &mut stats)?;
                    break;
                }
                return Err(corrupt(
                    &seg.path,
                    frame_start,
                    "segment truncated mid-record",
                ));
            }
            let payload = r
                .take(len as usize)
                .ok_or_else(|| corrupt(&seg.path, frame_start, "short record payload"))?;
            let rec_crc = r
                .u32()
                .ok_or_else(|| corrupt(&seg.path, frame_start, "short record checksum"))?;
            if crc32(payload) != rec_crc {
                if is_last && r.remaining() == 0 {
                    // A bad final frame at end-of-file is a torn write (the
                    // ack boundary is the fsync, which never returned).
                    truncate_at(&seg.path, frame_start, bytes.len(), &mut stats)?;
                    break;
                }
                return Err(corrupt(&seg.path, frame_start, "record checksum mismatch"));
            }
            let mut pr = Reader::new(payload);
            let seq = pr
                .u64()
                .ok_or_else(|| corrupt(&seg.path, frame_start, "record too short for sequence"))?;
            let expected = match prev_in_seg {
                None => start_seq,
                Some(p) => p + 1,
            };
            if seq != expected {
                return Err(corrupt(&seg.path, frame_start, "non-contiguous sequence"));
            }
            prev_in_seg = Some(seq);
            let op_count = pr
                .u32()
                .ok_or_else(|| corrupt(&seg.path, frame_start, "record too short for op count"))?;
            if seq <= max_seen {
                // Already applied (snapshot watermark or a duplicate from a
                // half-completed rotation): idempotent skip.
                stats.records_skipped += 1;
                continue;
            }
            let entry = if op_count == MARKER_COUNT {
                let tag = pr
                    .u8()
                    .ok_or_else(|| corrupt(&seg.path, frame_start, "record too short for tag"))?;
                if tag != MARKER_TAG {
                    return Err(corrupt(&seg.path, frame_start, "unknown record tag"));
                }
                let generation = pr.u64().ok_or_else(|| {
                    corrupt(&seg.path, frame_start, "record too short for generation")
                })?;
                WalEntry::RebuildMarker { generation }
            } else {
                let ops = decode_ops::<K>(&mut pr, op_count)
                    .ok_or_else(|| corrupt(&seg.path, frame_start, "undecodable ops"))?;
                WalEntry::Ops(ops)
            };
            if pr.remaining() != 0 {
                return Err(corrupt(&seg.path, frame_start, "trailing bytes in record"));
            }
            apply(seq, &entry)?;
            stats.records_applied += 1;
            match &entry {
                WalEntry::Ops(ops) => stats.ops_applied += ops.len() as u64,
                WalEntry::RebuildMarker { .. } => stats.markers += 1,
            }
            max_seen = seq;
        }
    }
    stats.last_seq = max_seen;
    Ok(stats)
}

/// The append side of the log. One writer per store, guarded by the
/// store's internal mutex; every append is fully framed and (with fsync
/// on) durable before it returns.
pub(crate) struct WalWriter {
    dir: PathBuf,
    fsync: bool,
    segment_bytes: u64,
    active: Option<ActiveSegment>,
    next_seq: u64,
    key_width: u32,
}

struct ActiveSegment {
    file: fs::File,
    path: PathBuf,
    bytes: u64,
}

impl WalWriter {
    /// A writer that will append `next_seq` first. No file is touched
    /// until the first append (which always opens a fresh segment, so a
    /// torn tail truncated during the open scan is never appended onto).
    pub(crate) fn new(
        dir: &Path,
        key_width: u32,
        fsync: bool,
        segment_bytes: u64,
        next_seq: u64,
    ) -> Self {
        WalWriter {
            dir: dir.to_path_buf(),
            fsync,
            segment_bytes,
            active: None,
            next_seq,
            key_width,
        }
    }

    /// The sequence number the next append will get.
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one record for `ops`; returns its sequence number after the
    /// frame is written (and fsynced, when enabled).
    pub(crate) fn append<K: CatalogKey + KeyCodec>(
        &mut self,
        ops: &[UpdateOp<K>],
    ) -> Result<u64, StoreError> {
        let frame = encode_record(self.next_seq, ops);
        self.append_frame(frame)
    }

    /// Append one rebuild-marker record for `generation`; returns its
    /// sequence number with the same durability contract as `append`.
    pub(crate) fn append_marker(&mut self, generation: u64) -> Result<u64, StoreError> {
        let frame = encode_marker(self.next_seq, generation);
        self.append_frame(frame)
    }

    fn append_frame(&mut self, frame: Vec<u8>) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let fsync = self.fsync;
        let active = self.active_segment(seq)?;
        active
            .file
            .write_all(&frame)
            .map_err(|e| StoreError::io("append", &active.path, e))?;
        if fsync {
            active
                .file
                .sync_data()
                .map_err(|e| StoreError::io("fsync", &active.path, e))?;
        }
        active.bytes += frame.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }

    /// The active segment, rotating to a fresh `wal-<seq>.fcw` when there
    /// is none or the current one is over budget.
    fn active_segment(&mut self, seq: u64) -> Result<&mut ActiveSegment, StoreError> {
        let over = match &self.active {
            Some(a) => a.bytes >= self.segment_bytes,
            None => true,
        };
        if over {
            let path = self.dir.join(segment_file_name(seq));
            let create = fs::OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&path);
            let mut file = match create {
                Ok(f) => f,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // A crash right after rotation leaves `wal-<seq>.fcw`
                    // holding only its header (or a torn first record).
                    // No acknowledged record can live in it: a complete
                    // record at `seq` would have advanced recovery's
                    // next_seq past `seq`. Reclaim the file by truncating
                    // instead of wedging every future append.
                    fs::OpenOptions::new()
                        .write(true)
                        .truncate(true)
                        .open(&path)
                        .map_err(|e| StoreError::io("reclaim segment", &path, e))?
                }
                Err(e) => return Err(StoreError::io("create segment", &path, e)),
            };
            let header = encode_segment_header(self.key_width, seq);
            file.write_all(&header)
                .map_err(|e| StoreError::io("write header", &path, e))?;
            if self.fsync {
                file.sync_data()
                    .map_err(|e| StoreError::io("fsync", &path, e))?;
                sync_dir(&self.dir);
            }
            self.active = Some(ActiveSegment {
                file,
                path,
                bytes: SEG_HEADER_LEN as u64,
            });
        }
        match self.active.as_mut() {
            Some(a) => Ok(a),
            None => Err(StoreError::Io {
                op: "rotate",
                path: self.dir.to_path_buf(),
                source: std::io::Error::other("no active segment after rotation"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-store-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops(base: i64) -> Vec<UpdateOp<i64>> {
        vec![
            UpdateOp::Insert(NodeId(0), base),
            UpdateOp::Insert(NodeId(1), base + 1),
            UpdateOp::Remove(NodeId(0), base + 2),
        ]
    }

    type SeenRecords = Vec<(u64, Vec<UpdateOp<i64>>)>;

    fn collect(dir: &Path, watermark: u64) -> (ReplayStats, SeenRecords) {
        let mut seen = Vec::new();
        let stats = replay::<i64, _>(dir, watermark, |seq, entry| {
            if let WalEntry::Ops(ops) = entry {
                seen.push((seq, ops.clone()));
            }
            Ok(())
        })
        .unwrap();
        (stats, seen)
    }

    #[test]
    fn append_replay_round_trips_in_order() {
        let dir = tmp("roundtrip");
        let mut w = WalWriter::new(&dir, 8, true, 1 << 20, 1);
        for i in 0..10 {
            assert_eq!(w.append(&ops(i * 10)).unwrap(), 1 + i as u64);
        }
        let (stats, seen) = collect(&dir, 0);
        assert_eq!(stats.records_applied, 10);
        assert_eq!(stats.ops_applied, 30);
        assert_eq!(stats.last_seq, 10);
        assert_eq!(stats.truncated_bytes, 0);
        let seqs: Vec<u64> = seen.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
        assert_eq!(seen[3].1, ops(30));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_budget_rotates_and_replay_spans_segments() {
        let dir = tmp("rotate");
        let mut w = WalWriter::new(&dir, 8, false, 64, 1);
        for i in 0..20 {
            w.append(&ops(i)).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 10, "64-byte budget must rotate per record");
        let (stats, _) = collect(&dir, 0);
        assert_eq!(stats.records_applied, 20);
        assert_eq!(stats.segments, segs.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_only_leftover_segment_is_reclaimed_not_wedged() {
        let dir = tmp("reclaim");
        // Simulate a crash right after rotation: the next segment exists
        // on disk holding only its header.
        let leftover = dir.join(segment_file_name(1));
        fs::write(&leftover, encode_segment_header(8, 1)).unwrap();
        let mut w = WalWriter::new(&dir, 8, false, 1 << 20, 1);
        assert_eq!(
            w.append(&ops(0)).unwrap(),
            1,
            "append must reclaim, not wedge"
        );
        let (stats, seen) = collect(&dir, 0);
        assert_eq!(stats.records_applied, 1);
        assert_eq!(seen.first().map(|(s, _)| *s), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn watermark_skips_already_applied_records() {
        let dir = tmp("watermark");
        let mut w = WalWriter::new(&dir, 8, false, 1 << 20, 1);
        for i in 0..8 {
            w.append(&ops(i)).unwrap();
        }
        let (stats, seen) = collect(&dir, 5);
        assert_eq!(stats.records_applied, 3);
        assert_eq!(stats.records_skipped, 5);
        assert_eq!(seen.first().map(|(s, _)| *s), Some(6));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_succeeds() {
        let dir = tmp("torn");
        let mut w = WalWriter::new(&dir, 8, false, 1 << 20, 1);
        for i in 0..5 {
            w.append(&ops(i)).unwrap();
        }
        let seg = &list_segments(&dir).unwrap()[0].path;
        let full = fs::read(seg).unwrap();
        // Chop 3 bytes off the final frame.
        fs::write(seg, &full[..full.len() - 3]).unwrap();
        let (stats, seen) = collect(&dir, 0);
        assert_eq!(stats.records_applied, 4);
        assert!(stats.truncated_bytes > 0);
        assert_eq!(seen.len(), 4);
        // The truncation is durable: a second replay sees a clean log.
        let (stats2, _) = collect(&dir, 0);
        assert_eq!(stats2.truncated_bytes, 0);
        assert_eq!(stats2.records_applied, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_segment_flip_is_typed_corruption() {
        let dir = tmp("flip");
        let mut w = WalWriter::new(&dir, 8, false, 1 << 20, 1);
        for i in 0..5 {
            w.append(&ops(i)).unwrap();
        }
        let seg = &list_segments(&dir).unwrap()[0].path;
        let mut bytes = fs::read(seg).unwrap();
        // Flip a byte inside the first record's payload; later records
        // follow it, so torn-tail truncation is not a sound explanation.
        let off = SEG_HEADER_LEN + 20;
        bytes[off] ^= 0x10;
        fs::write(seg, bytes).unwrap();
        let err = replay::<i64, _>(&dir, 0, |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, StoreError::WalCorrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_middle_segment_is_typed() {
        let dir = tmp("missing");
        let mut w = WalWriter::new(&dir, 8, false, 64, 1);
        for i in 0..9 {
            w.append(&ops(i)).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        fs::remove_file(&segs[1].path).unwrap();
        let err = replay::<i64, _>(&dir, 0, |_, _| Ok(())).unwrap_err();
        assert!(
            matches!(err, StoreError::MissingSegment { after_seq: 1 }),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_records_from_half_rotation_are_skipped() {
        let dir = tmp("halfrot");
        let mut w = WalWriter::new(&dir, 8, false, 1 << 20, 1);
        for i in 0..6 {
            w.append(&ops(i)).unwrap();
        }
        // Fabricate a half-completed rotation: a fresh segment whose first
        // record duplicates seq 6 (already present in the old segment).
        let dup = encode_record(6, &ops(5));
        let mut seg = encode_segment_header(8, 6);
        seg.extend_from_slice(&dup);
        fs::write(dir.join(segment_file_name(6)), seg).unwrap();
        let (stats, seen) = collect(&dir, 0);
        assert_eq!(stats.records_applied, 6, "each record applies once");
        assert_eq!(stats.records_skipped, 1, "the duplicate is skipped");
        assert_eq!(seen.len(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_markers_round_trip_interleaved_with_ops() {
        let dir = tmp("markers");
        let mut w = WalWriter::new(&dir, 8, false, 1 << 20, 1);
        assert_eq!(w.append(&ops(0)).unwrap(), 1);
        assert_eq!(w.append_marker(7).unwrap(), 2);
        assert_eq!(w.append(&ops(10)).unwrap(), 3);
        assert_eq!(w.append_marker(8).unwrap(), 4);
        let mut entries = Vec::new();
        let stats = replay::<i64, _>(&dir, 0, |seq, entry| {
            entries.push((seq, entry.clone()));
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.records_applied, 4);
        assert_eq!(stats.markers, 2);
        assert_eq!(stats.ops_applied, 6, "markers carry no ops");
        assert_eq!(stats.last_seq, 4);
        assert_eq!(entries[1].1, WalEntry::RebuildMarker { generation: 7 });
        assert_eq!(entries[3].1, WalEntry::RebuildMarker { generation: 8 });
        assert_eq!(entries[0].1, WalEntry::Ops(ops(0)));
        // A watermark right after a marker skips it idempotently.
        let (stats2, seen2) = collect(&dir, 2);
        assert_eq!(stats2.records_skipped, 2);
        assert_eq!(stats2.markers, 1, "only the post-watermark marker");
        assert_eq!(seen2.first().map(|(s, _)| *s), Some(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_marker_tag_is_typed() {
        let dir = tmp("badmarker");
        // A marker-count record whose tag byte is not the marker tag.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.push(5);
        payload.extend_from_slice(&9u64.to_le_bytes());
        let frame = frame_of(&payload);
        let mut seg = encode_segment_header(8, 1);
        seg.extend_from_slice(&frame);
        fs::write(dir.join(segment_file_name(1)), seg).unwrap();
        let err = replay::<i64, _>(&dir, 0, |_, _| Ok(())).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::WalCorrupt {
                    reason: "unknown record tag",
                    ..
                }
            ),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_op_tag_is_typed() {
        let dir = tmp("badtag");
        let mut frame = encode_record(1, &ops(0));
        // Corrupt the first op's tag *and* fix the CRC so only the decode
        // layer can catch it.
        let tag_off = 4 + 12;
        frame[tag_off] = 9;
        let payload_len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        let crc = crc32(&frame[4..4 + payload_len]);
        let crc_off = 4 + payload_len;
        frame[crc_off..crc_off + 4].copy_from_slice(&crc.to_le_bytes());
        let mut seg = encode_segment_header(8, 1);
        seg.extend_from_slice(&frame);
        fs::write(dir.join(segment_file_name(1)), seg).unwrap();
        let err = replay::<i64, _>(&dir, 0, |_, _| Ok(())).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::WalCorrupt {
                    reason: "undecodable ops",
                    ..
                }
            ),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
