//! # fc-net — hardened TCP ingress for the cooperative-search cluster
//!
//! ROADMAP item 4: "millions of users needs a wire, not an in-process
//! API". This crate puts a std-only (threads, no async) TCP front end in
//! front of `fc-shard` and extends the stack's contract across the
//! network boundary: **a byte stream in, an oracle-equal answer or a
//! typed error out — never a panic, never a hang, never a silently wrong
//! answer.**
//!
//! * [`proto`] — the `FCNET001` length-prefixed binary protocol:
//!   CRC-framed like the WAL, decoded through a bounds-checked cursor,
//!   length-capped before allocation (`DESIGN.md` §15 has the layout).
//! * [`server`] — [`server::NetServer`]: accept loop with a
//!   connection-count cap (typed `Overloaded` shed) that composes with
//!   the serve layer's bounded admission queue, per-connection idle
//!   timeouts (slowloris defense), client deadline propagation into the
//!   router's per-leg budgets, and graceful drain on SIGTERM / a wire
//!   `Shutdown` frame.
//! * [`client`] — [`client::NetClient`] (blocking request/reply) and
//!   [`client::RetryClient`] (reconnect + `DecorrelatedJitter` backoff,
//!   the same policy the serve layer retries with).
//! * [`fuzz`] — deterministic byte surgery over valid frames, in the
//!   style of `fc_store::fault`; the ≥100k-mutant protocol-fuzz gate
//!   (`tests/net_fuzz.rs`) and the multi-process loadgen gate
//!   (`examples/netd_loadgen.rs`) ride on it.
//!
//! The `fc-netd` binary serves a deterministically generated cluster
//! (tree derived from a seed, so test clients can rebuild the oracle on
//! their side of the wire).

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod fuzz;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, NetClient, RetryClient};
pub use error::{ErrorCode, NetError, ProtoError, WireError};
pub use proto::{Request, Response, WireAnswer};
pub use server::{
    install_sigterm_drain, sigterm_received, DrainReport, NetConfig, NetServer, NetStats,
};
