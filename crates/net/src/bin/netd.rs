//! `fc-netd`: the cluster server binary.
//!
//! Builds a deterministic cluster (tree derived from `--seed`, so
//! clients can rebuild the sequential oracle on their side of the wire),
//! binds the `FCNET001` ingress, and serves until SIGTERM or a wire
//! `Shutdown` frame, then drains gracefully and exits 0.
//!
//! ```text
//! fc-netd [--addr 127.0.0.1:0] [--seed 2026] [--depth 5] [--keys 1200]
//!         [--shards 3] [--replicas 2] [--max-conns 64]
//!         [--idle-ms 10000] [--grace-ms 1000] [--drain-ms 10000]
//! ```
//!
//! Prints `LISTENING <addr>` then `READY` on stdout (the loadgen parent
//! parses these), and a `DRAINED` line before exiting.

use fc_catalog::gen::{self, SizeDist};
use fc_coop::ParamMode;
use fc_net::{install_sigterm_drain, sigterm_received, NetConfig, NetServer};
use fc_serve::ServeConfig;
use fc_shard::{ShardCluster, ShardConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    seed: u64,
    depth: u32,
    keys: usize,
    shards: usize,
    replicas: usize,
    max_conns: usize,
    idle_ms: u64,
    grace_ms: u64,
    drain_ms: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut out = Args {
            addr: "127.0.0.1:0".to_owned(),
            seed: 2026,
            depth: 5,
            keys: 1200,
            shards: 3,
            replicas: 2,
            max_conns: 64,
            idle_ms: 10_000,
            grace_ms: 1_000,
            drain_ms: 10_000,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--addr" => out.addr = take("--addr")?,
                "--seed" => out.seed = parse_num(&take("--seed")?)?,
                "--depth" => out.depth = parse_num(&take("--depth")?)?,
                "--keys" => out.keys = parse_num(&take("--keys")?)?,
                "--shards" => out.shards = parse_num(&take("--shards")?)?,
                "--replicas" => out.replicas = parse_num(&take("--replicas")?)?,
                "--max-conns" => out.max_conns = parse_num(&take("--max-conns")?)?,
                "--idle-ms" => out.idle_ms = parse_num(&take("--idle-ms")?)?,
                "--grace-ms" => out.grace_ms = parse_num(&take("--grace-ms")?)?,
                "--drain-ms" => out.drain_ms = parse_num(&take("--drain-ms")?)?,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(out)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse::<T>().map_err(|_| format!("bad number `{s}`"))
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fc-netd: {e}");
            return 2;
        }
    };
    install_sigterm_drain();
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let tree = gen::balanced_binary(args.depth, args.keys, SizeDist::Uniform, &mut rng);
    let cfg = ShardConfig {
        shards: args.shards,
        replicas: args.replicas,
        serve: ServeConfig {
            workers: 2,
            default_deadline: Duration::from_secs(5),
            audit_interval: Duration::from_millis(250),
            processors: 1 << 9,
            ..ServeConfig::default()
        },
        batch_threads: 2,
        default_deadline: Duration::from_secs(10),
        ..ShardConfig::default()
    };
    let cluster = Arc::new(ShardCluster::<i64>::start(&tree, ParamMode::Auto, cfg));
    let net_cfg = NetConfig {
        max_conns: args.max_conns,
        idle_timeout: Duration::from_millis(args.idle_ms),
        drain_grace: Duration::from_millis(args.grace_ms),
        drain_timeout: Duration::from_millis(args.drain_ms),
        ..NetConfig::default()
    };
    let server = match NetServer::start(Arc::clone(&cluster), args.addr.as_str(), net_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fc-netd: bind {}: {e}", args.addr);
            return 1;
        }
    };
    // The loadgen parent parses these two lines.
    println!("LISTENING {}", server.local_addr());
    println!("READY");
    let _ = std::io::stdout().flush();
    while !sigterm_received() && !server.is_draining() {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    let report = server.drain();
    println!(
        "DRAINED took_ms {} open_at_drain {} forced {} queries {} answers {} \
         errors {} shed_conns {} proto_errors {}",
        report.took.as_millis(),
        report.open_at_drain,
        report.forced,
        stats.queries,
        stats.answers,
        stats.errors_sent,
        stats.shed_conns,
        stats.proto_errors,
    );
    let _ = std::io::stdout().flush();
    if report.forced == 0 {
        0
    } else {
        1
    }
}
