//! The client side of the wire: a blocking request/reply connection plus
//! a reconnecting retry wrapper reusing the serve layer's
//! decorrelated-jitter backoff policy.

use crate::error::{NetError, WireError};
use crate::proto::{self, Request, Response, WireAnswer};
use fc_catalog::CatalogKey;
use fc_serve::DecorrelatedJitter;
use fc_store::KeyCodec;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side socket knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-reply read timeout (should exceed the query deadline, or the
    /// client gives up before the server does).
    pub read_timeout: Duration,
    /// Per-request write timeout.
    pub write_timeout: Duration,
    /// Inbound frame payload cap (health reports are the largest).
    pub max_frame_len: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// One blocking connection speaking strict request/reply `FCNET001`.
pub struct NetClient {
    stream: TcpStream,
    cfg: ClientConfig,
}

impl NetClient {
    /// Connect to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A, cfg: ClientConfig) -> Result<Self, NetError> {
        let mut last: Option<std::io::Error> = None;
        let addrs = addr
            .to_socket_addrs()
            .map_err(|e| NetError::Io {
                op: "resolve",
                source: e,
            })?
            .collect::<Vec<SocketAddr>>();
        for a in &addrs {
            match TcpStream::connect_timeout(a, cfg.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(cfg.read_timeout))
                        .map_err(|e| NetError::Io {
                            op: "set timeouts",
                            source: e,
                        })?;
                    stream
                        .set_write_timeout(Some(cfg.write_timeout))
                        .map_err(|e| NetError::Io {
                            op: "set timeouts",
                            source: e,
                        })?;
                    let _ = stream.set_nodelay(true);
                    return Ok(NetClient { stream, cfg });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::Io {
            op: "connect",
            source: last.unwrap_or_else(|| std::io::Error::other("no addresses")),
        })
    }

    fn round_trip<K: KeyCodec>(&mut self, req: &Request<K>) -> Result<Response<K>, NetError> {
        let frame = proto::encode_request(req);
        proto::write_frame(&mut self.stream, &frame)?;
        let reply = proto::read_frame(&mut self.stream, self.cfg.max_frame_len)?;
        let (resp, _) = proto::decode_response::<K>(&reply, self.cfg.max_frame_len)?;
        Ok(resp)
    }

    /// Successor query. `deadline` rides the request header and becomes
    /// the cluster's per-leg budget on the server; `None` = server
    /// default. Typed server errors surface as [`NetError::Remote`].
    pub fn query<K: CatalogKey + KeyCodec>(
        &mut self,
        leaf: u32,
        key: K,
        deadline: Option<Duration>,
    ) -> Result<WireAnswer<K>, NetError> {
        let deadline_ms = deadline
            .map(|d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX).max(1))
            .unwrap_or(0);
        let req = Request::Query {
            leaf,
            key,
            deadline_ms,
        };
        match self.round_trip(&req)? {
            Response::Answer(a) => Ok(a),
            Response::Error(e) => Err(NetError::Remote(e)),
            Response::Health(_) => Err(NetError::UnexpectedFrame {
                got: proto::T_HEALTH_REP,
            }),
            Response::Bye => Err(NetError::UnexpectedFrame { got: proto::T_BYE }),
        }
    }

    /// Fetch the plain-text health/metrics report.
    pub fn health<K: CatalogKey + KeyCodec>(&mut self) -> Result<String, NetError> {
        match self.round_trip::<K>(&Request::Health)? {
            Response::Health(text) => Ok(text),
            Response::Error(e) => Err(NetError::Remote(e)),
            Response::Answer(_) => Err(NetError::UnexpectedFrame {
                got: proto::T_ANSWER,
            }),
            Response::Bye => Err(NetError::UnexpectedFrame { got: proto::T_BYE }),
        }
    }

    /// Ask the server to drain and exit; resolves on the `Bye` ack.
    pub fn shutdown_server<K: CatalogKey + KeyCodec>(&mut self) -> Result<(), NetError> {
        match self.round_trip::<K>(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error(e) => Err(NetError::Remote(e)),
            Response::Answer(_) => Err(NetError::UnexpectedFrame {
                got: proto::T_ANSWER,
            }),
            Response::Health(_) => Err(NetError::UnexpectedFrame {
                got: proto::T_HEALTH_REP,
            }),
        }
    }
}

/// Reconnect-and-retry policy over [`NetClient`], reusing the serve
/// layer's decorrelated-jitter backoff so wire retries and in-process
/// retries spread the same way.
pub struct RetryClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    /// Attempts beyond the first.
    retries: u32,
    backoff: DecorrelatedJitter,
    conn: Option<NetClient>,
}

impl RetryClient {
    /// A lazy client for `addr`: connections are (re)established on
    /// demand, retried failures sleep `DecorrelatedJitter` delays seeded
    /// by `seed` (deterministic per client).
    pub fn new(addr: SocketAddr, cfg: ClientConfig, retries: u32, seed: u64) -> Self {
        let backoff =
            DecorrelatedJitter::new(Duration::from_millis(5), Duration::from_millis(500), seed);
        RetryClient {
            addr,
            cfg,
            retries,
            backoff,
            conn: None,
        }
    }

    /// Query with reconnect-and-backoff on retryable failures (transport
    /// errors, `Overloaded`, `Timeout`, `ShardUnavailable`). Protocol
    /// violations and `ShuttingDown` surface immediately — retrying a
    /// draining server only prolongs its drain.
    pub fn query<K: CatalogKey + KeyCodec>(
        &mut self,
        leaf: u32,
        key: K,
        deadline: Option<Duration>,
    ) -> Result<WireAnswer<K>, NetError> {
        let mut last: Option<NetError> = None;
        for _attempt in 0..=self.retries {
            if let Some(e) = last.as_ref() {
                if !e.retryable() {
                    break;
                }
                std::thread::sleep(self.backoff.next_delay());
            }
            let conn = match self.conn.as_mut() {
                Some(c) => c,
                None => match NetClient::connect(self.addr, self.cfg.clone()) {
                    Ok(c) => self.conn.insert(c),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                },
            };
            match conn.query(leaf, key, deadline) {
                Ok(a) => {
                    self.backoff.reset();
                    return Ok(a);
                }
                Err(e) => {
                    // A transport-level failure poisons the connection;
                    // typed server errors keep it.
                    if !matches!(e, NetError::Remote(_)) {
                        self.conn = None;
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or(NetError::Closed))
    }

    /// The last typed error's wire detail, if the caller wants to log it.
    pub fn describe(e: &WireError) -> String {
        format!("{e}")
    }
}
