//! Typed errors for the wire layer.
//!
//! The ingress contract extends the cluster's: **a byte stream either
//! yields a well-formed frame, or a typed [`ProtoError`] — never a panic,
//! never an unbounded read.** Client-side failures (timeouts, resets,
//! typed error replies) surface as [`NetError`], which is what the retry
//! policy branches on.

use std::fmt;
use std::io;

/// A malformed, oversized, truncated, or corrupt frame. Every variant is
/// produced by the bounds-checked decoder in [`crate::proto`]; none of
/// them can be produced by a well-formed peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The 8-byte magic/version prefix is not `FCNET001`.
    BadMagic,
    /// The frame type byte names no known frame.
    UnknownType(u8),
    /// The declared payload length exceeds the negotiated cap. Checked
    /// *before* any allocation, so a hostile length field cannot balloon
    /// memory.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The buffer ends before the declared frame does.
    Truncated {
        /// Bytes the frame header promised.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame checksum does not cover the bytes received.
    CrcMismatch {
        /// CRC the frame carried.
        carried: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// The payload's key width does not match the serving key type.
    KeyWidth {
        /// Width this endpoint serves.
        expected: u8,
        /// Width the frame declared.
        found: u8,
    },
    /// A structurally invalid payload (bad lengths, non-UTF-8 text,
    /// trailing garbage, unknown error code, ...).
    Malformed(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadMagic => write!(f, "bad magic (want FCNET001)"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            ProtoError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            ProtoError::CrcMismatch { carried, computed } => {
                write!(
                    f,
                    "crc mismatch: frame carries {carried:#010x}, bytes hash to {computed:#010x}"
                )
            }
            ProtoError::KeyWidth { expected, found } => {
                write!(
                    f,
                    "key width {found} (this endpoint serves width {expected})"
                )
            }
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// The typed error code carried by an `Error` reply frame: the wire
/// projection of `ServeError`/`ShardError` plus ingress-local overload
/// and protocol failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Shed at admission (connection cap or bounded queue full). Retry
    /// after backoff.
    Overloaded,
    /// The query deadline expired before an answer was computed.
    Timeout,
    /// The per-leg deadline budget ran out mid-scatter.
    BudgetExhausted,
    /// Every replica of some shard refused the query.
    ShardUnavailable,
    /// The server is draining; it will not accept new queries.
    ShuttingDown,
    /// The request frame was malformed (decode detail in the message).
    Protocol,
    /// Anything else — carried verbatim so nothing is silently dropped.
    Internal,
}

impl ErrorCode {
    /// Stable wire byte for the code.
    pub fn to_wire(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::BudgetExhausted => 3,
            ErrorCode::ShardUnavailable => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Protocol => 6,
            ErrorCode::Internal => 7,
        }
    }

    /// Decode a wire byte; `None` for reserved/unknown codes.
    pub fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::BudgetExhausted,
            4 => ErrorCode::ShardUnavailable,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Protocol,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Whether a client retry (with backoff) can plausibly succeed.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::Timeout | ErrorCode::ShardUnavailable
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::BudgetExhausted => "budget-exhausted",
            ErrorCode::ShardUnavailable => "shard-unavailable",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// A typed error reply as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail (bounded; truncated by the encoder).
    pub detail: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// Client/transport-side failure: everything that can go wrong between
/// "bytes written" and "typed reply decoded".
#[derive(Debug)]
pub enum NetError {
    /// The peer's bytes did not decode.
    Proto(ProtoError),
    /// A socket operation failed (reset, refused, broken pipe, ...).
    Io {
        /// What we were doing (`"connect"`, `"read frame"`, ...).
        op: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// A socket operation exceeded its read/write timeout.
    Timeout {
        /// What timed out.
        op: &'static str,
    },
    /// The peer closed the connection cleanly mid-exchange.
    Closed,
    /// The server replied with a typed error frame.
    Remote(WireError),
    /// The reply frame type does not answer the request that was sent.
    UnexpectedFrame {
        /// The frame type byte that arrived.
        got: u8,
    },
}

impl NetError {
    /// Classify an `io::Error` from a socket read/write: timeouts become
    /// [`NetError::Timeout`], clean EOF becomes [`NetError::Closed`].
    pub fn from_io(op: &'static str, e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout { op },
            io::ErrorKind::UnexpectedEof => NetError::Closed,
            _ => NetError::Io { op, source: e },
        }
    }

    /// Whether reconnect-and-retry with backoff is worthwhile.
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Io { .. } | NetError::Timeout { .. } | NetError::Closed => true,
            NetError::Remote(w) => w.code.retryable(),
            NetError::Proto(_) | NetError::UnexpectedFrame { .. } => false,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Proto(e) => write!(f, "protocol: {e}"),
            NetError::Io { op, source } => write!(f, "io during {op}: {source}"),
            NetError::Timeout { op } => write!(f, "timeout during {op}"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Remote(w) => write!(f, "server error: {w}"),
            NetError::UnexpectedFrame { got } => {
                write!(f, "unexpected reply frame type {got:#04x}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}
