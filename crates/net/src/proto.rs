//! The `FCNET001` wire protocol: length-prefixed, CRC-framed binary
//! frames, encoded/decoded through a bounds-checked cursor.
//!
//! ```text
//! +----------------+------+-----------+---------------+-----------+
//! | magic (8)      | type | len (u32) | payload (len) | crc (u32) |
//! | "FCNET001"     | (1)  | LE        |               | LE        |
//! +----------------+------+-----------+---------------+-----------+
//! ```
//!
//! The CRC (IEEE CRC-32, the same `fc_store::crc32` the WAL frames use)
//! covers `type ‖ len ‖ payload`, so a flipped bit anywhere past the
//! magic is caught before the payload is interpreted. The length field is
//! validated against a cap *before* any allocation — a hostile `len`
//! cannot balloon memory — and every payload parse runs through the
//! forward-only [`Cur`] cursor, so truncation and trailing garbage are
//! typed [`ProtoError`]s, never panics.
//!
//! Keys ride the wire through `fc_store::KeyCodec` (the same fixed-width
//! little-endian encoding the snapshots use); every key-bearing frame
//! leads with the key width so a client serving `i64` cannot silently
//! talk to a server serving `i32`.
//!
//! Request frames: [`Request::Query`] (leaf, key, deadline),
//! [`Request::Health`], [`Request::Shutdown`]. Response frames:
//! [`Response::Answer`], [`Response::Health`] (plain text metrics),
//! [`Response::Error`] (typed [`ErrorCode`] + detail), [`Response::Bye`]
//! (drain acknowledged).

use crate::error::{ErrorCode, NetError, ProtoError, WireError};
use fc_store::{crc32, KeyCodec};
use std::io::{Read, Write};

/// Protocol magic + version. Bump the trailing digits for incompatible
/// revisions; the magic mismatch is then a typed error, not a misparse.
pub const MAGIC: &[u8; 8] = b"FCNET001";

/// Bytes before the payload: magic (8) + type (1) + length (4).
pub const HEADER_LEN: usize = 13;

/// Bytes after the payload: the CRC-32.
pub const TRAILER_LEN: usize = 4;

/// Default payload-length cap (1 MiB). Real frames are tens of bytes;
/// the cap only bounds hostility.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Longest detail/health text the encoder will emit (longer text is
/// truncated at a char boundary).
pub const MAX_TEXT: usize = 1 << 16;

/// Frame type: successor query.
pub const T_QUERY: u8 = 0x01;
/// Frame type: health/metrics request.
pub const T_HEALTH: u8 = 0x02;
/// Frame type: admin drain request.
pub const T_SHUTDOWN: u8 = 0x03;
/// Frame type: successful query answer.
pub const T_ANSWER: u8 = 0x81;
/// Frame type: typed error reply.
pub const T_ERROR: u8 = 0x82;
/// Frame type: plain-text health reply.
pub const T_HEALTH_REP: u8 = 0x83;
/// Frame type: drain acknowledged, connection closing.
pub const T_BYE: u8 = 0x84;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request<K: KeyCodec> {
    /// Successor query: the per-path-node successors of `key` from the
    /// root down to `leaf`.
    Query {
        /// Wire id of the target leaf (`NodeId.0`).
        leaf: u32,
        /// The query key.
        key: K,
        /// Client deadline in milliseconds; `0` = server default. The
        /// server propagates this into the cluster's per-leg budgets.
        deadline_ms: u32,
    },
    /// Ask for the plain-text health/metrics report.
    Health,
    /// Ask the server to drain and exit (admin path; tests use this in
    /// place of SIGTERM).
    Shutdown,
}

/// A successful query answer as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAnswer<K: KeyCodec> {
    /// Routing-table version that served the query.
    pub table_version: u64,
    /// Per path node (root → leaf): the node's wire id and the smallest
    /// key `≥ y`, `None` = global `+∞`.
    pub entries: Vec<(u32, Option<K>)>,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response<K: KeyCodec> {
    /// The query succeeded.
    Answer(WireAnswer<K>),
    /// Plain-text health/metrics report.
    Health(String),
    /// The request failed with a typed error.
    Error(WireError),
    /// Drain acknowledged; the server closes after this frame.
    Bye,
}

// ---------------------------------------------------------------------
// Cursor: every read bounds-checked, failures surface as ProtoError.
// ---------------------------------------------------------------------

/// Forward-only payload cursor (the net twin of `fc_store`'s `Reader`).
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Malformed(what))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtoError::Malformed(what))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        self.take(1, what)?
            .first()
            .copied()
            .ok_or(ProtoError::Malformed(what))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        let b = self.take(4, what)?;
        b.try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| ProtoError::Malformed(what))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        let b = self.take(8, what)?;
        b.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| ProtoError::Malformed(what))
    }

    fn key<K: KeyCodec>(&mut self) -> Result<K, ProtoError> {
        let b = self.take(K::WIDTH as usize, "key bytes")?;
        K::decode_key(b).ok_or(ProtoError::Malformed("key bytes"))
    }

    fn finish(&self, what: &'static str) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::Malformed(what))
        }
    }
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

/// Wrap a payload in the frame envelope: magic, type, length, CRC.
fn seal(ty: u8, payload: &[u8]) -> Vec<u8> {
    // CRC covers type ‖ len ‖ payload, so assemble that span once.
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    let mut body = Vec::with_capacity(1 + 4 + payload.len());
    body.push(ty);
    body.extend_from_slice(&len.to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(MAGIC.len() + body.len() + TRAILER_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Truncate `s` to at most [`MAX_TEXT`] bytes on a char boundary.
fn clip(s: &str) -> &str {
    if s.len() <= MAX_TEXT {
        return s;
    }
    let mut end = MAX_TEXT;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    s.get(..end).unwrap_or("")
}

/// Encode a request frame.
pub fn encode_request<K: KeyCodec>(req: &Request<K>) -> Vec<u8> {
    match req {
        Request::Query {
            leaf,
            key,
            deadline_ms,
        } => {
            let mut p = Vec::with_capacity(1 + 4 + 4 + K::WIDTH as usize);
            p.push(K::WIDTH as u8);
            p.extend_from_slice(&leaf.to_le_bytes());
            p.extend_from_slice(&deadline_ms.to_le_bytes());
            key.encode_key(&mut p);
            seal(T_QUERY, &p)
        }
        Request::Health => seal(T_HEALTH, &[]),
        Request::Shutdown => seal(T_SHUTDOWN, &[]),
    }
}

/// Encode a response frame.
pub fn encode_response<K: KeyCodec>(resp: &Response<K>) -> Vec<u8> {
    match resp {
        Response::Answer(a) => {
            let w = K::WIDTH as usize;
            let mut p = Vec::with_capacity(1 + 8 + 4 + a.entries.len() * (5 + w));
            p.push(K::WIDTH as u8);
            p.extend_from_slice(&a.table_version.to_le_bytes());
            let n = u32::try_from(a.entries.len()).unwrap_or(u32::MAX);
            p.extend_from_slice(&n.to_le_bytes());
            for (node, ans) in &a.entries {
                p.extend_from_slice(&node.to_le_bytes());
                match ans {
                    Some(k) => {
                        p.push(1);
                        k.encode_key(&mut p);
                    }
                    None => p.push(0),
                }
            }
            seal(T_ANSWER, &p)
        }
        Response::Health(text) => seal(T_HEALTH_REP, clip(text).as_bytes()),
        Response::Error(e) => {
            let detail = clip(&e.detail).as_bytes();
            let mut p = Vec::with_capacity(1 + detail.len());
            p.push(e.code.to_wire());
            p.extend_from_slice(detail);
            seal(T_ERROR, &p)
        }
        Response::Bye => seal(T_BYE, &[]),
    }
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

/// Validate the envelope of the frame starting at `buf` and return
/// `(type, payload, total frame length)`. Checks, in order: header
/// presence, magic, length cap (before touching the payload), body
/// presence, CRC.
fn open(buf: &[u8], max_len: u32) -> Result<(u8, &[u8], usize), ProtoError> {
    let head = buf.get(..HEADER_LEN).ok_or(ProtoError::Truncated {
        needed: HEADER_LEN + TRAILER_LEN,
        have: buf.len(),
    })?;
    if head.get(..MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err(ProtoError::BadMagic);
    }
    let ty = head.get(MAGIC.len()).copied().ok_or(ProtoError::BadMagic)?;
    let len_bytes = head.get(MAGIC.len() + 1..HEADER_LEN).unwrap_or(&[]);
    let len = len_bytes
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| ProtoError::Malformed("length field"))?;
    if len > max_len {
        return Err(ProtoError::Oversized { len, max: max_len });
    }
    let plen = len as usize;
    let total = HEADER_LEN + plen + TRAILER_LEN;
    if buf.len() < total {
        return Err(ProtoError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let covered = buf
        .get(MAGIC.len()..HEADER_LEN + plen)
        .ok_or(ProtoError::Malformed("frame span"))?;
    let carried_bytes = buf
        .get(HEADER_LEN + plen..total)
        .ok_or(ProtoError::Malformed("crc span"))?;
    let carried = carried_bytes
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| ProtoError::Malformed("crc span"))?;
    let computed = crc32(covered);
    if carried != computed {
        return Err(ProtoError::CrcMismatch { carried, computed });
    }
    let payload = buf
        .get(HEADER_LEN..HEADER_LEN + plen)
        .ok_or(ProtoError::Malformed("payload span"))?;
    Ok((ty, payload, total))
}

fn check_width<K: KeyCodec>(found: u8) -> Result<(), ProtoError> {
    let expected = K::WIDTH as u8;
    if found == expected {
        Ok(())
    } else {
        Err(ProtoError::KeyWidth { expected, found })
    }
}

/// Decode one request frame from the front of `buf`. Returns the request
/// and the number of bytes consumed (the frame may be followed by the
/// next one).
pub fn decode_request<K: KeyCodec>(
    buf: &[u8],
    max_len: u32,
) -> Result<(Request<K>, usize), ProtoError> {
    let (ty, payload, total) = open(buf, max_len)?;
    let req = match ty {
        T_QUERY => {
            let mut c = Cur::new(payload);
            check_width::<K>(c.u8("key width")?)?;
            let leaf = c.u32("leaf id")?;
            let deadline_ms = c.u32("deadline")?;
            let key = c.key::<K>()?;
            c.finish("trailing bytes after query")?;
            Request::Query {
                leaf,
                key,
                deadline_ms,
            }
        }
        T_HEALTH => {
            Cur::new(payload).finish("health request carries no payload")?;
            Request::Health
        }
        T_SHUTDOWN => {
            Cur::new(payload).finish("shutdown request carries no payload")?;
            Request::Shutdown
        }
        other => return Err(ProtoError::UnknownType(other)),
    };
    Ok((req, total))
}

/// Decode one response frame from the front of `buf`. Returns the
/// response and the number of bytes consumed.
pub fn decode_response<K: KeyCodec>(
    buf: &[u8],
    max_len: u32,
) -> Result<(Response<K>, usize), ProtoError> {
    let (ty, payload, total) = open(buf, max_len)?;
    let resp = match ty {
        T_ANSWER => {
            let mut c = Cur::new(payload);
            check_width::<K>(c.u8("key width")?)?;
            let table_version = c.u64("table version")?;
            let n = c.u32("entry count")? as usize;
            // Each entry is ≥ 5 bytes, so a count the payload cannot hold
            // is rejected before the allocation it would size.
            if n > c.remaining() / 5 {
                return Err(ProtoError::Malformed("entry count exceeds payload"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let node = c.u32("entry node")?;
                let ans = match c.u8("entry presence")? {
                    0 => None,
                    1 => Some(c.key::<K>()?),
                    _ => return Err(ProtoError::Malformed("entry presence flag")),
                };
                entries.push((node, ans));
            }
            c.finish("trailing bytes after answer")?;
            Response::Answer(WireAnswer {
                table_version,
                entries,
            })
        }
        T_ERROR => {
            let mut c = Cur::new(payload);
            let code_byte = c.u8("error code")?;
            let code = ErrorCode::from_wire(code_byte)
                .ok_or(ProtoError::Malformed("unknown error code"))?;
            let detail_bytes = c.take(c.remaining(), "error detail")?;
            let detail = std::str::from_utf8(detail_bytes)
                .map_err(|_| ProtoError::Malformed("error detail not utf-8"))?
                .to_owned();
            Response::Error(WireError { code, detail })
        }
        T_HEALTH_REP => {
            let text = std::str::from_utf8(payload)
                .map_err(|_| ProtoError::Malformed("health report not utf-8"))?
                .to_owned();
            Response::Health(text)
        }
        T_BYE => {
            Cur::new(payload).finish("bye carries no payload")?;
            Response::Bye
        }
        other => return Err(ProtoError::UnknownType(other)),
    };
    Ok((resp, total))
}

// ---------------------------------------------------------------------
// Socket framing.
// ---------------------------------------------------------------------

fn read_exact(r: &mut impl Read, buf: &mut [u8], op: &'static str) -> Result<(), NetError> {
    r.read_exact(buf).map_err(|e| NetError::from_io(op, e))
}

/// Read one whole frame from a stream: the fixed header first (so the
/// magic and the length cap are checked *before* the body allocation),
/// then exactly the declared remainder. An idle peer trips the stream's
/// read timeout → [`NetError::Timeout`]; a mid-frame disconnect →
/// [`NetError::Closed`]. Never reads past the frame.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Vec<u8>, NetError> {
    let mut head = [0u8; HEADER_LEN];
    read_exact(r, &mut head, "read frame header")?;
    if head.get(..MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err(NetError::Proto(ProtoError::BadMagic));
    }
    let len_bytes = head.get(MAGIC.len() + 1..HEADER_LEN).unwrap_or(&[]);
    let len = len_bytes
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| NetError::Proto(ProtoError::Malformed("length field")))?;
    if len > max_len {
        return Err(NetError::Proto(ProtoError::Oversized { len, max: max_len }));
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    let mut buf = vec![0u8; total];
    if let Some(dst) = buf.get_mut(..HEADER_LEN) {
        dst.copy_from_slice(&head);
    }
    if let Some(rest) = buf.get_mut(HEADER_LEN..) {
        read_exact(r, rest, "read frame body")?;
    }
    Ok(buf)
}

/// Write one encoded frame and flush it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), NetError> {
    w.write_all(frame)
        .map_err(|e| NetError::from_io("write frame", e))?;
    w.flush().map_err(|e| NetError::from_io("flush frame", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trips() {
        let req = Request::Query {
            leaf: 7,
            key: -42i64,
            deadline_ms: 250,
        };
        let bytes = encode_request(&req);
        let (back, used) = decode_request::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, req);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn answer_round_trips_with_gaps() {
        let resp = Response::Answer(WireAnswer {
            table_version: 9,
            entries: vec![(0, Some(5i64)), (3, None), (8, Some(i64::MIN))],
        });
        let bytes = encode_response(&resp);
        let (back, used) = decode_response::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, resp);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn wrong_key_width_is_typed() {
        let req = Request::Query {
            leaf: 1,
            key: 10i32,
            deadline_ms: 0,
        };
        let bytes = encode_request(&req);
        match decode_request::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN) {
            Err(ProtoError::KeyWidth {
                expected: 8,
                found: 4,
            }) => {}
            other => panic!("expected KeyWidth, got {other:?}"),
        }
    }

    #[test]
    fn oversized_len_rejected_before_allocation() {
        let mut bytes = encode_request::<i64>(&Request::Health);
        // Forge a huge length field; decode must refuse on the cap, not
        // allocate or read further.
        bytes[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_request::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN) {
            Err(ProtoError::Oversized { .. }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn hostile_answer_count_rejected() {
        let resp = Response::Answer(WireAnswer::<i64> {
            table_version: 1,
            entries: vec![(1, None)],
        });
        let mut bytes = encode_response(&resp);
        // Entry count claims more entries than the payload could hold.
        let count_at = HEADER_LEN + 1 + 8;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // CRC now mismatches; recompute it so the count check itself is hit.
        let plen = bytes.len() - HEADER_LEN - TRAILER_LEN;
        let crc = crc32(&bytes[MAGIC.len()..HEADER_LEN + plen]);
        let at = HEADER_LEN + plen;
        bytes[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        match decode_response::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN) {
            Err(ProtoError::Malformed("entry count exceeds payload")) => {}
            other => panic!("expected count rejection, got {other:?}"),
        }
    }

    #[test]
    fn unknown_type_and_bad_magic_are_typed() {
        let mut bytes = encode_request::<i64>(&Request::Health);
        bytes[8] = 0x5A;
        let plen = bytes.len() - HEADER_LEN - TRAILER_LEN;
        let crc = crc32(&bytes[MAGIC.len()..HEADER_LEN + plen]);
        let at = HEADER_LEN + plen;
        bytes[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_request::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(ProtoError::UnknownType(0x5A))
        ));
        let mut bytes = encode_request::<i64>(&Request::Health);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_request::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(ProtoError::BadMagic)
        ));
    }

    #[test]
    fn long_error_detail_is_clipped_not_refused() {
        let resp = Response::<i64>::Error(WireError {
            code: ErrorCode::Internal,
            detail: "x".repeat(MAX_TEXT + 100),
        });
        let bytes = encode_response(&resp);
        let (back, _) = decode_response::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        match back {
            Response::Error(e) => assert!(e.detail.len() <= MAX_TEXT),
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
