//! The TCP ingress server: an accept loop + per-connection handler
//! threads in front of a [`ShardCluster`].
//!
//! Defense-in-depth, layer by layer:
//!
//! * **Connection cap** — beyond [`NetConfig::max_conns`] concurrent
//!   connections the accept loop replies with a typed `Overloaded` frame
//!   and closes; it never queues unboundedly. Admitted queries then flow
//!   into the *existing* bounded admission queue per replica, whose sheds
//!   also surface as `Overloaded` — backpressure composes end to end.
//! * **Idle timeouts (slowloris defense)** — frames are read
//!   incrementally through [`FrameReader`] with a short poll timeout; a
//!   connection that does not complete a frame within
//!   [`NetConfig::idle_timeout`] of the previous one is closed. Partial
//!   bytes are buffered, so a slow-but-honest client never desyncs the
//!   stream.
//! * **Strict decode** — any malformed frame is answered with a typed
//!   `Protocol` error and the connection is closed (after a framing
//!   error the stream cannot be trusted to resynchronize).
//! * **Deadline propagation** — the request's `deadline_ms` becomes the
//!   cluster deadline, which PR 4's router splits into per-leg budgets
//!   (`remaining / legs_left`).
//! * **Graceful drain** — [`NetServer::begin_drain`] (or SIGTERM via
//!   [`install_sigterm_drain`], or a wire `Shutdown` frame) stops the
//!   accept loop; in-flight queries finish (or deadline out) and their
//!   replies are flushed; for a grace window new queries still receive a
//!   typed `ShuttingDown` reply so no written request goes unanswered;
//!   then connections close and [`NetServer::drain`] returns a
//!   [`DrainReport`].
//!
//! The handler path holds **no lock across any socket write** (all
//! shared state is atomic); the lock-discipline lint enforces this.

use crate::error::{ErrorCode, NetError, ProtoError, WireError};
use crate::proto::{self, Request, Response, WireAnswer};
use fc_catalog::{CatalogKey, NodeId};
use fc_serve::ServeError;
use fc_shard::{HeatConfig, ShardCluster, ShardError};
use fc_store::KeyCodec;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::io::Read;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ingress tuning knobs. Defaults suit tests and the `fc-netd` binary;
/// the loadgen example tightens them to provoke shedding.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Concurrent-connection cap; excess connections get a typed
    /// `Overloaded` reply and are closed.
    pub max_conns: usize,
    /// Payload-length cap for inbound frames.
    pub max_frame_len: u32,
    /// A connection must complete a frame within this of the previous
    /// one (or of accept), else it is closed.
    pub idle_timeout: Duration,
    /// Per-socket write timeout (a peer that stops reading cannot wedge
    /// a handler forever).
    pub write_timeout: Duration,
    /// Cadence at which handlers re-check the drain flag and idle clock
    /// while waiting for bytes.
    pub poll_interval: Duration,
    /// After drain starts, the window during which still-arriving
    /// queries receive a typed `ShuttingDown` reply before the
    /// connection closes.
    pub drain_grace: Duration,
    /// Upper bound [`NetServer::drain`] waits for handlers to finish.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_conns: 64,
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
            idle_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(100),
            drain_grace: Duration::from_secs(1),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Monotone ingress counters (atomic; sampled by [`NetServer::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted and handled.
    pub accepted: u64,
    /// Connections shed at the cap with an `Overloaded` reply.
    pub shed_conns: u64,
    /// Frames that failed to decode (answered with `Protocol`).
    pub proto_errors: u64,
    /// Query frames admitted to the cluster.
    pub queries: u64,
    /// Successful answers written.
    pub answers: u64,
    /// Typed error replies written (all codes).
    pub errors_sent: u64,
    /// Health reports served.
    pub health_reqs: u64,
}

/// What [`NetServer::drain`] observed.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Connections open when the drain began.
    pub open_at_drain: usize,
    /// Connections still open when the drain timeout expired (`0` on a
    /// clean drain).
    pub forced: usize,
    /// Wall-clock duration of the drain.
    pub took: Duration,
}

const NOT_DRAINING: u64 = u64::MAX;

/// State shared between the accept loop, handlers, and the owner.
struct Shared {
    t0: Instant,
    /// Milliseconds after `t0` at which drain began (`NOT_DRAINING`).
    drain_at_ms: AtomicU64,
    conns: AtomicUsize,
    cfg: NetConfig,
    accepted: AtomicU64,
    shed_conns: AtomicU64,
    proto_errors: AtomicU64,
    queries: AtomicU64,
    answers: AtomicU64,
    errors_sent: AtomicU64,
    health_reqs: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain_at_ms.load(Ordering::Acquire) != NOT_DRAINING
    }

    /// Whether the post-drain grace window has elapsed.
    fn drain_grace_over(&self) -> bool {
        let at = self.drain_at_ms.load(Ordering::Acquire);
        if at == NOT_DRAINING {
            return false;
        }
        let grace = self.cfg.drain_grace.as_millis().min(u64::MAX as u128) as u64;
        self.elapsed_ms().saturating_sub(at) > grace
    }

    fn elapsed_ms(&self) -> u64 {
        self.t0.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    fn begin_drain(&self) {
        let now = self.elapsed_ms();
        let _ = self.drain_at_ms.compare_exchange(
            NOT_DRAINING,
            now,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }
}

/// The running ingress server. Dropping it without calling
/// [`NetServer::drain`] leaves handler threads to finish on their own;
/// call `drain` for an orderly exit.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` and start serving `cluster`. `addr` may use port 0;
    /// the bound address is available via [`NetServer::local_addr`].
    pub fn start<K, A>(
        cluster: Arc<ShardCluster<K>>,
        addr: A,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer>
    where
        K: CatalogKey + KeyCodec + Send + Sync + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            t0: Instant::now(),
            drain_at_ms: AtomicU64::new(NOT_DRAINING),
            conns: AtomicUsize::new(0),
            cfg,
            accepted: AtomicU64::new(0),
            shed_conns: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            answers: AtomicU64::new(0),
            errors_sent: AtomicU64::new(0),
            health_reqs: AtomicU64::new(0),
        });
        // Wire ids the protocol may name: only real leaves reach the
        // cluster, every other id is a typed protocol error.
        let leaves: Arc<HashSet<u32>> = Arc::new(cluster.leaves().iter().map(|n| n.0).collect());
        let sh = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, cluster, leaves, sh);
        });
        Ok(NetServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting and start the drain (idempotent; also triggered by
    /// a wire `Shutdown` frame or SIGTERM via [`install_sigterm_drain`]).
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Whether a drain has been requested (by any trigger).
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Currently open connections.
    pub fn open_conns(&self) -> usize {
        self.shared.conns.load(Ordering::Acquire)
    }

    /// Snapshot the ingress counters.
    pub fn stats(&self) -> NetStats {
        let s = &self.shared;
        NetStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            shed_conns: s.shed_conns.load(Ordering::Relaxed),
            proto_errors: s.proto_errors.load(Ordering::Relaxed),
            queries: s.queries.load(Ordering::Relaxed),
            answers: s.answers.load(Ordering::Relaxed),
            errors_sent: s.errors_sent.load(Ordering::Relaxed),
            health_reqs: s.health_reqs.load(Ordering::Relaxed),
        }
    }

    /// Drain and shut down: stop accepting, let in-flight queries finish
    /// and their replies flush, wait for handlers (bounded by
    /// [`NetConfig::drain_timeout`]), and report what happened.
    pub fn drain(mut self) -> DrainReport {
        self.shared.begin_drain();
        let t0 = Instant::now();
        let open_at_drain = self.shared.conns.load(Ordering::Acquire);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let deadline = t0 + self.shared.cfg.drain_timeout;
        while self.shared.conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        DrainReport {
            open_at_drain,
            forced: self.shared.conns.load(Ordering::Acquire),
            took: t0.elapsed(),
        }
    }
}

// ---------------------------------------------------------------------
// SIGTERM → drain flag (raw libc `signal`; std links libc already, and
// storing one atomic is async-signal-safe).
// ---------------------------------------------------------------------

static TERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM_FLAG.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Install a SIGTERM handler that requests a drain (observable via
/// [`sigterm_received`]). The `fc-netd` main loop polls it and calls
/// [`NetServer::drain`].
pub fn install_sigterm_drain() {
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
    }
}

/// Whether SIGTERM has arrived since [`install_sigterm_drain`].
pub fn sigterm_received() -> bool {
    TERM_FLAG.load(Ordering::SeqCst)
}

// ---------------------------------------------------------------------
// Accept loop.
// ---------------------------------------------------------------------

fn accept_loop<K>(
    listener: TcpListener,
    cluster: Arc<ShardCluster<K>>,
    leaves: Arc<HashSet<u32>>,
    shared: Arc<Shared>,
) where
    K: CatalogKey + KeyCodec + Send + Sync + 'static,
{
    loop {
        if shared.draining() || sigterm_received() {
            shared.begin_drain();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The cap is checked with the increment in one step so a
                // connection storm cannot race past it.
                let prev = shared.conns.fetch_add(1, Ordering::AcqRel);
                if prev >= shared.cfg.max_conns {
                    shared.conns.fetch_sub(1, Ordering::AcqRel);
                    shared.shed_conns.fetch_add(1, Ordering::Relaxed);
                    shed_connection::<K>(stream, &shared);
                    continue;
                }
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                let cl = Arc::clone(&cluster);
                let lv = Arc::clone(&leaves);
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || {
                    handle_conn(stream, cl, lv, &sh);
                    sh.conns.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly rather than spin.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Best-effort typed `Overloaded` reply to a connection shed at the cap.
fn shed_connection<K>(stream: TcpStream, shared: &Shared)
where
    K: CatalogKey + KeyCodec,
{
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut stream = stream;
    let frame = proto::encode_response::<K>(&Response::Error(WireError {
        code: ErrorCode::Overloaded,
        detail: format!("connection cap {} reached", shared.cfg.max_conns),
    }));
    let _ = proto::write_frame(&mut stream, &frame);
}

// ---------------------------------------------------------------------
// Per-connection handler.
// ---------------------------------------------------------------------

/// Incremental frame assembly: bytes accumulate across short poll reads,
/// so a slow sender never desyncs the stream and never blocks the
/// handler past one poll interval.
struct FrameReader {
    buf: Vec<u8>,
}

enum PollFrame {
    /// A complete frame (header + payload + CRC).
    Ready(Vec<u8>),
    /// No complete frame yet; call again.
    Pending,
    /// The stream is done (peer closed / io error / framing violation).
    Failed(NetError),
}

impl FrameReader {
    fn new() -> Self {
        FrameReader { buf: Vec::new() }
    }

    /// Validate what the buffer holds so far; `Ok(Some(total))` once the
    /// full frame length is known and sane.
    fn frame_total(&self, max_len: u32) -> Result<Option<usize>, ProtoError> {
        if self.buf.len() < proto::HEADER_LEN {
            return Ok(None);
        }
        if self.buf.get(..proto::MAGIC.len()) != Some(proto::MAGIC.as_slice()) {
            return Err(ProtoError::BadMagic);
        }
        let len_bytes = self
            .buf
            .get(proto::MAGIC.len() + 1..proto::HEADER_LEN)
            .unwrap_or(&[]);
        let len = len_bytes
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| ProtoError::Malformed("length field"))?;
        if len > max_len {
            return Err(ProtoError::Oversized { len, max: max_len });
        }
        Ok(Some(proto::HEADER_LEN + len as usize + proto::TRAILER_LEN))
    }

    fn poll(&mut self, stream: &mut TcpStream, max_len: u32) -> PollFrame {
        loop {
            match self.frame_total(max_len) {
                Err(e) => return PollFrame::Failed(NetError::Proto(e)),
                Ok(Some(total)) if self.buf.len() >= total => {
                    let frame: Vec<u8> = self.buf.drain(..total).collect();
                    return PollFrame::Ready(frame);
                }
                Ok(_) => {}
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return PollFrame::Failed(NetError::Closed),
                Ok(n) => match chunk.get(..n) {
                    Some(got) => self.buf.extend_from_slice(got),
                    None => return PollFrame::Failed(NetError::Closed),
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return PollFrame::Pending;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return PollFrame::Failed(NetError::from_io("read", e)),
            }
        }
    }
}

fn handle_conn<K>(
    mut stream: TcpStream,
    cluster: Arc<ShardCluster<K>>,
    leaves: Arc<HashSet<u32>>,
    shared: &Shared,
) where
    K: CatalogKey + KeyCodec + Send + Sync + 'static,
{
    let cfg = &shared.cfg;
    if stream.set_read_timeout(Some(cfg.poll_interval)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    let mut idle_since = Instant::now();
    loop {
        if shared.drain_grace_over() {
            // Grace spent: anything still pending is the client's to
            // retry elsewhere. Closing is the typed signal now.
            return;
        }
        let frame = match reader.poll(&mut stream, cfg.max_frame_len) {
            PollFrame::Ready(f) => f,
            PollFrame::Pending => {
                if idle_since.elapsed() >= cfg.idle_timeout {
                    // Slowloris defense: no complete frame within the
                    // idle window — drop the connection.
                    return;
                }
                continue;
            }
            PollFrame::Failed(NetError::Proto(e)) => {
                shared.proto_errors.fetch_add(1, Ordering::Relaxed);
                send_error::<K>(&mut stream, shared, ErrorCode::Protocol, &e.to_string());
                return;
            }
            PollFrame::Failed(_) => return,
        };
        idle_since = Instant::now();
        let req = match proto::decode_request::<K>(&frame, cfg.max_frame_len) {
            Ok((req, _)) => req,
            Err(e) => {
                shared.proto_errors.fetch_add(1, Ordering::Relaxed);
                send_error::<K>(&mut stream, shared, ErrorCode::Protocol, &e.to_string());
                // After a framing violation the stream may be mid-frame
                // anywhere; resync is not possible, so close.
                return;
            }
        };
        match req {
            Request::Query {
                leaf,
                key,
                deadline_ms,
            } => {
                if shared.draining() {
                    send_error::<K>(&mut stream, shared, ErrorCode::ShuttingDown, "draining");
                    continue;
                }
                if !leaves.contains(&leaf) {
                    shared.proto_errors.fetch_add(1, Ordering::Relaxed);
                    send_error::<K>(
                        &mut stream,
                        shared,
                        ErrorCode::Protocol,
                        &format!("unknown leaf {leaf}"),
                    );
                    continue;
                }
                shared.queries.fetch_add(1, Ordering::Relaxed);
                let deadline = if deadline_ms == 0 {
                    None
                } else {
                    Some(Duration::from_millis(u64::from(deadline_ms)))
                };
                match cluster.query_blocking(NodeId(leaf), key, deadline) {
                    Ok(ok) => {
                        let entries = ok
                            .path
                            .iter()
                            .zip(ok.answers.iter())
                            .map(|(n, a)| (n.0, *a))
                            .collect();
                        let resp = Response::Answer(WireAnswer {
                            table_version: ok.table_version,
                            entries,
                        });
                        let frame = proto::encode_response::<K>(&resp);
                        // Count before the write: the peer can observe the
                        // reply (and read `stats()`) before this thread
                        // would run a post-write increment.
                        shared.answers.fetch_add(1, Ordering::Relaxed);
                        if proto::write_frame(&mut stream, &frame).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let (code, detail) = map_shard_error(&e);
                        send_error::<K>(&mut stream, shared, code, &detail);
                    }
                }
            }
            Request::Health => {
                shared.health_reqs.fetch_add(1, Ordering::Relaxed);
                let text = health_text(&cluster, shared);
                let frame = proto::encode_response::<K>(&Response::Health(text));
                if proto::write_frame(&mut stream, &frame).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                shared.begin_drain();
                let frame = proto::encode_response::<K>(&Response::Bye);
                let _ = proto::write_frame(&mut stream, &frame);
                return;
            }
        }
    }
}

/// Write a typed error reply (best effort — a peer that vanished is not
/// an error worth keeping the handler for).
fn send_error<K>(stream: &mut TcpStream, shared: &Shared, code: ErrorCode, detail: &str)
where
    K: CatalogKey + KeyCodec,
{
    let frame = proto::encode_response::<K>(&Response::Error(WireError {
        code,
        detail: detail.to_owned(),
    }));
    if proto::write_frame(stream, &frame).is_ok() {
        shared.errors_sent.fetch_add(1, Ordering::Relaxed);
    }
}

/// Project a cluster error onto the wire's typed codes. Admission-queue
/// sheds become `Overloaded` — the wire view of the bounded queue.
fn map_shard_error(e: &ShardError) -> (ErrorCode, String) {
    let detail = e.to_string();
    let code = match e {
        ShardError::ShuttingDown => ErrorCode::ShuttingDown,
        ShardError::BudgetExhausted { .. } => ErrorCode::BudgetExhausted,
        ShardError::ShardUnavailable { last, .. } => match last {
            ServeError::Shed { .. } => ErrorCode::Overloaded,
            ServeError::Timeout { .. } => ErrorCode::Timeout,
            _ => ErrorCode::ShardUnavailable,
        },
    };
    (code, detail)
}

// ---------------------------------------------------------------------
// Health / metrics.
// ---------------------------------------------------------------------

/// The plain-text `/health` report: ingress counters, then per-shard
/// per-replica queue depth, shed counts, breaker state, and the same
/// heat score the rebalancer uses to pick split candidates.
fn health_text<K>(cluster: &ShardCluster<K>, shared: &Shared) -> String
where
    K: CatalogKey + KeyCodec,
{
    let mut s = String::with_capacity(1024);
    let stats = cluster.stats();
    let heat_cfg = HeatConfig::default();
    let _ = writeln!(s, "fc-netd up_ms {}", shared.elapsed_ms());
    let _ = writeln!(
        s,
        "conns {}/{} draining {}",
        shared.conns.load(Ordering::Acquire),
        shared.cfg.max_conns,
        shared.draining() as u8
    );
    let _ = writeln!(
        s,
        "ingress accepted {} shed_conns {} proto_errors {} queries {} \
         answers {} errors {} health {}",
        shared.accepted.load(Ordering::Relaxed),
        shared.shed_conns.load(Ordering::Relaxed),
        shared.proto_errors.load(Ordering::Relaxed),
        shared.queries.load(Ordering::Relaxed),
        shared.answers.load(Ordering::Relaxed),
        shared.errors_sent.load(Ordering::Relaxed),
        shared.health_reqs.load(Ordering::Relaxed),
    );
    let _ = writeln!(
        s,
        "cluster table_version {} shards {} legs {} escalations {} \
         failovers {} budget_exhausted {} shard_unavailable {} splits {}",
        stats.table_version,
        cluster.shards(),
        stats.legs,
        stats.escalations,
        stats.failovers,
        stats.budget_exhausted,
        stats.shard_unavailable,
        stats.splits,
    );
    let ws = cluster.write_stats();
    let _ = writeln!(
        s,
        "writes incr_applies {} fallback_rebuilds {} rebuilds {} \
         keys_touched {} tombstone_ratio {:.4}",
        ws.incremental_applies,
        ws.fallback_rebuilds,
        ws.rebuilds,
        ws.keys_touched,
        ws.tombstone_ratio(),
    );
    for (shard, replicas) in cluster.health().iter().enumerate() {
        let mut heat: f64 = 0.0;
        for h in replicas {
            let shed_frac = if h.submitted > 0 {
                h.shed as f64 / h.submitted as f64
            } else {
                0.0
            };
            let score = heat_cfg.queue_weight * h.queue_frac() + heat_cfg.shed_weight * shed_frac;
            heat = heat.max(score);
        }
        let _ = writeln!(s, "shard {shard} heat {heat:.4}");
        for (ri, h) in replicas.iter().enumerate() {
            let _ = writeln!(
                s,
                "shard {shard} replica {ri} breaker {:?} queue {}/{} shed {} \
                 submitted {} quarantined_nodes {} epoch {}",
                h.breaker,
                h.queue_len,
                h.queue_cap,
                h.shed,
                h.submitted,
                h.quarantined_nodes,
                h.epoch,
            );
        }
    }
    s
}
