//! Deterministic byte surgery over valid frames — the wire twin of
//! `fc_store::fault`. The protocol-fuzz gate (`tests/net_fuzz.rs`) drives
//! [`Mutator`] over ≥100k seeds and asserts every mutant decodes to a
//! typed error or to a value byte-identical frames would produce — never
//! a panic, never a hang, never a silently different answer.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One surgical operation applied to a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Surgery {
    /// XOR one bit somewhere in the frame.
    BitFlip {
        /// Byte offset (taken modulo the frame length).
        at: usize,
        /// Bit index 0..8.
        bit: u8,
    },
    /// Overwrite one byte.
    ByteSet {
        /// Byte offset (modulo length).
        at: usize,
        /// Replacement value.
        val: u8,
    },
    /// Drop the frame's tail.
    Truncate {
        /// Bytes kept (modulo length + 1).
        keep: usize,
    },
    /// Append garbage bytes (a following frame's worth of noise).
    Append {
        /// How many bytes of noise.
        n: usize,
        /// Noise generator seed.
        seed: u64,
    },
    /// Forge the length field (offsets 9..13) to a chosen value.
    LenForge {
        /// The forged payload length.
        len: u32,
    },
    /// Overwrite the type byte (offset 8).
    TypeSwap {
        /// The forged type.
        ty: u8,
    },
    /// Splice: keep a prefix, then continue with the same frame shifted —
    /// models two frames torn and glued mid-stream.
    Splice {
        /// Prefix length kept (modulo length).
        cut: usize,
    },
}

/// Apply `s` to a copy of `frame`. Total (never panics) for every input,
/// including the empty frame.
pub fn apply(frame: &[u8], s: &Surgery) -> Vec<u8> {
    let mut out = frame.to_vec();
    match s {
        Surgery::BitFlip { at, bit } => {
            if !out.is_empty() {
                let i = at % out.len();
                if let Some(b) = out.get_mut(i) {
                    *b ^= 1u8 << (bit % 8);
                }
            }
        }
        Surgery::ByteSet { at, val } => {
            if !out.is_empty() {
                let i = at % out.len();
                if let Some(b) = out.get_mut(i) {
                    *b = *val;
                }
            }
        }
        Surgery::Truncate { keep } => {
            let k = keep % (out.len() + 1);
            out.truncate(k);
        }
        Surgery::Append { n, seed } => {
            let mut rng = SmallRng::seed_from_u64(*seed);
            out.extend((0..*n).map(|_| (rng.gen::<u32>() & 0xFF) as u8));
        }
        Surgery::LenForge { len } => {
            let bytes = len.to_le_bytes();
            for (i, v) in bytes.iter().enumerate() {
                if let Some(b) = out.get_mut(9 + i) {
                    *b = *v;
                }
            }
        }
        Surgery::TypeSwap { ty } => {
            if let Some(b) = out.get_mut(8) {
                *b = *ty;
            }
        }
        Surgery::Splice { cut } => {
            if !out.is_empty() {
                let c = cut % out.len();
                let mut spliced = Vec::with_capacity(out.len());
                spliced.extend_from_slice(out.get(..c).unwrap_or(&[]));
                spliced.extend_from_slice(out.get(c / 2..).unwrap_or(&[]));
                out = spliced;
            }
        }
    }
    out
}

/// Seeded surgery chooser: one seed → one reproducible mutant. The gate
/// sweeps seeds `0..N`, so any failure is a one-number repro.
pub struct Mutator {
    rng: SmallRng,
}

impl Mutator {
    /// A mutator whose whole decision stream derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Pick the next surgery for a frame of `len` bytes.
    pub fn pick(&mut self, len: usize) -> Surgery {
        let r = &mut self.rng;
        match r.gen_range(0..8u32) {
            0 => Surgery::BitFlip {
                at: r.gen_range(0..len.max(1)),
                bit: r.gen_range(0..8u32) as u8,
            },
            1 => Surgery::ByteSet {
                at: r.gen_range(0..len.max(1)),
                val: (r.gen::<u32>() & 0xFF) as u8,
            },
            2 => Surgery::Truncate {
                keep: r.gen_range(0..len + 1),
            },
            3 => Surgery::Append {
                n: r.gen_range(1..64usize),
                seed: r.gen::<u64>(),
            },
            4 => Surgery::LenForge {
                len: r.gen::<u32>(),
            },
            5 => Surgery::TypeSwap {
                ty: (r.gen::<u32>() & 0xFF) as u8,
            },
            6 => Surgery::Splice {
                cut: r.gen_range(0..len.max(1)),
            },
            _ => Surgery::BitFlip {
                at: r.gen_range(0..len.max(1)),
                bit: r.gen_range(0..8u32) as u8,
            },
        }
    }

    /// Mutate a frame: apply 1–3 surgeries picked from this seed stream.
    pub fn mutate(&mut self, frame: &[u8]) -> (Vec<u8>, Vec<Surgery>) {
        let rounds = self.rng.gen_range(1..4u32);
        let mut out = frame.to_vec();
        let mut applied = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            let s = self.pick(out.len());
            out = apply(&out, &s);
            applied.push(s);
        }
        (out, applied)
    }
}
