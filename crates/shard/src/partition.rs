//! Contiguous key-range partitioning with a versioned routing table.
//!
//! The cluster splits the key universe into `S` contiguous half-open
//! ranges; shard `i` owns `[cuts[i-1], cuts[i])` (with `-∞` / `+∞` at the
//! ends). The table is an immutable value: rebalancing produces a *new*
//! table with `version + 1` and the router hot-swaps it through the same
//! epoch machinery that publishes generations, so an in-flight query keeps
//! routing against the exact table it pinned.
//!
//! ## Why contiguous ranges (and not hashing)
//!
//! Every query in this workspace is an order query — a cooperative search
//! answers *successors* along a root-to-leaf path, and range retrieval
//! reports contiguous catalog runs. Contiguous partitioning preserves the
//! order semantics across the cluster: the shards, read in ascending index
//! order, cover the key axis in ascending order, so
//!
//! * a successor query for `y` is answered by the **owner shard**
//!   `shard_of(y)` unless that shard's catalogs hold no key `≥ y` at some
//!   path node, in which case the true successor is the first answer found
//!   by *escalating* through shards `owner+1, owner+2, …` in order — an
//!   earlier shard can never hold it (all its keys are `< y`'s owner
//!   range… and every key it stores below a cut is `< y` only when
//!   `y ≥` the cut, which holds by ownership);
//! * a range report `[lo, hi]` scatters to exactly
//!   [`RoutingTable::shards_overlapping`] and the per-shard partial
//!   results concatenate in shard order into a globally ordered report
//!   (`fc_retrieval::merge_shard_reports`).
//!
//! The routing invariant, stated once and tested below: **for every key
//! `y` and every table version, `shard_of(y)` is the unique shard whose
//! range contains `y`, and ranges of one version tile the key axis with no
//! gap and no overlap.** Version `v+1` differs from `v` by exactly one
//! range split (or is identical), so any key routable under `v` is
//! routable under `v+1`.

use fc_catalog::CatalogKey;

/// An immutable, versioned map from keys to shard indices (see module
/// docs). Cheap to clone; the router hot-swaps `Arc`s of the containing
/// cluster state rather than mutating a table in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable<K: CatalogKey> {
    version: u64,
    /// Ascending interior cut keys; shard `i` owns `[cuts[i-1], cuts[i])`.
    cuts: Vec<K>,
}

impl<K: CatalogKey> RoutingTable<K> {
    /// A version-1 table from ascending interior cuts (`cuts.len() + 1`
    /// shards). Returns `None` if the cuts are not strictly ascending.
    pub fn from_cuts(cuts: Vec<K>) -> Option<Self> {
        let ascending = cuts.windows(2).all(|w| match w {
            [a, b] => a < b,
            _ => true,
        });
        if !ascending {
            return None;
        }
        Some(RoutingTable { version: 1, cuts })
    }

    /// The degenerate single-shard table (no cuts), version 1.
    pub fn single() -> Self {
        RoutingTable {
            version: 1,
            cuts: Vec::new(),
        }
    }

    /// Reconstruct a table at a specific `version` from persisted cuts —
    /// the cold-start path: a restarted cluster must resume at the version
    /// it crashed with, not at 1, so staleness detection keeps working
    /// across restarts. Returns `None` if the cuts are not strictly
    /// ascending or the version is 0 (versions start at 1).
    pub fn restore(cuts: Vec<K>, version: u64) -> Option<Self> {
        if version == 0 {
            return None;
        }
        let ascending = cuts.windows(2).all(|w| match w {
            [a, b] => a < b,
            _ => true,
        });
        if !ascending {
            return None;
        }
        Some(RoutingTable { version, cuts })
    }

    /// The interior cut keys (what a cold-start manifest persists).
    pub fn cuts(&self) -> &[K] {
        &self.cuts
    }

    /// The table's version; bumped by exactly one per published rebalance.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards (`cuts.len() + 1`).
    pub fn shards(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The unique shard owning `y`: the count of cuts `≤ y`.
    pub fn shard_of(&self, y: &K) -> usize {
        self.cuts.partition_point(|c| c <= y)
    }

    /// Shard `shard`'s half-open range as `(lo, hi)`; `None` means `-∞` /
    /// `+∞`. Out-of-range shard indices return `(None, None)`-safe bounds
    /// clamped to the last shard.
    pub fn range_of(&self, shard: usize) -> (Option<&K>, Option<&K>) {
        let lo = shard.checked_sub(1).and_then(|i| self.cuts.get(i));
        let hi = self.cuts.get(shard);
        (lo, hi)
    }

    /// All shards whose ranges intersect the closed key interval
    /// `[lo, hi]`, in ascending (key) order. Empty when `lo > hi`.
    pub fn shards_overlapping(&self, lo: &K, hi: &K) -> std::ops::Range<usize> {
        if lo > hi {
            return 0..0;
        }
        self.shard_of(lo)..self.shard_of(hi) + 1
    }

    /// A new table in which `shard` is split at `at`: the shard's range
    /// becomes `[shard.lo, at)` and `[at, shard.hi)`. Returns `None` when
    /// `at` is not strictly inside the shard's range (a degenerate split
    /// would create an empty shard and break the tiling invariant).
    pub fn split(&self, shard: usize, at: K) -> Option<Self> {
        if shard >= self.shards() {
            return None;
        }
        let (lo, hi) = self.range_of(shard);
        let above_lo = lo.is_none_or(|l| *l < at);
        let below_hi = hi.is_none_or(|h| at < *h);
        if !above_lo || !below_hi {
            return None;
        }
        let mut cuts = self.cuts.clone();
        cuts.insert(shard, at);
        Some(RoutingTable {
            version: self.version + 1,
            cuts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RoutingTable<i64> {
        RoutingTable::from_cuts(vec![100, 200, 300]).unwrap()
    }

    #[test]
    fn rejects_non_ascending_cuts() {
        assert!(RoutingTable::from_cuts(vec![5i64, 5]).is_none());
        assert!(RoutingTable::from_cuts(vec![9i64, 3]).is_none());
        assert!(RoutingTable::<i64>::from_cuts(vec![]).is_some());
    }

    #[test]
    fn ranges_tile_the_axis_without_gap_or_overlap() {
        let t = table();
        assert_eq!(t.shards(), 4);
        // Every key lands in exactly one shard, and that shard's range
        // contains it.
        for y in -50i64..=400 {
            let s = t.shard_of(&y);
            assert!(s < t.shards());
            let (lo, hi) = t.range_of(s);
            assert!(lo.is_none_or(|l| *l <= y), "y={y} below shard {s}");
            assert!(hi.is_none_or(|h| y < *h), "y={y} above shard {s}");
            // No other shard's range contains it.
            for other in 0..t.shards() {
                if other == s {
                    continue;
                }
                let (lo, hi) = t.range_of(other);
                let inside = lo.is_none_or(|l| *l <= y) && hi.is_none_or(|h| y < *h);
                assert!(!inside, "y={y} also inside shard {other}");
            }
        }
    }

    #[test]
    fn cut_keys_route_right() {
        let t = table();
        assert_eq!(t.shard_of(&99), 0);
        assert_eq!(t.shard_of(&100), 1);
        assert_eq!(t.shard_of(&299), 2);
        assert_eq!(t.shard_of(&300), 3);
    }

    #[test]
    fn overlap_is_the_exact_contiguous_run() {
        let t = table();
        assert_eq!(t.shards_overlapping(&-10, &50), 0..1);
        assert_eq!(t.shards_overlapping(&50, &250), 0..3);
        assert_eq!(t.shards_overlapping(&100, &100), 1..2);
        assert_eq!(t.shards_overlapping(&0, &1000), 0..4);
        assert_eq!(t.shards_overlapping(&5, &4), 0..0, "inverted interval");
    }

    #[test]
    fn split_bumps_version_and_preserves_tiling() {
        let t = table();
        let t2 = t.split(1, 150).expect("valid split");
        assert_eq!(t2.version(), t.version() + 1);
        assert_eq!(t2.shards(), 5);
        // Keys outside the split shard route to a range with identical
        // bounds; keys inside route to one of the two halves.
        for y in -50i64..=400 {
            let (lo2, hi2) = {
                let s = t2.shard_of(&y);
                let (l, h) = t2.range_of(s);
                (l.copied(), h.copied())
            };
            assert!(lo2.is_none_or(|l| l <= y) && hi2.is_none_or(|h| y < h));
        }
        assert_eq!(t2.shard_of(&149), 1);
        assert_eq!(t2.shard_of(&150), 2);
        assert_eq!(t2.shard_of(&250), 3, "later shards shift right");
    }

    #[test]
    fn degenerate_splits_are_refused() {
        let t = table();
        assert!(t.split(1, 100).is_none(), "at == lo");
        assert!(t.split(1, 99).is_none(), "at < lo");
        assert!(t.split(1, 200).is_none(), "at == hi");
        assert!(t.split(9, 150).is_none(), "no such shard");
        // Unbounded end shards split anywhere past their lo.
        assert!(t.split(0, -1000).is_some());
        assert!(t.split(3, 1_000_000).is_some());
    }
}
