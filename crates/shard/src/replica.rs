//! A replicated group of independent [`Service`] instances for one shard.
//!
//! Replication here is for *availability under corruption*, not for
//! durability: each replica runs its own worker pool, auditor, quarantine
//! breaker, and generation chain over the same logical key set. Updates are
//! applied to every replica; faults are injected (and repaired) per
//! replica. The router sends each query to one healthy replica and fails
//! over to a peer when the chosen replica returns a typed error — so a
//! fully-quarantined replica degrades throughput, never answerability.

use fc_catalog::CatalogKey;
use fc_serve::{BreakerState, ReplicaHealth, Service};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// The replicas of one shard plus a round-robin cursor for tie-breaking
/// among equally healthy replicas.
pub struct ReplicaSet<K: CatalogKey> {
    replicas: Vec<Service<K>>,
    rr: AtomicUsize,
}

impl<K: CatalogKey> ReplicaSet<K> {
    /// Group the given services (at least one) into a replica set.
    pub fn new(replicas: Vec<Service<K>>) -> Self {
        ReplicaSet {
            replicas,
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set has no replicas (never true for a started cluster).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica at `idx`, if any.
    pub fn replica(&self, idx: usize) -> Option<&Service<K>> {
        self.replicas.get(idx)
    }

    /// Iterate over the replicas.
    pub fn iter(&self) -> impl Iterator<Item = &Service<K>> {
        self.replicas.iter()
    }

    /// Health snapshots of every replica, in index order.
    pub fn health(&self) -> Vec<ReplicaHealth> {
        self.replicas.iter().map(|r| r.health()).collect()
    }

    /// Pick the healthiest replica to try first: `Closed` breaker beats
    /// `HalfOpen` beats `Open`, less-loaded queue beats fuller, and a
    /// rotating round-robin offset breaks remaining ties so equally
    /// healthy replicas share load. Returns `(index, service)`.
    pub fn pick_healthy(&self) -> Option<(usize, &Service<K>)> {
        let n = self.replicas.len();
        if n == 0 {
            return None;
        }
        let start = self.rr.fetch_add(1, Relaxed) % n;
        let mut best: Option<(u64, usize)> = None;
        for off in 0..n {
            let idx = (start + off) % n;
            let Some(svc) = self.replicas.get(idx) else {
                continue;
            };
            let h = svc.health();
            let breaker_rank = match h.breaker {
                BreakerState::Closed => 0u64,
                BreakerState::HalfOpen => 1,
                BreakerState::Open => 2,
            };
            // Lexicographic (breaker, queue saturation in 1/1024ths);
            // round-robin order already decides ties via the scan order.
            let score = breaker_rank * 1_000_000 + (h.queue_frac() * 1024.0) as u64;
            let better = best.is_none_or(|(b, _)| score < b);
            if better {
                best = Some((score, idx));
            }
        }
        best.and_then(|(_, idx)| self.replicas.get(idx).map(|svc| (idx, svc)))
    }

    /// The first replica other than `not`, preferring healthy ones — the
    /// failover target after replica `not` returned an error.
    pub fn pick_excluding(&self, not: usize) -> Option<(usize, &Service<K>)> {
        let n = self.replicas.len();
        let start = self.rr.fetch_add(1, Relaxed) % n.max(1);
        let mut fallback: Option<(usize, &Service<K>)> = None;
        for off in 0..n {
            let idx = (start + off) % n;
            if idx == not {
                continue;
            }
            let Some(svc) = self.replicas.get(idx) else {
                continue;
            };
            if svc.health().breaker == BreakerState::Closed {
                return Some((idx, svc));
            }
            if fallback.is_none() {
                fallback = Some((idx, svc));
            }
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_coop::ParamMode;
    use fc_serve::ServeConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn mk_service(seed: u64) -> Service<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(4, 300, SizeDist::Uniform, &mut rng);
        let cfg = ServeConfig {
            workers: 1,
            audit_interval: Duration::from_secs(3600),
            ..ServeConfig::default()
        };
        Service::start(tree, ParamMode::Auto, cfg)
    }

    #[test]
    fn pick_healthy_avoids_open_breakers() {
        let a = mk_service(1);
        let b = mk_service(2);
        let set = ReplicaSet::new(vec![a, b]);
        // Force replica 0's breaker open: picks must land on replica 1.
        let nodes: Vec<u32> = (0..8).collect();
        set.replica(0).unwrap().force_quarantine(nodes);
        for _ in 0..6 {
            let (idx, _) = set.pick_healthy().unwrap();
            assert_eq!(idx, 1, "open breaker must lose to closed");
        }
    }

    #[test]
    fn healthy_ties_rotate_round_robin() {
        let set = ReplicaSet::new(vec![mk_service(3), mk_service(4)]);
        let picks: Vec<usize> = (0..6).map(|_| set.pick_healthy().unwrap().0).collect();
        assert!(picks.contains(&0) && picks.contains(&1), "{picks:?}");
    }

    #[test]
    fn excluding_skips_the_failed_replica() {
        let set = ReplicaSet::new(vec![mk_service(5), mk_service(6)]);
        for _ in 0..4 {
            assert_eq!(set.pick_excluding(0).unwrap().0, 1);
            assert_eq!(set.pick_excluding(1).unwrap().0, 0);
        }
        let single = ReplicaSet::new(vec![mk_service(7)]);
        assert!(
            single.pick_excluding(0).is_none(),
            "no peer to fail over to"
        );
    }
}
