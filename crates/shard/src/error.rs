//! Typed cluster-level errors, extending [`ServeError`] across shards.

use fc_serve::ServeError;
use std::fmt;

/// Why the cluster could not answer a query. Mirrors the single-service
/// contract one level up: **an answer equal to the sequential oracle on
/// the generation(s) that served it, or one of these — never a silently
/// wrong answer.**
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Every replica of `shard` failed the query; `last` is the error
    /// from the final replica tried. This is the only way a key range
    /// becomes unanswerable — a single quarantined replica fails over to
    /// its peer instead.
    ShardUnavailable {
        /// The shard whose replica set was exhausted.
        shard: usize,
        /// Replicas tried before giving up.
        tried: usize,
        /// The last replica's error.
        last: ServeError,
    },
    /// The end-to-end deadline budget ran out before the scatter reached
    /// `shard` (earlier legs consumed it). Distinct from a per-leg
    /// [`ServeError::Timeout`], which is a leg that *started* and blew
    /// its slice.
    BudgetExhausted {
        /// First shard the gather could not afford to ask.
        shard: usize,
        /// Escalation legs completed before the budget died.
        legs_done: usize,
    },
    /// The cluster is shutting down; the query was not executed.
    ShuttingDown,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ShardUnavailable { shard, tried, last } => write!(
                f,
                "shard {shard} unavailable: all {tried} replicas failed (last: {last})"
            ),
            ShardError::BudgetExhausted { shard, legs_done } => write!(
                f,
                "deadline budget exhausted before shard {shard} ({legs_done} legs done)"
            ),
            ShardError::ShuttingDown => write!(f, "cluster is shutting down"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::ShardUnavailable { last, .. } => Some(last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ShardError::ShardUnavailable {
            shard: 2,
            tried: 2,
            last: ServeError::ShuttingDown,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(std::error::Error::source(&e).is_some());
        let b = ShardError::BudgetExhausted {
            shard: 3,
            legs_done: 1,
        };
        assert!(b.to_string().contains("shard 3"));
        assert!(std::error::Error::source(&b).is_none());
    }
}
