//! [`DurableCluster`]: a [`ShardCluster`] that survives `kill -9` and
//! cold-starts from disk with its routing table restored.
//!
//! ## On-disk layout
//!
//! ```text
//! cluster-dir/
//!   MANIFEST.fcm          epoch + routing-table version + cut keys
//!   epoch-<e>/
//!     shard-0/            one fc_store::Store per shard:
//!       snap-*.fcs        snapshots of the shard's *filtered* tree
//!       wal-*.fcw         the shard's share of every update batch
//!     shard-1/ …
//! ```
//!
//! The manifest's atomic rename is the **commit point** for cluster
//! shape: [`DurableCluster::split_durable`] checkpoints every shard into
//! a fresh `epoch-<e+1>/` directory *before* committing the manifest, so
//! a crash mid-split recovers the old epoch with the old table — never a
//! half-split cluster. Update durability follows the same write-ahead
//! contract as `fc_serve::DurableService`: each batch is routed per
//! shard, appended (fsynced) to the owning shard's WAL, and only then
//! applied to the in-memory replicas — an acknowledged
//! [`DurableCluster::update_batch`] is durable when it returns.
//!
//! Cold start ([`DurableCluster::cold_start`]) reads the manifest,
//! restores the [`RoutingTable`] at its persisted version (staleness
//! detection survives restarts), runs `fc_store::recover` per shard —
//! snapshot + WAL replay + blame audit, refusing with a typed
//! [`StoreError`] if any shard cannot be proven clean — and rebuilds
//! every replica group from the recovered trees.
//!
//! Durability covers updates and splits routed through this wrapper;
//! calling [`ShardCluster::update_batch`] or
//! [`ShardCluster::split_shard`] directly on the inner cluster bypasses
//! the log and the manifest by construction.

use crate::partition::RoutingTable;
use crate::router::{ShardCluster, ShardConfig, ShardStats};
use fc_catalog::{CatalogKey, CatalogTree};
use fc_coop::dynamic::UpdateOp;
use fc_coop::ParamMode;
use fc_store::manifest::{epoch_dir, shard_dir};
use fc_store::{read_manifest, write_manifest, KeyCodec, Manifest, Store, StoreConfig, StoreError};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// What a cold start recovered, summed over the shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColdStartReport {
    /// Checkpoint epoch the manifest committed.
    pub epoch: u64,
    /// Restored routing-table version (equals the pre-crash version).
    pub table_version: u64,
    /// Shards rehydrated.
    pub shards: usize,
    /// WAL records replayed across all shards.
    pub replayed_records: u64,
    /// Individual ops replayed across all shards.
    pub replayed_ops: u64,
    /// Already-snapshotted records skipped (idempotent replay).
    pub skipped_records: u64,
    /// Torn tail bytes truncated across all shard logs.
    pub truncated_bytes: u64,
    /// Corrupt snapshots skipped in favour of older valid ones.
    pub snapshots_skipped: usize,
    /// Rebuild (epoch-cut) markers replayed above the watermarks — a
    /// nonzero count means some shard died between cutting an epoch and
    /// persisting its snapshot.
    pub rebuild_markers: u64,
}

struct DurState<K: CatalogKey + KeyCodec> {
    epoch: u64,
    /// One store per shard, indexed like the cluster's groups.
    stores: Vec<Store<K>>,
}

/// A [`ShardCluster`] with per-shard snapshot + WAL durability and a
/// manifest-committed routing table. See the module docs for the layout
/// and the write-ahead contract.
pub struct DurableCluster<K: CatalogKey + KeyCodec> {
    cluster: ShardCluster<K>,
    dir: PathBuf,
    store_cfg: StoreConfig,
    /// Serializes durable mutators (updates, checkpoints, splits) so WAL
    /// order equals apply order and the store vector tracks the table.
    state: Mutex<DurState<K>>,
}

fn invalid(reason: impl Into<String>) -> StoreError {
    StoreError::ManifestInvalid {
        reason: reason.into(),
    }
}

/// Snapshot every shard's published replica-0 generation into per-shard
/// stores under `epoch-<epoch>/`, creating the stores. Buffers must have
/// been drained (force-published) by the caller first.
fn persist_epoch<K: CatalogKey + KeyCodec>(
    cluster: &ShardCluster<K>,
    dir: &Path,
    epoch: u64,
    store_cfg: &StoreConfig,
) -> Result<Vec<Store<K>>, StoreError> {
    let edir = epoch_dir(dir, epoch);
    let state = cluster.state();
    let mut stores = Vec::with_capacity(state.groups.len());
    for (shard, group) in state.groups.iter().enumerate() {
        let svc = group
            .replica(0)
            .ok_or_else(|| invalid(format!("shard {shard} has no replica to snapshot")))?;
        let generation = svc.gen_stats().generation;
        let snapshot = svc.snapshot();
        let store = Store::open(&shard_dir(&edir, shard), *store_cfg)?;
        store.persist_snapshot(snapshot.st.tree(), generation)?;
        stores.push(store);
    }
    Ok(stores)
}

impl<K: CatalogKey + KeyCodec> DurableCluster<K> {
    /// Start a fresh durable cluster over `tree`, committing epoch 1
    /// (per-shard generation-0 snapshots + the version-1 routing table)
    /// to `dir` before returning.
    pub fn create(
        dir: &Path,
        tree: &CatalogTree<K>,
        mode: ParamMode,
        cfg: ShardConfig,
        store_cfg: StoreConfig,
    ) -> Result<Self, StoreError> {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir_all", dir, e))?;
        let cluster = ShardCluster::start(tree, mode, cfg);
        let epoch = 1u64;
        let stores = persist_epoch(&cluster, dir, epoch, &store_cfg)?;
        let state = cluster.state();
        write_manifest::<K>(
            dir,
            &Manifest {
                epoch,
                table_version: state.table.version(),
                cuts: state.table.cuts().to_vec(),
            },
            store_cfg.fsync,
        )?;
        drop(state);
        Ok(DurableCluster {
            cluster,
            dir: dir.to_path_buf(),
            store_cfg,
            state: Mutex::new(DurState { epoch, stores }),
        })
    }

    /// Cold-start from `dir`: read the manifest, restore the routing
    /// table at its persisted version, recover every shard store
    /// (snapshot + WAL replay + blame audit — any shard that cannot be
    /// proven clean refuses the whole cold start with a typed error),
    /// and rebuild the replica groups from the recovered trees.
    pub fn cold_start(
        dir: &Path,
        mode: ParamMode,
        cfg: ShardConfig,
        store_cfg: StoreConfig,
    ) -> Result<(Self, ColdStartReport), StoreError> {
        let m = read_manifest::<K>(dir)?;
        let table = RoutingTable::restore(m.cuts.clone(), m.table_version)
            .ok_or_else(|| invalid("manifest cuts/version do not form a valid routing table"))?;
        let edir = epoch_dir(dir, m.epoch);
        let mut report = ColdStartReport {
            epoch: m.epoch,
            table_version: m.table_version,
            shards: m.shards(),
            ..ColdStartReport::default()
        };
        let mut trees: Vec<CatalogTree<K>> = Vec::with_capacity(m.shards());
        let mut recovered_gens: Vec<u64> = Vec::with_capacity(m.shards());
        for shard in 0..m.shards() {
            let rec = fc_store::recover::<K>(&shard_dir(&edir, shard))?;
            report.replayed_records += rec.replayed_records;
            report.replayed_ops += rec.replayed_ops;
            report.skipped_records += rec.skipped_records;
            report.truncated_bytes += rec.truncated_bytes;
            report.snapshots_skipped += rec.snapshots_skipped;
            report.rebuild_markers += rec.rebuild_markers;
            trees.push(rec.tree);
            recovered_gens.push(rec.generation);
        }
        let cluster = ShardCluster::start_with_table(table, &trees, mode, cfg)
            .ok_or_else(|| invalid("recovered shard count does not match the routing table"))?;
        // Re-persist each recovered shard so the next recovery starts
        // from one snapshot instead of snapshot + long log, then drop
        // what those snapshots cover.
        let mut stores = Vec::with_capacity(trees.len());
        for (shard, (tree, generation)) in trees.iter().zip(&recovered_gens).enumerate() {
            let store = Store::open(&shard_dir(&edir, shard), store_cfg)?;
            store.persist_snapshot(tree, *generation)?;
            store.prune()?;
            stores.push(store);
        }
        Ok((
            DurableCluster {
                cluster,
                dir: dir.to_path_buf(),
                store_cfg,
                state: Mutex::new(DurState {
                    epoch: m.epoch,
                    stores,
                }),
            },
            report,
        ))
    }

    /// Apply one update batch durably: route each op to its owner shard,
    /// append (fsynced) to that shard's WAL, then apply to every replica
    /// in memory. The batch is durable when this returns.
    pub fn update_batch(&self, ops: &[UpdateOp<K>]) -> Result<(), StoreError> {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let cstate = self.cluster.state();
        let shards = cstate.table.shards();
        if st.stores.len() != shards {
            // Only possible if the inner cluster was split behind our
            // back; refuse rather than log to the wrong shard.
            return Err(invalid(
                "routing table changed outside split_durable; stores out of step",
            ));
        }
        let mut grouped: Vec<Vec<UpdateOp<K>>> = (0..shards).map(|_| Vec::new()).collect();
        for op in ops {
            let key = match op {
                UpdateOp::Insert(_, k) | UpdateOp::Remove(_, k) => k,
            };
            let shard = cstate.table.shard_of(key);
            if let Some(g) = grouped.get_mut(shard) {
                g.push(*op);
            }
        }
        drop(cstate);
        for (store, shard_ops) in st.stores.iter().zip(&grouped) {
            if !shard_ops.is_empty() {
                // fc-lint: allow(lock-discipline) -- intentional: per-shard WAL append order must equal apply order, so writers serialize across the fsync
                store.append_batch(shard_ops)?;
            }
        }
        // fc-lint: allow(lock-discipline) -- intentional: the in-memory apply stays under the state lock so no writer can interleave between log and apply
        self.cluster.update_batch(ops);
        Ok(())
    }

    /// Drain every replica's buffers (force publish) and snapshot every
    /// shard's published generation in place (same epoch, same manifest).
    /// Returns the epoch the checkpoint landed in.
    pub fn checkpoint(&self) -> Result<u64, StoreError> {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let cstate = self.cluster.state();
        if st.stores.len() != cstate.table.shards() {
            return Err(invalid(
                "routing table changed outside split_durable; stores out of step",
            ));
        }
        for (group, store) in cstate.groups.iter().zip(&st.stores) {
            for svc in group.iter() {
                // fc-lint: allow(lock-discipline) -- intentional: checkpoint must drain+publish every replica with writers held off, or the snapshots diverge
                svc.force_publish();
            }
            let svc = group
                .replica(0)
                .ok_or_else(|| invalid("shard has no replica to snapshot"))?;
            let generation = svc.gen_stats().generation;
            let snapshot = svc.snapshot();
            // Marker first, snapshot second: the snapshot watermark then
            // covers the marker, and a crash in between replays it as
            // provenance instead of losing the epoch cut.
            // fc-lint: allow(lock-discipline) -- intentional: the marker must land in the same writer-held window as the snapshot it covers
            store.append_rebuild_marker(generation)?;
            // fc-lint: allow(lock-discipline) -- intentional: snapshot the drained generation before any writer can move it
            store.persist_snapshot(snapshot.st.tree(), generation)?;
            store.prune()?;
        }
        Ok(st.epoch)
    }

    /// Split `shard` (see [`ShardCluster::split_shard`]) and commit the
    /// new shape durably: checkpoint every shard of the *new* table into
    /// a fresh `epoch-<e+1>/` directory, commit the manifest (the atomic
    /// rename is the commit point), then delete the old epoch directory.
    /// A crash anywhere before the manifest commit cold-starts the old
    /// epoch with the old table. Returns the new table version, or
    /// `Ok(None)` when the shard cannot split.
    pub fn split_durable(&self, shard: usize) -> Result<Option<u64>, StoreError> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        // fc-lint: allow(lock-discipline) -- intentional: the whole split (resplit, drain, persist, manifest commit) is one critical section; a concurrent writer would log to the wrong shard's WAL
        let Some(version) = self.cluster.split_shard(shard) else {
            return Ok(None);
        };
        // Drain all buffers so the new epoch's snapshots are complete
        // (its WALs start empty).
        let cstate = self.cluster.state();
        for group in &cstate.groups {
            for svc in group.iter() {
                // fc-lint: allow(lock-discipline) -- intentional: see the critical-section note at the top of split_durable
                svc.force_publish();
            }
        }
        drop(cstate);
        let new_epoch = st.epoch + 1;
        // fc-lint: allow(lock-discipline) -- intentional: see the critical-section note at the top of split_durable
        let stores = persist_epoch(&self.cluster, &self.dir, new_epoch, &self.store_cfg)?;
        let cstate = self.cluster.state();
        // fc-lint: allow(lock-discipline) -- intentional: see the critical-section note at the top of split_durable
        write_manifest::<K>(
            &self.dir,
            &Manifest {
                epoch: new_epoch,
                table_version: cstate.table.version(),
                cuts: cstate.table.cuts().to_vec(),
            },
            self.store_cfg.fsync,
        )?;
        drop(cstate);
        // Committed: the old epoch is garbage now (best-effort removal).
        let old = epoch_dir(&self.dir, st.epoch);
        let _ = fs::remove_dir_all(old);
        st.epoch = new_epoch;
        st.stores = stores;
        Ok(Some(version))
    }

    /// The inner cluster (queries, audits, health, chaos hooks —
    /// everything except updates and splits, which must go through
    /// [`DurableCluster::update_batch`] / [`DurableCluster::split_durable`]
    /// to stay durable).
    pub fn cluster(&self) -> &ShardCluster<K> {
        &self.cluster
    }

    /// The current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).epoch
    }

    /// The cluster directory this instance persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stop the cluster and return its counters. The store files remain
    /// on disk for the next [`DurableCluster::cold_start`].
    pub fn shutdown(self) -> ShardStats {
        self.cluster.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::NodeId;
    use fc_serve::ServeConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fc-durable-cluster-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(shards: usize, replicas: usize) -> ShardConfig {
        ShardConfig {
            shards,
            replicas,
            serve: ServeConfig {
                workers: 1,
                audit_interval: Duration::from_secs(3600),
                default_deadline: Duration::from_secs(5),
                processors: 1 << 8,
                ..ServeConfig::default()
            },
            batch_threads: 2,
            default_deadline: Duration::from_secs(10),
            ..ShardConfig::default()
        }
    }

    fn no_fsync() -> StoreConfig {
        StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        }
    }

    fn full_tree(seed: u64) -> CatalogTree<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        gen::balanced_binary(5, 1200, SizeDist::Uniform, &mut rng)
    }

    fn full_oracle(tree: &CatalogTree<i64>, leaf: NodeId, y: i64) -> Vec<Option<i64>> {
        tree.path_from_root(leaf)
            .iter()
            .map(|&node| {
                let cat = tree.catalog(node);
                cat.get(cat.partition_point(|k| *k < y)).copied()
            })
            .collect()
    }

    #[test]
    fn cold_start_restores_table_version_and_answers() {
        let dir = tmp("coldstart");
        let tree = full_tree(71);
        let dc =
            DurableCluster::create(&dir, &tree, ParamMode::Auto, cfg(3, 1), no_fsync()).unwrap();
        let leaves = dc.cluster().leaves();
        let leaf = leaves[0];
        // Split once so the restored version must be > 1.
        let v = dc.split_durable(1).unwrap().expect("split");
        assert_eq!(v, 2);
        assert_eq!(dc.epoch(), 2);
        assert!(!epoch_dir(&dir, 1).exists(), "old epoch removed");
        // Unsnapshotted tail: these must come back from the WAL alone.
        let node = tree.path_from_root(leaf)[1];
        let keys: Vec<i64> = (0..10).map(|i| 30_000_000 + i).collect();
        for &k in &keys {
            dc.update_batch(&[UpdateOp::Insert(node, k)]).unwrap();
        }
        drop(dc); // unclean stop: no checkpoint, no shutdown

        let (dc2, rep) =
            DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, cfg(3, 2), no_fsync())
                .unwrap();
        assert_eq!(rep.table_version, 2, "routing version survives restart");
        assert_eq!(dc2.cluster().table_version(), 2);
        assert_eq!(rep.shards, 4);
        assert_eq!(rep.replayed_records, 10, "tail replayed from the WAL");
        // Recovered answers equal the oracle on the original tree plus
        // the WAL-replayed tail inserts at `node`.
        let oracle_with_tail = |leaf: NodeId, y: i64| -> Vec<Option<i64>> {
            tree.path_from_root(leaf)
                .iter()
                .map(|&n| {
                    let cat = tree.catalog(n);
                    let base = cat.get(cat.partition_point(|k| *k < y)).copied();
                    if n != node {
                        return base;
                    }
                    let tail = keys.iter().copied().filter(|k| *k >= y).min();
                    match (base, tail) {
                        (Some(b), Some(t)) => Some(b.min(t)),
                        (b, t) => b.or(t),
                    }
                })
                .collect()
        };
        let mut rng = SmallRng::seed_from_u64(72);
        for _ in 0..40 {
            let y = rng.gen_range(-100..25_000i64);
            let ok = dc2.cluster().query_blocking(leaf, y, None).unwrap();
            assert_eq!(ok.answers, oracle_with_tail(leaf, y), "y={y}");
        }
        // The tail keys themselves are findable.
        for &k in &keys {
            let ok = dc2.cluster().query_blocking(leaf, k, None).unwrap();
            let hit = ok
                .path
                .iter()
                .zip(&ok.answers)
                .any(|(n, a)| *n == node && *a == Some(k));
            assert!(hit, "WAL-recovered key {k} not visible");
        }
        // Durable updates continue seamlessly after cold start.
        dc2.update_batch(&[UpdateOp::Insert(node, 31_000_000)])
            .unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_manifest_commit_recovers_old_epoch() {
        let dir = tmp("midsplit");
        let tree = full_tree(73);
        let dc =
            DurableCluster::create(&dir, &tree, ParamMode::Auto, cfg(2, 1), no_fsync()).unwrap();
        dc.checkpoint().unwrap();
        drop(dc);
        // Simulate a crash mid-split *after* the new epoch dir was
        // written but *before* the manifest rename: a stray epoch-2 dir
        // must be ignored because the manifest still points at epoch 1.
        fs::create_dir_all(shard_dir(&epoch_dir(&dir, 2), 0)).unwrap();
        let (dc2, rep) =
            DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, cfg(2, 1), no_fsync())
                .unwrap();
        assert_eq!(rep.epoch, 1, "uncommitted epoch ignored");
        assert_eq!(rep.table_version, 1);
        let leaf = dc2.cluster().leaves()[0];
        let ok = dc2.cluster().query_blocking(leaf, 500, None).unwrap();
        assert_eq!(ok.answers, full_oracle(&tree, leaf, 500));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_a_typed_error() {
        let dir = tmp("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        let res = DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, cfg(2, 1), no_fsync());
        assert!(matches!(res, Err(StoreError::Io { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
