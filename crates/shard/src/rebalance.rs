//! Hot-shard detection and online shard splitting.
//!
//! A shard runs hot when its replicas' admission queues saturate and shed
//! — the cluster-level analogue of the single service's load shedding. The
//! rebalancer scores each shard from its replicas' [`ReplicaHealth`]
//! (queue saturation plus lifetime shed fraction), and splits the hottest
//! shard at its median key: the split drains the shard's buffered updates
//! (`force_publish`), snapshots its authoritative catalogs, builds two new
//! replica groups over the two half-ranges, and publishes a `ClusterState`
//! with a `version + 1` routing table through the cluster's epoch pointer.
//!
//! ## Protocol (and why it is safe mid-traffic)
//!
//! 1. Take the cluster `update_lock` — updates and other splits are
//!    serialized; queries are **not** blocked (they never take this lock).
//! 2. `force_publish` every replica of the victim shard, so the snapshot
//!    read in step 3 contains every update routed up to the lock.
//! 3. Snapshot one replica's generation; collect its keys; pick the
//!    median. Bail (return `None`) if the shard cannot split (fewer than
//!    two distinct keys, or the table refuses a degenerate cut).
//! 4. Build the two half-groups from the snapshot, splice them into a new
//!    group vector, and publish `(table.split(..), groups')` atomically.
//!
//! In-flight queries pinned the *old* state: they keep routing with the
//! old table against the old groups (kept alive by their `Arc`s), and
//! their answers remain oracle-correct on the generations that serve
//! them. New queries pin the new state. There is no window in which a key
//! range is unanswerable: both states are complete covers of the key axis.

use crate::router::{build_group, ClusterState, ShardCluster};
use fc_catalog::CatalogKey;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

/// How the rebalancer scores shard heat; tune via
/// [`ShardCluster::rebalance_if_hot`].
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    /// Weight of instantaneous queue saturation (`queue_len / queue_cap`).
    pub queue_weight: f64,
    /// Weight of the lifetime shed fraction (`shed / submitted`).
    pub shed_weight: f64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            queue_weight: 1.0,
            shed_weight: 2.0,
        }
    }
}

impl<K: CatalogKey> ShardCluster<K> {
    /// Score every shard's heat (max over its replicas) and return the
    /// hottest as `(shard, score)`. Scores are `0.0` on an idle cluster.
    pub fn hottest_shard(&self, heat: HeatConfig) -> Option<(usize, f64)> {
        let per_shard = self.health();
        per_shard
            .iter()
            .enumerate()
            .map(|(shard, replicas)| {
                let score = replicas
                    .iter()
                    .map(|h| {
                        let shed_frac = h.shed as f64 / (h.shed + h.submitted).max(1) as f64;
                        heat.queue_weight * h.queue_frac() + heat.shed_weight * shed_frac
                    })
                    .fold(0.0f64, f64::max);
                (shard, score)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Split `shard` at the median of its current keys and publish the new
    /// routing table (see module docs). Returns the new table version, or
    /// `None` when the shard does not exist or cannot split.
    pub fn split_shard(&self, shard: usize) -> Option<u64> {
        let _g = self.update_lock.lock().unwrap_or_else(|p| p.into_inner());
        let state = self.state();
        let group = state.groups.get(shard)?;
        // Drain buffered updates so the snapshot is complete.
        for svc in group.iter() {
            // fc-lint: allow(lock-discipline) -- intentional: update_lock serializes splits against update_batch; the drain must complete with writers held off
            svc.force_publish();
        }
        let gen = group.replica(0)?.snapshot();
        let tree = gen.st.tree();
        let mut keys: Vec<K> = tree
            .ids()
            .flat_map(|id| tree.catalog(id).iter().copied())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let median = *keys.get(keys.len() / 2)?;
        let table = state.table.split(shard, median)?;
        // Build the two half-groups from the authoritative snapshot; the
        // other shards' groups are shared (Arc) with the old state.
        // fc-lint: allow(lock-discipline) -- intentional: the half-groups build from the drained snapshot inside the split critical section
        let left = Arc::new(build_group(tree, &table, shard, self.mode(), &self.cfg));
        // fc-lint: allow(lock-discipline) -- intentional: the half-groups build from the drained snapshot inside the split critical section
        let right = Arc::new(build_group(tree, &table, shard + 1, self.mode(), &self.cfg));
        let mut groups = Vec::with_capacity(state.groups.len() + 1);
        for (i, g) in state.groups.iter().enumerate() {
            if i == shard {
                groups.push(Arc::clone(&left));
                groups.push(Arc::clone(&right));
            } else {
                groups.push(Arc::clone(g));
            }
        }
        let version = table.version();
        // fc-lint: allow(lock-discipline) -- intentional: the new table publishes before update_lock releases, or a racing update_batch could route on the stale table
        self.publish_state(Arc::new(ClusterState { table, groups }));
        self.stats.splits.fetch_add(1, SeqCst);
        Some(version)
    }

    /// Split the hottest shard if its heat score exceeds `threshold`.
    /// Returns the new table version if a split was published.
    pub fn rebalance_if_hot(&self, heat: HeatConfig, threshold: f64) -> Option<u64> {
        let (shard, score) = self.hottest_shard(heat)?;
        if score <= threshold {
            return None;
        }
        self.split_shard(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardConfig;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::NodeId;
    use fc_coop::ParamMode;
    use fc_serve::ServeConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn cfg() -> ShardConfig {
        ShardConfig {
            shards: 3,
            replicas: 2,
            serve: ServeConfig {
                workers: 1,
                audit_interval: Duration::from_secs(3600),
                default_deadline: Duration::from_secs(5),
                processors: 1 << 8,
                ..ServeConfig::default()
            },
            batch_threads: 2,
            default_deadline: Duration::from_secs(10),
            ..ShardConfig::default()
        }
    }

    #[test]
    fn split_bumps_the_version_and_keeps_answers_correct() {
        let mut rng = SmallRng::seed_from_u64(61);
        let tree = gen::balanced_binary(5, 1200, SizeDist::Uniform, &mut rng);
        let cluster = crate::ShardCluster::start(&tree, ParamMode::Auto, cfg());
        let v0 = cluster.table_version();
        let shards0 = cluster.shards();
        let leaves = cluster.leaves();

        let full_oracle = |leaf: NodeId, y: i64| -> Vec<Option<i64>> {
            tree.path_from_root(leaf)
                .iter()
                .map(|&n| {
                    let cat = tree.catalog(n);
                    cat.get(cat.partition_point(|k| *k < y)).copied()
                })
                .collect()
        };

        let v1 = cluster.split_shard(1).expect("split must succeed");
        assert_eq!(v1, v0 + 1);
        assert_eq!(cluster.shards(), shards0 + 1);
        assert_eq!(cluster.stats().splits, 1);

        for i in 0..40 {
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            let y = rng.gen_range(-100..25_000i64);
            let ok = cluster
                .query_blocking(leaf, y, None)
                .unwrap_or_else(|e| panic!("post-split query {i}: {e}"));
            assert_eq!(ok.answers, full_oracle(leaf, y), "query {i} y={y}");
            assert_eq!(ok.table_version, v1);
        }
        cluster.shutdown();
    }

    #[test]
    fn heat_scoring_prefers_the_shedding_shard() {
        let mut rng = SmallRng::seed_from_u64(63);
        let tree = gen::balanced_binary(4, 400, SizeDist::Uniform, &mut rng);
        // Tiny queues + zero workers on purpose: submissions pile up/shed.
        let mut c = cfg();
        c.serve.workers = 0;
        c.serve.queue_cap = 2;
        let cluster = crate::ShardCluster::start(&tree, ParamMode::Auto, c);
        let idle = cluster.hottest_shard(HeatConfig::default());
        assert!(matches!(idle, Some((_, s)) if s == 0.0), "{idle:?}");
        // Hammer submissions at shard 0's key range through replica 0.
        let state = cluster.state();
        let svc = state.groups[0].replica(0).unwrap();
        let leaf = cluster.leaves()[0];
        for i in 0..20 {
            let _ = svc.submit(leaf, i, None);
        }
        let (hot, score) = cluster.hottest_shard(HeatConfig::default()).unwrap();
        assert_eq!(hot, 0);
        assert!(score > 0.5, "expected heat from sheds+queue, got {score}");
        // The threshold gate works both ways.
        assert!(cluster
            .rebalance_if_hot(HeatConfig::default(), 1e9)
            .is_none());
        drop(state);
        cluster.shutdown();
    }

    #[test]
    fn unsplittable_shards_return_none() {
        let mut rng = SmallRng::seed_from_u64(65);
        let tree = gen::balanced_binary(3, 60, SizeDist::Uniform, &mut rng);
        let cluster = crate::ShardCluster::start(&tree, ParamMode::Auto, cfg());
        assert!(cluster.split_shard(99).is_none(), "no such shard");
        cluster.shutdown();
    }
}
