//! The scatter/gather router: the cluster handle, single-query gather with
//! replica failover, and the batched descent fast path.
//!
//! ## Query anatomy
//!
//! A successor query `(leaf, y)` routes to its **owner shard**
//! `table.shard_of(y)`. The owner leg runs on one healthy replica of that
//! shard (failing over to peers on any typed error). Path nodes whose leg
//! answer is `None` — the owner shard holds no key `≥ y` there — *escalate*
//! to the next shard in ascending order; by the contiguity of the routing
//! table (see [`crate::partition`]) the first `Some` found this way is the
//! global successor, and a `None` that survives the last shard is the true
//! global `+∞`. The end-to-end deadline is split across the legs a query
//! may still need (`remaining / legs_left`), so one slow shard cannot
//! silently consume the whole budget of its successors.
//!
//! ## The batched fast path
//!
//! [`ShardCluster::query_batch`] groups a batch by owner shard and runs
//! each shard's sub-batch through `fc_coop::explicit_batch_verified` —
//! the workspace's batched cooperative descent — directly against a pinned
//! replica generation, spreading chunks over OS threads. Queries whose
//! fast-path search reports a structural error fall back, individually, to
//! the owning service's full retry/degraded machinery, and escalation
//! rounds re-batch the still-incomplete queries per next shard. The
//! integrity contract is unchanged: every per-leg answer is verified
//! against the native catalogs of the generation that served it.
//!
//! This file is in the workspace's panic-free/index-free lint scope
//! (`cargo xtask lint`): no `unwrap`/`expect`/`panic!` and no direct
//! indexing up to the test module.

use crate::error::ShardError;
use crate::partition::RoutingTable;
use crate::replica::ReplicaSet;
use fc_catalog::{CatalogKey, CatalogTree, NodeId};
use fc_coop::dynamic::UpdateOp;
use fc_coop::{explicit_batch_verified, CancelToken, ParamMode};
use fc_resilience::{shard_seed, FaultPlan, FaultSpec};
use fc_retrieval::{merge_shard_reports, MergedReport, RangeList, ReportRange};
use fc_serve::{BreakerState, EpochPtr};
use fc_serve::{Generation, QueryOk, ReplicaHealth, ServeConfig, ServeError, Service};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for [`ShardCluster::start`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards to cut the key universe into.
    pub shards: usize,
    /// Replicas per shard (≥ 1; 2 gives single-fault failover).
    pub replicas: usize,
    /// Per-replica service configuration (each replica's seed is derived
    /// from `serve.seed` via [`fc_resilience::shard_seed`]).
    pub serve: ServeConfig,
    /// OS threads the batched fast path spreads chunks over.
    pub batch_threads: usize,
    /// Maximum scatter legs (owner + escalations) per query.
    pub escalation_legs: usize,
    /// End-to-end deadline when a query does not carry its own.
    pub default_deadline: Duration,
    /// Concurrent reader slots on the cluster's routing-state pointer.
    pub reader_slots: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            replicas: 2,
            serve: ServeConfig::default(),
            batch_threads: 4,
            escalation_legs: 8,
            default_deadline: Duration::from_secs(1),
            reader_slots: 16,
        }
    }
}

/// One immutable routing epoch: a versioned table plus the replica groups
/// it indexes. Rebalancing publishes a *new* `ClusterState` through the
/// cluster's [`EpochPtr`]; in-flight queries keep the state they pinned
/// (and therefore the `Arc`s of the groups they are querying) alive.
pub struct ClusterState<K: CatalogKey> {
    /// The versioned key-range → shard map.
    pub table: RoutingTable<K>,
    /// One replica group per shard; `groups.len() == table.shards()`.
    pub groups: Vec<Arc<ReplicaSet<K>>>,
}

/// One completed scatter leg of a query.
pub struct ShardLeg<K: CatalogKey> {
    /// The shard this leg asked.
    pub shard: usize,
    /// The replica index (within the shard) that answered.
    pub replica: usize,
    /// The exact generation the answer was computed (and verified) on.
    pub gen: Arc<Generation<K>>,
    /// The root-to-leaf path on that generation.
    pub path: Vec<NodeId>,
    /// Per-path-node successors *within this shard's key range*.
    pub answers: Vec<Option<K>>,
    /// Whether the leg was served by the degraded per-node binary search.
    pub degraded: bool,
    /// Cooperative-search attempts the serving replica consumed.
    pub attempts: u32,
    /// Replicas that failed before this one answered.
    pub failovers: u32,
}

impl<K: CatalogKey> std::fmt::Debug for ShardLeg<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardLeg")
            .field("shard", &self.shard)
            .field("replica", &self.replica)
            .field("gen", &self.gen.id)
            .field("degraded", &self.degraded)
            .field("attempts", &self.attempts)
            .field("failovers", &self.failovers)
            .finish_non_exhaustive()
    }
}

/// A successful cluster query: the merged per-path-node answers plus every
/// leg that contributed, so callers (and the chaos tests) can check each
/// leg against the sequential oracle *on the generation that served it*.
#[derive(Debug)]
pub struct ShardedOk<K: CatalogKey> {
    /// Merged answers: per path node, the smallest key `≥ y` across all
    /// shards (`None` = global `+∞`).
    pub answers: Vec<Option<K>>,
    /// The root-to-leaf path (identical shape on every shard).
    pub path: Vec<NodeId>,
    /// The legs, in ascending shard order starting at the owner.
    pub legs: Vec<ShardLeg<K>>,
    /// Version of the routing table the query was routed with.
    pub table_version: u64,
}

/// Monotone cluster counters (see [`ShardStats`] for the snapshot).
#[derive(Default)]
pub(crate) struct Stats {
    pub(crate) queries: AtomicU64,
    pub(crate) batch_queries: AtomicU64,
    pub(crate) legs: AtomicU64,
    pub(crate) escalations: AtomicU64,
    pub(crate) failovers: AtomicU64,
    pub(crate) probes: AtomicU64,
    pub(crate) fallbacks: AtomicU64,
    pub(crate) budget_exhausted: AtomicU64,
    pub(crate) shard_unavailable: AtomicU64,
    pub(crate) splits: AtomicU64,
}

/// A point-in-time snapshot of the cluster counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Single queries routed.
    pub queries: u64,
    /// Queries routed through the batched fast path.
    pub batch_queries: u64,
    /// Scatter legs executed (owner + escalation, all paths).
    pub legs: u64,
    /// Escalation legs beyond the owner shard.
    pub escalations: u64,
    /// Replica failovers (a replica erred and a peer was tried).
    pub failovers: u64,
    /// Shadow probes routed to recovering (half-open) replicas.
    pub probes: u64,
    /// Batched fast-path queries that fell back to the single-query path.
    pub fallbacks: u64,
    /// Queries abandoned because the deadline budget ran out mid-scatter.
    pub budget_exhausted: u64,
    /// Queries that found some shard's whole replica set unavailable.
    pub shard_unavailable: u64,
    /// Shard splits published by the rebalancer.
    pub splits: u64,
    /// Current routing-table version.
    pub table_version: u64,
}

/// Aggregated write-path counters, summed over one representative replica
/// (replica 0) per shard — every replica of a shard applies the same ops,
/// so one representative reflects the shard. All zeros outside `fc-dyn`
/// incremental mode except `rebuilds`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterWriteStats {
    /// Updates applied on the incremental fast path.
    pub incremental_applies: u64,
    /// Clone-and-rebuild fallbacks (density violation or corruption).
    pub fallback_rebuilds: u64,
    /// All rebuilds (threshold, forced, and fallback).
    pub rebuilds: u64,
    /// Cumulative per-key-touched cost of the incremental applies.
    pub keys_touched: u64,
    /// Live native entries across the shard cascades (gauge).
    pub live_entries: u64,
    /// Tombstoned slots awaiting compaction (gauge).
    pub tombstones: u64,
}

impl ClusterWriteStats {
    /// Fraction of cascade slots that are tombstones, over the whole
    /// cluster (0 when empty or outside incremental mode).
    pub fn tombstone_ratio(&self) -> f64 {
        let total = self.live_entries + self.tombstones;
        if total == 0 {
            0.0
        } else {
            self.tombstones as f64 / total as f64
        }
    }
}

/// A sharded, replicated cooperative-search cluster (see module docs and
/// `DESIGN.md` §11). All methods are callable concurrently from any
/// thread.
pub struct ShardCluster<K: CatalogKey> {
    pub(crate) cfg: ShardConfig,
    pub(crate) epoch: EpochPtr<ClusterState<K>>,
    slot_pool: Mutex<Vec<usize>>,
    pub(crate) update_lock: Mutex<()>,
    pub(crate) stats: Stats,
    shutdown: AtomicBool,
    mode: ParamMode,
}

/// Build the replica group for one shard: every replica preprocesses its
/// own copy of the tree with catalogs filtered to the shard's key range
/// (the tree *shape* — parents, node ids, paths — is identical across
/// shards, so a leaf names the same path everywhere).
pub(crate) fn build_group<K: CatalogKey>(
    tree: &CatalogTree<K>,
    table: &RoutingTable<K>,
    shard: usize,
    mode: ParamMode,
    cfg: &ShardConfig,
) -> ReplicaSet<K> {
    let (lo, hi) = table.range_of(shard);
    let parents: Vec<Option<u32>> = tree.ids().map(|id| tree.parent(id).map(|p| p.0)).collect();
    let catalogs: Vec<Vec<K>> = tree
        .ids()
        .map(|id| {
            tree.catalog(id)
                .iter()
                .copied()
                .filter(|k| lo.is_none_or(|l| *l <= *k) && hi.is_none_or(|h| *k < *h))
                .collect()
        })
        .collect();
    let sub = CatalogTree::from_parents(parents, catalogs);
    build_group_from_tree(&sub, shard, mode, cfg)
}

/// Build the replica group for one shard from an *already filtered*
/// per-shard tree — the cold-start path: a recovered shard snapshot is
/// the filtered tree itself, so no refiltering against the routing table
/// is needed (or possible: the full tree no longer exists on disk).
pub(crate) fn build_group_from_tree<K: CatalogKey>(
    sub: &CatalogTree<K>,
    shard: usize,
    mode: ParamMode,
    cfg: &ShardConfig,
) -> ReplicaSet<K> {
    let replicas = (0..cfg.replicas.max(1))
        .map(|r| {
            let mut scfg = cfg.serve.clone();
            scfg.seed = shard_seed(cfg.serve.seed, shard, r);
            Service::start(sub.clone(), mode, scfg)
        })
        .collect();
    ReplicaSet::new(replicas)
}

impl<K: CatalogKey> ShardCluster<K> {
    /// Partition `tree`'s key universe into `cfg.shards` quantile ranges
    /// and start `cfg.replicas` services per shard.
    pub fn start(tree: &CatalogTree<K>, mode: ParamMode, cfg: ShardConfig) -> Self {
        let mut keys: Vec<K> = tree
            .ids()
            .flat_map(|id| tree.catalog(id).iter().copied())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let s = cfg.shards.max(1);
        let mut cuts: Vec<K> = Vec::with_capacity(s.saturating_sub(1));
        for i in 1..s {
            let pos = i.saturating_mul(keys.len()) / s;
            if let Some(&k) = keys.get(pos) {
                if cuts.last().is_none_or(|&c| c < k) {
                    cuts.push(k);
                }
            }
        }
        let table = RoutingTable::from_cuts(cuts).unwrap_or_else(RoutingTable::single);
        let groups = (0..table.shards())
            .map(|shard| Arc::new(build_group(tree, &table, shard, mode, &cfg)))
            .collect();
        let state = Arc::new(ClusterState { table, groups });
        let slots = cfg.reader_slots.max(2);
        ShardCluster {
            epoch: EpochPtr::new(state, slots),
            slot_pool: Mutex::new((0..slots).collect()),
            update_lock: Mutex::new(()),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            mode,
            cfg,
        }
    }

    /// Start a cluster from a *restored* routing table and one
    /// already-filtered tree per shard — the cold-start path
    /// (`fc_store` recovery hands back exactly these). Returns `None`
    /// when the tree count does not match the table's shard count, which
    /// a caller must treat as a corrupt manifest, not a servable state.
    pub fn start_with_table(
        table: RoutingTable<K>,
        shard_trees: &[CatalogTree<K>],
        mode: ParamMode,
        cfg: ShardConfig,
    ) -> Option<Self> {
        if shard_trees.len() != table.shards() {
            return None;
        }
        let groups = shard_trees
            .iter()
            .enumerate()
            .map(|(shard, sub)| Arc::new(build_group_from_tree(sub, shard, mode, &cfg)))
            .collect();
        let state = Arc::new(ClusterState { table, groups });
        let slots = cfg.reader_slots.max(2);
        Some(ShardCluster {
            epoch: EpochPtr::new(state, slots),
            slot_pool: Mutex::new((0..slots).collect()),
            update_lock: Mutex::new(()),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            mode,
            cfg,
        })
    }

    /// Pin and return the current routing state (table + groups). The
    /// returned `Arc` stays valid across concurrent rebalances.
    pub fn state(&self) -> Arc<ClusterState<K>> {
        let slot = loop {
            let popped = {
                self.slot_pool
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .pop()
            };
            if let Some(s) = popped {
                break s;
            }
            std::thread::yield_now();
        };
        let st = self.epoch.load(slot);
        self.slot_pool
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(slot);
        st
    }

    /// Publish a new routing state (rebalancer-internal).
    pub(crate) fn publish_state(&self, state: Arc<ClusterState<K>>) {
        self.epoch.swap(state);
        self.epoch.try_reclaim();
    }

    /// The parameter mode replicas are built with (rebalancer-internal).
    pub(crate) fn mode(&self) -> ParamMode {
        self.mode
    }

    /// Current routing-table version.
    pub fn table_version(&self) -> u64 {
        self.state().table.version()
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.state().table.shards()
    }

    /// The leaves of the (shared) tree shape, from any live replica.
    pub fn leaves(&self) -> Vec<NodeId> {
        let state = self.state();
        let snap = state
            .groups
            .iter()
            .flat_map(|g| g.iter())
            .map(|svc| svc.snapshot())
            .next();
        match snap {
            Some(gen) => gen.st.tree().leaves(),
            None => Vec::new(),
        }
    }

    /// Answer one successor query: owner-shard leg, replica failover, and
    /// ascending escalation for path nodes the owner answered `None` on,
    /// within an end-to-end deadline (`cfg.default_deadline` when absent).
    pub fn query_blocking(
        &self,
        leaf: NodeId,
        y: K,
        deadline: Option<Duration>,
    ) -> Result<ShardedOk<K>, ShardError> {
        if self.shutdown.load(SeqCst) {
            return Err(ShardError::ShuttingDown);
        }
        self.stats.queries.fetch_add(1, SeqCst);
        let by = Instant::now() + deadline.unwrap_or(self.cfg.default_deadline);
        let state = self.state();
        let owner = state.table.shard_of(&y);
        self.gather(&state, leaf, y, owner, by)
    }

    /// The sequential gather loop shared by the single-query path and the
    /// batched fast path's fallback.
    fn gather(
        &self,
        state: &ClusterState<K>,
        leaf: NodeId,
        y: K,
        owner: usize,
        by: Instant,
    ) -> Result<ShardedOk<K>, ShardError> {
        let shards = state.table.shards();
        let max_legs = self.cfg.escalation_legs.max(1);
        let mut merged: Vec<Option<K>> = Vec::new();
        let mut path: Vec<NodeId> = Vec::new();
        let mut legs: Vec<ShardLeg<K>> = Vec::new();
        let mut shard = owner;
        loop {
            let legs_done = legs.len();
            if shard >= shards {
                break; // escalated past the last shard: merged Nones are the true +∞
            }
            if legs_done > 0 && merged.iter().all(|a| a.is_some()) {
                break; // every path node answered
            }
            if legs_done >= max_legs {
                // More shards might hold the successor but the leg budget
                // is spent: a typed error, never a possibly-wrong None.
                self.stats.budget_exhausted.fetch_add(1, SeqCst);
                return Err(ShardError::BudgetExhausted { shard, legs_done });
            }
            let remaining = by.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.stats.budget_exhausted.fetch_add(1, SeqCst);
                return Err(ShardError::BudgetExhausted { shard, legs_done });
            }
            let legs_left = (max_legs - legs_done).min(shards - shard).max(1);
            let slice = remaining / legs_left as u32;
            let Some(group) = state.groups.get(shard) else {
                break;
            };
            let leg = self.ask_shard(group, shard, leaf, y, slice)?;
            if legs_done == 0 {
                merged = leg.answers.clone();
                path = leg.path.clone();
            } else {
                self.stats.escalations.fetch_add(1, SeqCst);
                for (slot, ans) in merged.iter_mut().zip(leg.answers.iter()) {
                    if slot.is_none() {
                        *slot = *ans;
                    }
                }
            }
            legs.push(leg);
            shard += 1;
        }
        Ok(ShardedOk {
            answers: merged,
            path,
            legs,
            table_version: state.table.version(),
        })
    }

    /// One leg against one shard, with replica failover: try the
    /// healthiest replica; on a typed error, wake its auditor and try
    /// every peer before declaring the shard unavailable.
    ///
    /// Recovering (half-open) peers that the healthy pick routed *around*
    /// get a fire-and-forget shadow copy of the query: half-open breakers
    /// only close after consecutive successful probe queries, and a router
    /// that starves a recovering replica of traffic would pin it half-open
    /// forever.
    fn ask_shard(
        &self,
        group: &ReplicaSet<K>,
        shard: usize,
        leaf: NodeId,
        y: K,
        slice: Duration,
    ) -> Result<ShardLeg<K>, ShardError> {
        self.stats.legs.fetch_add(1, SeqCst);
        for idx in 0..group.len() {
            if let Some(peer) = group.replica(idx) {
                if peer.quarantine_state() == BreakerState::HalfOpen {
                    // Shadow probe: result discarded, shedding is fine.
                    drop(peer.submit(leaf, y, Some(slice)));
                    self.stats.probes.fetch_add(1, SeqCst);
                }
            }
        }
        let Some((first_idx, first)) = group.pick_healthy() else {
            self.stats.shard_unavailable.fetch_add(1, SeqCst);
            return Err(ShardError::ShardUnavailable {
                shard,
                tried: 0,
                last: ServeError::ShuttingDown,
            });
        };
        let mut last: ServeError;
        match first.query_blocking(leaf, y, Some(slice)) {
            Ok(ok) => return Ok(mk_leg(shard, first_idx, ok, 0)),
            Err(e) => {
                // The replica failed the query: schedule a background
                // audit/repair on it and fail over to its peers.
                first.trigger_audit();
                last = e;
            }
        }
        let mut tried = 1u32;
        for idx in 0..group.len() {
            if idx == first_idx {
                continue;
            }
            let Some(peer) = group.replica(idx) else {
                continue;
            };
            self.stats.failovers.fetch_add(1, SeqCst);
            tried += 1;
            match peer.query_blocking(leaf, y, Some(slice)) {
                Ok(ok) => return Ok(mk_leg(shard, idx, ok, tried - 1)),
                Err(e) => {
                    peer.trigger_audit();
                    last = e;
                }
            }
        }
        self.stats.shard_unavailable.fetch_add(1, SeqCst);
        Err(ShardError::ShardUnavailable {
            shard,
            tried: tried as usize,
            last,
        })
    }

    /// Answer a batch of successor queries through the batched cooperative
    /// descent (see module docs). Returns one result per query, in input
    /// order; per-query failures do not fail the batch.
    pub fn query_batch(
        &self,
        queries: &[(NodeId, K)],
        deadline: Option<Duration>,
    ) -> Vec<Result<ShardedOk<K>, ShardError>> {
        let n = queries.len();
        self.stats.batch_queries.fetch_add(n as u64, SeqCst);
        if self.shutdown.load(SeqCst) {
            return (0..n).map(|_| Err(ShardError::ShuttingDown)).collect();
        }
        let by = Instant::now() + deadline.unwrap_or(self.cfg.default_deadline);
        let state = self.state();
        let shards = state.table.shards();
        let max_legs = self.cfg.escalation_legs.max(1);

        let mut merged: Vec<Option<Vec<Option<K>>>> = (0..n).map(|_| None).collect();
        let mut legs_acc: Vec<Vec<ShardLeg<K>>> = (0..n).map(|_| Vec::new()).collect();
        let mut errs: Vec<Option<ShardError>> = (0..n).map(|_| None).collect();
        // Queries still needing a leg, as (query index, target shard).
        let mut active: Vec<(usize, usize)> = queries
            .iter()
            .enumerate()
            .map(|(i, (_, y))| (i, state.table.shard_of(y)))
            .collect();

        let mut round = 0usize;
        while !active.is_empty() && round < max_legs {
            let remaining = by.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                for &(qi, shard) in &active {
                    self.stats.budget_exhausted.fetch_add(1, SeqCst);
                    if let Some(slot) = errs.get_mut(qi) {
                        *slot = Some(ShardError::BudgetExhausted {
                            shard,
                            legs_done: legs_acc.get(qi).map_or(0, |l| l.len()),
                        });
                    }
                }
                break;
            }
            let slice = remaining / (max_legs - round).max(1) as u32;
            let results = self.run_round(&state, queries, &active, slice);
            let mut next_active: Vec<(usize, usize)> = Vec::new();
            for (qi, res) in results {
                match res {
                    Err(e) => {
                        if let Some(slot) = errs.get_mut(qi) {
                            *slot = Some(e);
                        }
                    }
                    Ok(leg) => {
                        let done_shard = leg.shard;
                        let complete = {
                            let Some(m) = merged.get_mut(qi) else {
                                continue;
                            };
                            match m {
                                None => *m = Some(leg.answers.clone()),
                                Some(slots) => {
                                    self.stats.escalations.fetch_add(1, SeqCst);
                                    for (slot, ans) in slots.iter_mut().zip(leg.answers.iter()) {
                                        if slot.is_none() {
                                            *slot = *ans;
                                        }
                                    }
                                }
                            }
                            m.as_ref().is_none_or(|s| s.iter().all(|a| a.is_some()))
                        };
                        if let Some(acc) = legs_acc.get_mut(qi) {
                            acc.push(leg);
                        }
                        if !complete && done_shard + 1 < shards {
                            next_active.push((qi, done_shard + 1));
                        }
                    }
                }
            }
            active = next_active;
            round += 1;
        }
        // Queries still active after the leg budget: typed error, never a
        // possibly-wrong None (an unvisited shard could hold the answer).
        for &(qi, shard) in &active {
            self.stats.budget_exhausted.fetch_add(1, SeqCst);
            if let Some(slot) = errs.get_mut(qi) {
                *slot = Some(ShardError::BudgetExhausted {
                    shard,
                    legs_done: legs_acc.get(qi).map_or(0, |l| l.len()),
                });
            }
        }

        let version = state.table.version();
        let mut out: Vec<Result<ShardedOk<K>, ShardError>> = Vec::with_capacity(n);
        let zipped = errs.into_iter().zip(merged).zip(legs_acc);
        for ((err, m), legs) in zipped {
            if let Some(e) = err {
                out.push(Err(e));
                continue;
            }
            match m {
                Some(answers) => {
                    let path = legs.first().map(|l| l.path.clone()).unwrap_or_default();
                    out.push(Ok(ShardedOk {
                        answers,
                        path,
                        legs,
                        table_version: version,
                    }));
                }
                None => out.push(Err(ShardError::ShuttingDown)),
            }
        }
        out
    }

    /// Run one scatter round: group the active queries by target shard,
    /// chunk each group, and execute the chunks on `batch_threads` OS
    /// threads. Each chunk pins one replica generation and runs the
    /// verified batched descent on it; structural failures fall back to
    /// the single-query path (retries, degraded reads, failover).
    fn run_round(
        &self,
        state: &ClusterState<K>,
        queries: &[(NodeId, K)],
        active: &[(usize, usize)],
        slice: Duration,
    ) -> Vec<(usize, Result<ShardLeg<K>, ShardError>)> {
        let shards = state.table.shards();
        let mut by_shard: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        for &(qi, shard) in active {
            if let Some(b) = by_shard.get_mut(shard) {
                b.push(qi);
            }
        }
        let threads = self.cfg.batch_threads.max(1);
        let chunk = (active.len() / threads).max(1);
        let work: Vec<(usize, Vec<usize>)> = by_shard
            .into_iter()
            .enumerate()
            .flat_map(|(shard, qis)| {
                qis.chunks(chunk)
                    .map(|c| (shard, c.to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<ShardLeg<K>, ShardError>)>();
        let deadline = Instant::now() + slice;
        std::thread::scope(|scope| {
            for _ in 0..threads.min(work.len()) {
                let tx = tx.clone();
                let work = &work;
                let next = &next;
                scope.spawn(move || loop {
                    let it = next.fetch_add(1, SeqCst);
                    let Some((shard, qis)) = work.get(it) else {
                        break;
                    };
                    self.run_chunk(state, queries, *shard, qis, slice, deadline, &tx);
                });
            }
        });
        drop(tx);
        rx.try_iter().collect()
    }

    /// Execute one (shard, chunk) work item (see [`ShardCluster::run_round`]).
    #[allow(clippy::too_many_arguments)]
    fn run_chunk(
        &self,
        state: &ClusterState<K>,
        queries: &[(NodeId, K)],
        shard: usize,
        qis: &[usize],
        slice: Duration,
        deadline: Instant,
        tx: &mpsc::Sender<(usize, Result<ShardLeg<K>, ShardError>)>,
    ) {
        let Some(group) = state.groups.get(shard) else {
            return;
        };
        let Some((ridx, svc)) = group.pick_healthy() else {
            for &qi in qis {
                self.stats.legs.fetch_add(1, SeqCst);
                self.stats.shard_unavailable.fetch_add(1, SeqCst);
                let _ = tx.send((
                    qi,
                    Err(ShardError::ShardUnavailable {
                        shard,
                        tried: 0,
                        last: ServeError::ShuttingDown,
                    }),
                ));
            }
            return;
        };
        let gen = svc.snapshot();
        let sub: Vec<(NodeId, K)> = qis
            .iter()
            .filter_map(|&qi| queries.get(qi).copied())
            .collect();
        let cancel = CancelToken::with_deadline(deadline);
        let p = self.cfg.serve.processors.max(1);
        let results = explicit_batch_verified(&gen.st, &sub, p, &cancel);
        for (&qi, res) in qis.iter().zip(results) {
            let Some(&(leaf, y)) = queries.get(qi) else {
                continue;
            };
            match res {
                Ok(answers) => {
                    self.stats.legs.fetch_add(1, SeqCst);
                    let _ = tx.send((
                        qi,
                        Ok(ShardLeg {
                            shard,
                            replica: ridx,
                            path: gen.st.tree().path_from_root(leaf),
                            gen: Arc::clone(&gen),
                            answers,
                            degraded: false,
                            attempts: 1,
                            failovers: 0,
                        }),
                    ));
                }
                Err(_structural) => {
                    // The fast path saw corruption (or cancellation): wake
                    // the auditor and reroute through the owning service's
                    // full machinery — retries, degraded reads, failover.
                    svc.trigger_audit();
                    self.stats.fallbacks.fetch_add(1, SeqCst);
                    let _ = tx.send((qi, self.ask_shard(group, shard, leaf, y, slice)));
                }
            }
        }
    }

    /// Route an update batch: each op goes to the shard owning its key and
    /// is applied to **every** replica of that shard. Serialized against
    /// rebalancing, so a split cannot strand buffered ops.
    pub fn update_batch(&self, ops: &[UpdateOp<K>]) {
        let _g = self.update_lock.lock().unwrap_or_else(|p| p.into_inner());
        let state = self.state();
        let mut grouped: Vec<Vec<UpdateOp<K>>> =
            (0..state.table.shards()).map(|_| Vec::new()).collect();
        for op in ops {
            let key = match op {
                UpdateOp::Insert(_, k) | UpdateOp::Remove(_, k) => k,
            };
            let s = state.table.shard_of(key);
            if let Some(g) = grouped.get_mut(s) {
                g.push(*op);
            }
        }
        for (group, ops) in state.groups.iter().zip(grouped) {
            if ops.is_empty() {
                continue;
            }
            for svc in group.iter() {
                // fc-lint: allow(lock-discipline) -- intentional: update_lock serializes updates against splits so ops cannot strand on a stale routing table
                svc.update_batch(&ops);
            }
        }
    }

    /// Scatter a range report over the shards overlapping `[lo, hi]` and
    /// merge the per-shard partial results into one globally ordered
    /// report (`fc_retrieval::merge_shard_reports`).
    pub fn range_report(&self, leaf: NodeId, lo: K, hi: K) -> Result<MergedReport, ShardError> {
        let state = self.state();
        let mut parts: Vec<(u32, RangeList)> = Vec::new();
        for shard in state.table.shards_overlapping(&lo, &hi) {
            let Some(group) = state.groups.get(shard) else {
                continue;
            };
            let Some((_, svc)) = group.pick_healthy() else {
                self.stats.shard_unavailable.fetch_add(1, SeqCst);
                return Err(ShardError::ShardUnavailable {
                    shard,
                    tried: 0,
                    last: ServeError::ShuttingDown,
                });
            };
            let gen = svc.snapshot();
            let tree = gen.st.tree();
            let ranges = tree.path_from_root(leaf).into_iter().map(|node| {
                let cat = tree.catalog(node);
                let start = cat.partition_point(|k| *k < lo);
                let end = cat.partition_point(|k| *k <= hi);
                ReportRange {
                    node_idx: node.0,
                    start: start as u32,
                    count: (end - start) as u32,
                }
            });
            parts.push((shard as u32, RangeList::from_ranges(ranges)));
        }
        Ok(merge_shard_reports(parts))
    }

    /// Chaos hook: inject a resolved fault plan into one replica (see
    /// `Service::inject`). Returns the plan, or `None` for a bad address.
    pub fn inject(
        &self,
        shard: usize,
        replica: usize,
        spec: &FaultSpec,
        seed: u64,
    ) -> Option<FaultPlan> {
        let state = self.state();
        let svc = state.groups.get(shard)?.replica(replica)?;
        Some(svc.inject(spec, seed))
    }

    /// Chaos hook: force-open one replica's quarantine breaker over its
    /// *entire* arena — a replica whose whole structure is distrusted.
    /// Returns `false` for a bad address.
    pub fn force_quarantine_replica(&self, shard: usize, replica: usize) -> bool {
        let state = self.state();
        let Some(svc) = state.groups.get(shard).and_then(|g| g.replica(replica)) else {
            return false;
        };
        let nodes: Vec<u32> = svc.snapshot().st.tree().ids().map(|id| id.0).collect();
        svc.force_quarantine(nodes);
        true
    }

    /// Wake every replica's background auditor.
    pub fn trigger_audit_all(&self) {
        let state = self.state();
        for group in &state.groups {
            for svc in group.iter() {
                svc.trigger_audit();
            }
        }
    }

    /// Run a synchronous audit cycle on every replica; returns how many
    /// replicas had corruption (and were repaired + republished).
    pub fn audit_blocking_all(&self) -> usize {
        let state = self.state();
        let mut dirty = 0usize;
        for group in &state.groups {
            for svc in group.iter() {
                if svc.audit_blocking() {
                    dirty += 1;
                }
            }
        }
        dirty
    }

    /// Health snapshots: one vector per shard, one entry per replica.
    pub fn health(&self) -> Vec<Vec<ReplicaHealth>> {
        let state = self.state();
        state.groups.iter().map(|g| g.health()).collect()
    }

    /// Aggregated write-path counters (see [`ClusterWriteStats`]): the
    /// per-shard replica-0 [`GenStats`](fc_coop::dynamic::GenStats),
    /// summed.
    pub fn write_stats(&self) -> ClusterWriteStats {
        let state = self.state();
        let mut out = ClusterWriteStats::default();
        for group in &state.groups {
            let Some(svc) = group.replica(0) else {
                continue;
            };
            let gs = svc.gen_stats();
            out.incremental_applies += gs.incremental_applies;
            out.fallback_rebuilds += gs.fallback_rebuilds;
            out.rebuilds += gs.rebuilds;
            out.keys_touched += gs.keys_touched;
            out.live_entries += gs.live_entries;
            out.tombstones += gs.tombstones;
        }
        out
    }

    /// Snapshot of the cluster counters.
    pub fn stats(&self) -> ShardStats {
        let s = &self.stats;
        ShardStats {
            queries: s.queries.load(SeqCst),
            batch_queries: s.batch_queries.load(SeqCst),
            legs: s.legs.load(SeqCst),
            escalations: s.escalations.load(SeqCst),
            failovers: s.failovers.load(SeqCst),
            probes: s.probes.load(SeqCst),
            fallbacks: s.fallbacks.load(SeqCst),
            budget_exhausted: s.budget_exhausted.load(SeqCst),
            shard_unavailable: s.shard_unavailable.load(SeqCst),
            splits: s.splits.load(SeqCst),
            table_version: self.table_version(),
        }
    }

    /// Stop admitting cluster queries and return the final counters. The
    /// replica services shut down (drain + join) when the cluster drops.
    pub fn shutdown(self) -> ShardStats {
        self.shutdown.store(true, SeqCst);
        self.stats()
    }
}

/// Wrap one service answer as a scatter leg.
fn mk_leg<K: CatalogKey>(
    shard: usize,
    replica: usize,
    ok: QueryOk<K>,
    failovers: u32,
) -> ShardLeg<K> {
    ShardLeg {
        shard,
        replica,
        gen: ok.gen,
        path: ok.path,
        answers: ok.answers,
        degraded: ok.degraded,
        attempts: ok.attempts,
        failovers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_coop::CoopStructure;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn oracle<K: CatalogKey>(st: &CoopStructure<K>, path: &[NodeId], y: K) -> Vec<Option<K>> {
        path.iter()
            .map(|&node| {
                let cat = st.tree().catalog(node);
                cat.get(cat.partition_point(|k| *k < y)).copied()
            })
            .collect()
    }

    fn small_cfg(shards: usize, replicas: usize) -> ShardConfig {
        ShardConfig {
            shards,
            replicas,
            serve: ServeConfig {
                workers: 1,
                audit_interval: Duration::from_secs(3600),
                default_deadline: Duration::from_secs(5),
                processors: 1 << 8,
                ..ServeConfig::default()
            },
            batch_threads: 2,
            default_deadline: Duration::from_secs(10),
            ..ShardConfig::default()
        }
    }

    fn full_tree(seed: u64) -> CatalogTree<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        gen::balanced_binary(5, 1200, SizeDist::Uniform, &mut rng)
    }

    /// The ground truth a cluster answer must match: the oracle on the
    /// *unsharded* tree (shard legs partition each catalog, so the merged
    /// first-Some equals the plain successor in the full catalog).
    fn full_oracle(tree: &CatalogTree<i64>, leaf: NodeId, y: i64) -> Vec<Option<i64>> {
        tree.path_from_root(leaf)
            .iter()
            .map(|&node| {
                let cat = tree.catalog(node);
                cat.get(cat.partition_point(|k| *k < y)).copied()
            })
            .collect()
    }

    #[test]
    fn sharded_answers_equal_the_unsharded_oracle() {
        let tree = full_tree(31);
        let cluster = ShardCluster::start(&tree, ParamMode::Auto, small_cfg(4, 1));
        assert_eq!(cluster.shards(), 4);
        let leaves = cluster.leaves();
        let mut rng = SmallRng::seed_from_u64(32);
        for i in 0..60 {
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            let y = rng.gen_range(-100..25_000i64);
            let ok = cluster
                .query_blocking(leaf, y, None)
                .unwrap_or_else(|e| panic!("query {i}: {e}"));
            assert_eq!(ok.answers, full_oracle(&tree, leaf, y), "query {i} y={y}");
            // Per-leg integrity: each leg matches the oracle on its own
            // serving generation.
            for leg in &ok.legs {
                assert_eq!(leg.answers, oracle(&leg.gen.st, &leg.path, y));
            }
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.queries, 60);
        assert!(stats.legs >= 60);
    }

    #[test]
    fn batch_answers_equal_the_unsharded_oracle() {
        let tree = full_tree(33);
        let cluster = ShardCluster::start(&tree, ParamMode::Auto, small_cfg(4, 2));
        let leaves = cluster.leaves();
        let mut rng = SmallRng::seed_from_u64(34);
        let queries: Vec<(NodeId, i64)> = (0..120)
            .map(|_| {
                (
                    leaves[rng.gen_range(0..leaves.len())],
                    rng.gen_range(-100..25_000i64),
                )
            })
            .collect();
        let results = cluster.query_batch(&queries, None);
        assert_eq!(results.len(), queries.len());
        for ((leaf, y), res) in queries.iter().zip(&results) {
            let ok = res.as_ref().unwrap_or_else(|e| panic!("y={y}: {e}"));
            assert_eq!(&ok.answers, &full_oracle(&tree, *leaf, *y), "y={y}");
            for leg in &ok.legs {
                assert_eq!(leg.answers, oracle(&leg.gen.st, &leg.path, *y));
            }
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.batch_queries, 120);
    }

    #[test]
    fn queries_above_every_key_escalate_to_global_infinity() {
        let tree = full_tree(35);
        let cluster = ShardCluster::start(&tree, ParamMode::Auto, small_cfg(4, 1));
        let leaf = cluster.leaves()[0];
        let ok = cluster.query_blocking(leaf, i64::MAX / 2, None).unwrap();
        assert!(ok.answers.iter().all(|a| a.is_none()), "{:?}", ok.answers);
        assert_eq!(ok.legs.len(), 1, "last shard answers +∞ with no escalation");
        let stats = cluster.shutdown();
        assert_eq!(stats.escalations, 0);
    }

    #[test]
    fn updates_route_to_owner_shard_and_all_replicas() {
        let tree = full_tree(37);
        let cluster = ShardCluster::start(&tree, ParamMode::Auto, small_cfg(3, 2));
        let leaves = cluster.leaves();
        let leaf = leaves[0];
        let state = cluster.state();
        let path = state.groups[0]
            .replica(0)
            .unwrap()
            .snapshot()
            .st
            .tree()
            .path_from_root(leaf);
        let node = path[1];
        // Insert one key per shard range, through the cluster.
        let probes: Vec<i64> = (0..cluster.shards())
            .map(|s| {
                let (lo, hi) = state.table.range_of(s);
                match (lo, hi) {
                    (Some(&l), Some(&h)) => (l + h) / 2,
                    (None, Some(&h)) => h - 1,
                    (Some(&l), None) => l + 1_000_000,
                    (None, None) => 0,
                }
            })
            .collect();
        let ops: Vec<UpdateOp<i64>> = probes.iter().map(|&k| UpdateOp::Insert(node, k)).collect();
        cluster.update_batch(&ops);
        // Force-publish everywhere, then every probe key must be findable.
        for g in &state.groups {
            for svc in g.iter() {
                svc.force_publish();
            }
        }
        for &k in &probes {
            let ok = cluster.query_blocking(leaf, k, None).unwrap();
            let hit = ok
                .path
                .iter()
                .zip(&ok.answers)
                .any(|(n, a)| *n == node && *a == Some(k));
            assert!(hit, "inserted key {k} not visible: {:?}", ok.answers);
        }
        cluster.shutdown();
    }

    #[test]
    fn single_replica_corruption_fails_over_not_errors() {
        let tree = full_tree(39);
        let cluster = ShardCluster::start(&tree, ParamMode::Auto, small_cfg(4, 2));
        assert!(cluster.force_quarantine_replica(1, 0));
        let leaves = cluster.leaves();
        let mut rng = SmallRng::seed_from_u64(40);
        for _ in 0..30 {
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            let y = rng.gen_range(-100..25_000i64);
            let ok = cluster.query_blocking(leaf, y, None).expect("failover");
            assert_eq!(ok.answers, full_oracle(&tree, leaf, y));
        }
        // The quarantined replica is never *picked first* while open, so
        // queries keep flowing; a degraded or failover answer is fine, a
        // wrong one is not (checked above).
        cluster.shutdown();
    }

    #[test]
    fn range_reports_merge_across_shards_in_key_order() {
        let tree = full_tree(41);
        let cluster = ShardCluster::start(&tree, ParamMode::Auto, small_cfg(4, 1));
        let leaf = cluster.leaves()[0];
        let (lo, hi) = (500i64, 18_000i64);
        let merged = cluster.range_report(leaf, lo, hi).expect("report");
        assert!(merged.parts >= 2, "range should span multiple shards");
        // Total must equal the unsharded count over the same path.
        let expect: u64 = tree
            .path_from_root(leaf)
            .iter()
            .map(|&n| {
                let cat = tree.catalog(n);
                (cat.partition_point(|k| *k <= hi) - cat.partition_point(|k| *k < lo)) as u64
            })
            .sum();
        assert_eq!(merged.total, expect);
        let shard_seq: Vec<u32> = merged.ranges.iter().map(|r| r.shard).collect();
        let mut sorted = shard_seq.clone();
        sorted.sort_unstable();
        assert_eq!(shard_seq, sorted, "ranges must be in ascending shard order");
        cluster.shutdown();
    }

    #[test]
    fn zero_deadline_is_a_typed_budget_error() {
        let tree = full_tree(43);
        let cluster = ShardCluster::start(&tree, ParamMode::Auto, small_cfg(2, 1));
        let leaf = cluster.leaves()[0];
        let res = cluster.query_blocking(leaf, 5, Some(Duration::ZERO));
        assert!(
            matches!(
                res,
                Err(ShardError::BudgetExhausted { .. })
                    | Err(ShardError::ShardUnavailable {
                        last: ServeError::Timeout { .. },
                        ..
                    })
            ),
            "{res:?}"
        );
        cluster.shutdown();
    }
}
