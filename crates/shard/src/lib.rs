//! # fc-shard — a sharded, replicated cooperative-search cluster
//!
//! `fc-serve` made one cooperative-search structure a service; this crate
//! makes *many* of them a cluster. The key universe is partitioned into
//! contiguous ranges by a versioned [`RoutingTable`]; each range is owned
//! by a shard, and each shard is a [`ReplicaSet`] of independent
//! `fc_serve::Service` instances (own workers, auditor, quarantine
//! breaker, generation chain). On top sit:
//!
//! * [`ShardCluster::query_blocking`] — owner-shard routing with replica
//!   failover and ascending *escalation* for path nodes whose owner-shard
//!   successor is `+∞`, under an end-to-end deadline split across legs;
//! * [`ShardCluster::query_batch`] — the scatter/gather fast path: the
//!   batch is grouped per owner shard and run through the workspace's
//!   batched cooperative descent (`fc_coop::explicit_batch_verified`)
//!   directly against pinned replica generations, on real OS threads;
//! * [`ShardCluster::range_report`] — scattered range reporting merged in
//!   global key order via `fc_retrieval::merge_shard_reports`;
//! * [`ShardCluster::split_shard`] / [`ShardCluster::rebalance_if_hot`] —
//!   hot-shard splitting that publishes a `version + 1` routing table
//!   through the same epoch hot-swap machinery generations use, without
//!   blocking queries;
//! * chaos hooks ([`ShardCluster::inject`],
//!   [`ShardCluster::force_quarantine_replica`]) driving `fc-resilience`
//!   fault plans per replica.
//!
//! The contract lifts verbatim from the single service: **every answer
//! equals the sequential oracle on the generation(s) that served it, or a
//! typed error ([`ShardError`]) — never a silently wrong answer.** The
//! cluster chaos test (`tests/shard_cluster.rs`) asserts this per leg
//! while corrupting replicas, force-quarantining a full replica, and
//! splitting a shard mid-storm.

#![warn(missing_docs)]

pub mod durable;
pub mod error;
pub mod partition;
pub mod rebalance;
pub mod replica;
pub mod router;

pub use durable::{ColdStartReport, DurableCluster};
pub use error::ShardError;
pub use fc_store::{StoreConfig, StoreError};
pub use partition::RoutingTable;
pub use rebalance::HeatConfig;
pub use replica::ReplicaSet;
pub use router::{
    ClusterState, ClusterWriteStats, ShardCluster, ShardConfig, ShardLeg, ShardStats, ShardedOk,
};
