//! Patch accounting: per-update cost reports, the bounded patch log, and
//! the cascade-wide counters the serving layer surfaces as write-path
//! health.

/// Tuning knobs for the incremental cascade.
///
/// The defaults mirror the static builder's sampling rate (`s = 4`) with
/// a 2:1 hysteresis band around it, so a freshly built [`DynCascade`]
/// (see [`crate::DynCascade::build`]) starts in the middle of its
/// comfort zone and neither splits nor merges on the first update.
#[derive(Debug, Clone, Copy)]
pub struct DynConfig {
    /// Sampling rate `s`: at build time every `s`-th augmented entry of a
    /// child is mirrored into its parent.
    pub sample: u32,
    /// Split a block (the live run between consecutive samples of one
    /// child) when it exceeds this many live entries. Default `2 * s`.
    pub block_hi: u32,
    /// Merge (tombstone a bounding sample) when a block shrinks below
    /// this many live entries. Default `max(1, s / 2)`.
    pub block_lo: u32,
    /// A node is compaction-due when `dead > max(min_dead, dead_frac *
    /// total)`.
    pub dead_frac: f64,
    /// Absolute tombstone allowance before density is even considered.
    pub min_dead: u32,
    /// Target gap between finger entries; a locate that walked more than
    /// `2 * finger_gap` slots densifies its gap.
    pub finger_gap: u32,
    /// Forward-walk budget for bridge descent before falling back to the
    /// child's finger index (counted, not an error).
    pub walk_budget: u32,
    /// How many recent [`PatchReport`]s the [`PatchLog`] retains.
    pub log_cap: usize,
}

impl Default for DynConfig {
    fn default() -> Self {
        DynConfig {
            sample: 4,
            block_hi: 8,
            block_lo: 2,
            dead_frac: 0.5,
            min_dead: 64,
            finger_gap: 32,
            walk_budget: 256,
            log_cap: 64,
        }
    }
}

/// The cost of one incremental update, in units of structure touched.
///
/// `nodes_touched + slots_walked` is the "per key touched" metric the
/// ROADMAP asks for: it is independent of the structure size except
/// through the node-to-root path length and the hysteresis constants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchReport {
    /// The operation changed nothing (duplicate insert, absent delete).
    pub noop: bool,
    /// Nodes whose lists were modified (1 + propagation height).
    pub nodes_touched: u32,
    /// Linked-list slots stepped over across all walks of this patch.
    pub slots_walked: u32,
    /// Samples promoted into parents (block splits).
    pub samples_added: u32,
    /// Samples tombstoned in parents (block merges + delete chains).
    pub samples_dropped: u32,
    /// Finger entries added to densify an over-long gap.
    pub fingers_added: u32,
}

impl PatchReport {
    /// The scalar per-key-touched cost of this patch.
    pub fn cost(&self) -> u32 {
        self.nodes_touched + self.slots_walked
    }
}

/// The cost of one path query through the incremental cascade.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryReport {
    /// Linked-list slots stepped over across all walks.
    pub slots_walked: u32,
    /// Bridges crossed (one per descended level on the fast path).
    pub bridge_hops: u32,
    /// Descents that exhausted the walk budget and re-entered through the
    /// child's finger index instead (correct, just slower).
    pub finger_fallbacks: u32,
}

/// A bounded ring of the most recent [`PatchReport`]s plus a lifetime
/// total, for operators asking "what did the last updates cost?".
#[derive(Debug, Clone, Default)]
pub struct PatchLog {
    buf: Vec<PatchReport>,
    cap: usize,
    cursor: usize,
    total: u64,
}

impl PatchLog {
    /// An empty log retaining at most `cap` reports.
    pub fn new(cap: usize) -> Self {
        PatchLog {
            buf: Vec::new(),
            cap: cap.max(1),
            cursor: 0,
            total: 0,
        }
    }

    /// Record one patch (overwrites the oldest once full).
    pub fn push(&mut self, rep: PatchReport) {
        if self.buf.len() < self.cap {
            self.buf.push(rep);
        } else if let Some(slot) = self.buf.get_mut(self.cursor) {
            *slot = rep;
        }
        self.cursor = (self.cursor + 1) % self.cap;
        self.total += 1;
    }

    /// The retained reports, oldest-overwritten ring order.
    pub fn recent(&self) -> &[PatchReport] {
        &self.buf
    }

    /// Lifetime patches recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Cascade-wide write-path counters (monotone except the live/dead
/// gauges), surfaced through `GenStats` and the net health report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynCounters {
    /// Structure-changing incremental applies (noops excluded).
    pub applies: u64,
    /// Updates that changed nothing.
    pub noops: u64,
    /// Cumulative per-key-touched cost over all applies.
    pub cost_total: u64,
    /// Live native entries across all nodes (gauge).
    pub live_native: u64,
    /// Tombstoned slots across all nodes (gauge).
    pub tombstones: u64,
    /// Samples promoted over the cascade lifetime.
    pub samples_added: u64,
    /// Samples tombstoned over the cascade lifetime.
    pub samples_dropped: u64,
}

impl DynCounters {
    /// Fraction of all slots that are tombstones (0 when empty).
    pub fn tombstone_ratio(&self) -> f64 {
        let total = self.live_native + self.tombstones;
        if total == 0 {
            0.0
        } else {
            self.tombstones as f64 / total as f64
        }
    }
}
