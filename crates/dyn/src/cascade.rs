//! The incremental cascade: per-node slot arenas with stable indices,
//! tombstone-aware ordered walks, child samples bridged by slot index,
//! and hysteresis-driven split/merge propagation along the node-to-root
//! path.
//!
//! Hot-path discipline: the query-side functions ([`DynCascade::
//! search_path_into`] and its helpers) and the apply-side entry points
//! are panic-free, direct-index-free (typed [`DynError`] on any
//! out-of-range access) and allocation-free apart from pushes into
//! caller-provided or pre-existing vectors. Every linked-list walk
//! carries a cycle guard — a corrupted `next`/`prev` chain produces
//! [`DynError::CorruptLink`], never a hang.

use crate::patch::{DynConfig, DynCounters, PatchLog, PatchReport, QueryReport};
use crate::DynError;
use fc_catalog::{CatalogKey, CatalogTree, NodeId};

/// Null slot/node index.
pub const NIL: u32 = u32::MAX;

/// Slot kind: a native catalog entry.
const NATIVE: u16 = 0;
/// Slot kind: the terminal `+∞` sentinel.
const SENTINEL: u16 = u16::MAX;
// Kinds `1 + c` are samples mirrored from child number `c`.

/// One arena slot. Slots are never moved or freed outside a full
/// rebuild; deletion tombstones them (`live = false`) and their key
/// stays behind as an order marker, so `down`/`up` bridges and finger
/// entries remain valid indices forever.
#[derive(Debug, Clone, Copy)]
struct Slot<K> {
    key: K,
    prev: u32,
    next: u32,
    /// `NATIVE`, `SENTINEL`, or `1 + child_index` for samples.
    kind: u16,
    live: bool,
    /// Sample slots: the child slot this mirrors. Else `NIL`.
    down: u32,
    /// The parent slot sampling this one, `NIL` when unsampled.
    up: u32,
}

/// One node's augmented list: arena + entry points + local counters.
#[derive(Debug, Clone)]
struct NodeList<K> {
    slots: Vec<Slot<K>>,
    head: u32,
    sentinel: u32,
    /// Live slots excluding the sentinel.
    live: u32,
    /// Live native (catalog) entries.
    live_native: u32,
    /// Tombstoned slots.
    dead: u32,
    /// Sparse sorted `(key, slot)` index; keys never go stale because
    /// slot keys never change.
    fingers: Vec<(K, u32)>,
    /// Already queued in `density_dirty`.
    dirty: bool,
}

// Hand-written so `K` needs no `Default` of its own.
impl<K> Default for NodeList<K> {
    fn default() -> Self {
        NodeList {
            slots: Vec::new(),
            head: 0,
            sentinel: 0,
            live: 0,
            live_native: 0,
            dead: 0,
            fingers: Vec::new(),
            dirty: false,
        }
    }
}

/// The incremental dynamic cascade over a catalog tree.
///
/// Built once from a [`CatalogTree`]; thereafter
/// [`apply_insert`](DynCascade::apply_insert) /
/// [`apply_remove`](DynCascade::apply_remove) patch it in place and
/// [`search_path_into`](DynCascade::search_path_into) answers path
/// queries that reflect every applied update immediately.
pub struct DynCascade<K: CatalogKey> {
    /// Parent arena index per node (`NIL` at the root).
    parent: Vec<u32>,
    /// Children (arena indices) per node, in tree order.
    children: Vec<Vec<u32>>,
    nodes: Vec<NodeList<K>>,
    cfg: DynConfig,
    counters: DynCounters,
    log: PatchLog,
    /// Reused propagation worklist for the delete path.
    scratch: Vec<(u32, u32)>,
    /// Nodes whose tombstone density crossed the bound.
    density_dirty: Vec<u32>,
}

impl<K: CatalogKey> DynCascade<K> {
    /// Build the cascade bottom-up from `tree` (children sampled into
    /// parents every `cfg.sample`-th augmented entry), with sentinels,
    /// bridges, back-references and finger indexes in place.
    pub fn build(tree: &CatalogTree<K>, cfg: DynConfig) -> Self {
        let n = tree.len();
        let parent: Vec<u32> = tree
            .ids()
            .map(|id| tree.parent(id).map_or(NIL, |p| p.0))
            .collect();
        let children: Vec<Vec<u32>> = tree
            .ids()
            .map(|id| tree.children(id).iter().map(|c| c.0).collect())
            .collect();
        let mut dc = DynCascade {
            parent,
            children,
            nodes: vec![NodeList::default(); n],
            cfg,
            counters: DynCounters::default(),
            log: PatchLog::new(cfg.log_cap),
            scratch: Vec::new(),
            density_dirty: Vec::new(),
        };
        // Children before parents: sampling reads the child's finished
        // list.
        let mut order: Vec<NodeId> = tree.ids().collect();
        order.sort_by_key(|&id| std::cmp::Reverse(tree.depth(id)));
        for id in order {
            dc.build_node(tree, id);
        }
        dc
    }

    fn build_node(&mut self, tree: &CatalogTree<K>, id: NodeId) {
        let v = id.idx();
        // Gather (key, kind, down-bridge) entries: native keys plus every
        // s-th live augmented entry of each child.
        let mut entries: Vec<(K, u16, u32)> =
            tree.catalog(id).iter().map(|&k| (k, NATIVE, NIL)).collect();
        let s = self.cfg.sample.max(2) as usize;
        for (ci, &c) in self.children[v].iter().enumerate() {
            let child = &self.nodes[c as usize];
            let mut cur = child.head;
            let mut rank = 0usize;
            while cur != NIL {
                let slot = &child.slots[cur as usize];
                if slot.kind == SENTINEL {
                    break;
                }
                rank += 1;
                if rank.is_multiple_of(s) {
                    entries.push((slot.key, 1 + ci as u16, cur));
                }
                cur = slot.next;
            }
        }
        entries.sort_by_key(|e| e.0);
        let mut slots: Vec<Slot<K>> = Vec::with_capacity(entries.len() + 1);
        for (i, &(key, kind, down)) in entries.iter().enumerate() {
            slots.push(Slot {
                key,
                prev: if i == 0 { NIL } else { (i - 1) as u32 },
                next: (i + 1) as u32,
                kind,
                live: true,
                down,
                up: NIL,
            });
        }
        // Terminal sentinel: always live, always last.
        let sent = slots.len() as u32;
        slots.push(Slot {
            key: K::SUPREMUM,
            prev: if sent == 0 { NIL } else { sent - 1 },
            next: NIL,
            kind: SENTINEL,
            live: true,
            down: NIL,
            up: NIL,
        });
        let gap = self.cfg.finger_gap.max(2) as usize;
        let fingers: Vec<(K, u32)> = slots
            .iter()
            .enumerate()
            .filter(|(i, _)| i % gap == 0)
            .map(|(i, s)| (s.key, i as u32))
            .collect();
        let live = entries.len() as u32;
        let live_native = tree.catalog(id).len() as u32;
        self.counters.live_native += live_native as u64;
        // Wire the `up` back-references on the sampled child slots.
        for (i, &(_, kind, down)) in entries.iter().enumerate() {
            if kind != NATIVE {
                let c = self.children[v][(kind - 1) as usize] as usize;
                self.nodes[c].slots[down as usize].up = i as u32;
            }
        }
        self.nodes[v] = NodeList {
            slots,
            head: 0,
            sentinel: sent,
            live,
            live_native,
            dead: 0,
            fingers,
            dirty: false,
        };
    }

    /// Tuning knobs in force.
    pub fn config(&self) -> DynConfig {
        self.cfg
    }

    /// Cascade-wide write-path counters.
    pub fn counters(&self) -> DynCounters {
        self.counters
    }

    /// The bounded per-patch cost log.
    pub fn patch_log(&self) -> &PatchLog {
        &self.log
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// First node whose tombstone density crossed the configured bound,
    /// if any — the owner should fall back to a full rebuild.
    pub fn needs_compaction(&self) -> Option<u32> {
        self.density_dirty.first().copied()
    }

    /// The node's live native catalog, reconstructed by **flat arena
    /// scan** (deliberately not a link walk, so it stays correct even
    /// when `next`/`prev` chains are corrupted) — the authoritative key
    /// set a fallback rebuild starts from.
    pub fn live_native_catalog(&self, node: NodeId) -> Vec<K> {
        let mut out: Vec<K> = self
            .nodes
            .get(node.idx())
            .map(|l| {
                l.slots
                    .iter()
                    .filter(|s| s.live && s.kind == NATIVE)
                    .map(|s| s.key)
                    .collect()
            })
            .unwrap_or_default();
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // Typed accessors (the hot paths never index directly).
    // ------------------------------------------------------------------

    fn list(&self, v: u32) -> Result<&NodeList<K>, DynError> {
        self.nodes
            .get(v as usize)
            .ok_or(DynError::NodeOutOfRange { node: v })
    }

    fn list_mut(&mut self, v: u32) -> Result<&mut NodeList<K>, DynError> {
        self.nodes
            .get_mut(v as usize)
            .ok_or(DynError::NodeOutOfRange { node: v })
    }

    fn slot_in(list: &NodeList<K>, v: u32, s: u32) -> Result<&Slot<K>, DynError> {
        list.slots
            .get(s as usize)
            .ok_or(DynError::SlotOutOfRange { node: v, slot: s })
    }

    fn slot_ref(&self, v: u32, s: u32) -> Result<&Slot<K>, DynError> {
        Self::slot_in(self.list(v)?, v, s)
    }

    fn slot_mut(&mut self, v: u32, s: u32) -> Result<&mut Slot<K>, DynError> {
        self.nodes
            .get_mut(v as usize)
            .ok_or(DynError::NodeOutOfRange { node: v })?
            .slots
            .get_mut(s as usize)
            .ok_or(DynError::SlotOutOfRange { node: v, slot: s })
    }

    fn parent_of(&self, v: u32) -> Result<u32, DynError> {
        self.parent
            .get(v as usize)
            .copied()
            .ok_or(DynError::NodeOutOfRange { node: v })
    }

    /// The sample kind (`1 + child index`) of edge `p -> c`.
    fn child_kind(&self, p: u32, c: u32) -> Result<u16, DynError> {
        let kids = self
            .children
            .get(p as usize)
            .ok_or(DynError::NodeOutOfRange { node: p })?;
        match kids.iter().position(|&x| x == c) {
            Some(i) if i < (SENTINEL - 1) as usize => Ok(1 + i as u16),
            _ => Err(DynError::PathMismatch {
                parent: p,
                child: c,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Query side.
    // ------------------------------------------------------------------

    /// First slot (live or dead, any kind) with `key >= y`; the sentinel
    /// if every real key is smaller. Finger entry + bounded forward walk.
    fn locate_ge(&self, v: u32, y: K, walked: &mut u32) -> Result<u32, DynError> {
        let list = self.list(v)?;
        let fi = list.fingers.partition_point(|&(k, _)| k < y);
        let mut cur = match fi.checked_sub(1).and_then(|i| list.fingers.get(i)) {
            Some(&(_, s)) => s,
            None => list.head,
        };
        let cap = list.slots.len() as u32 + 2;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let s = Self::slot_in(list, v, cur)?;
            if s.key >= y {
                return Ok(cur);
            }
            if s.next == NIL {
                // The sentinel's SUPREMUM key satisfies any `y`, so the
                // chain ended before the sentinel: torn links.
                return Err(DynError::CorruptLink { node: v });
            }
            cur = s.next;
            steps += 1;
            *walked += 1;
        }
    }

    /// The node's answer from an augmented position: the first live
    /// native slot at or after `start` (`None` once the sentinel is
    /// reached — the logical catalog has no entry `>= y`).
    fn native_successor_from(
        &self,
        v: u32,
        start: u32,
        walked: &mut u32,
    ) -> Result<Option<K>, DynError> {
        let list = self.list(v)?;
        let cap = list.slots.len() as u32 + 2;
        let mut cur = start;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let s = Self::slot_in(list, v, cur)?;
            if s.kind == SENTINEL {
                return Ok(None);
            }
            if s.live && s.kind == NATIVE {
                return Ok(Some(s.key));
            }
            if s.next == NIL {
                return Err(DynError::CorruptLink { node: v });
            }
            cur = s.next;
            steps += 1;
            *walked += 1;
        }
    }

    /// Descend from augmented position `start` in `v` to the augmented
    /// successor position of `y` in child `c`: forward to the nearest
    /// live sample of `c` (or the sentinel), across its bridge (validated
    /// — key mismatch is a typed [`DynError::CorruptBridge`]), then back
    /// up the child's list to the first slot `>= y`. Exhausting the walk
    /// budget falls back to the child's finger index, counted in `rep`.
    fn descend_from(
        &self,
        v: u32,
        start: u32,
        c: u32,
        kind: u16,
        y: K,
        rep: &mut QueryReport,
    ) -> Result<u32, DynError> {
        let list = self.list(v)?;
        let clist = self.list(c)?;
        let cap_v = list.slots.len() as u32 + 2;
        let mut cur = start;
        let mut steps = 0u32;
        let via: u32;
        loop {
            if steps > cap_v {
                return Err(DynError::CorruptLink { node: v });
            }
            if steps > self.cfg.walk_budget {
                rep.finger_fallbacks += 1;
                return self.locate_ge(c, y, &mut rep.slots_walked);
            }
            let s = Self::slot_in(list, v, cur)?;
            if s.kind == SENTINEL {
                via = clist.sentinel;
                break;
            }
            if s.live && s.kind == kind {
                let cs = Self::slot_in(clist, c, s.down)?;
                if cs.key != s.key {
                    return Err(DynError::CorruptBridge { node: v, slot: cur });
                }
                via = s.down;
                break;
            }
            if s.next == NIL {
                return Err(DynError::CorruptLink { node: v });
            }
            cur = s.next;
            steps += 1;
            rep.slots_walked += 1;
        }
        rep.bridge_hops += 1;
        // Back up to the first child slot with key >= y.
        let cap_c = clist.slots.len() as u32 + 2;
        let mut cur2 = via;
        let mut steps2 = 0u32;
        loop {
            if steps2 > cap_c {
                return Err(DynError::CorruptLink { node: c });
            }
            let s = Self::slot_in(clist, c, cur2)?;
            if s.prev == NIL {
                return Ok(cur2);
            }
            let ps = Self::slot_in(clist, c, s.prev)?;
            if ps.key >= y {
                cur2 = s.prev;
                steps2 += 1;
                rep.slots_walked += 1;
            } else {
                return Ok(cur2);
            }
        }
    }

    /// Path query: for every node on the root-to-leaf `path` (consecutive
    /// entries must be parent → child), the smallest live native entry
    /// `>= y` (`None` = `+∞`), written into `out`. Reflects every applied
    /// update immediately. Any structural suspicion aborts with a typed
    /// error; `out` is then incomplete but nothing wrong was reported.
    pub fn search_path_into(
        &self,
        path: &[NodeId],
        y: K,
        out: &mut Vec<Option<K>>,
        rep: &mut QueryReport,
    ) -> Result<(), DynError> {
        out.clear();
        let mut it = path.iter();
        let mut v = match it.next() {
            Some(n) => n.0,
            None => return Ok(()),
        };
        let mut s = self.locate_ge(v, y, &mut rep.slots_walked)?;
        for n in it {
            out.push(self.native_successor_from(v, s, &mut rep.slots_walked)?);
            let c = n.0;
            let kind = self.child_kind(v, c)?;
            s = self.descend_from(v, s, c, kind, y, rep)?;
            v = c;
        }
        out.push(self.native_successor_from(v, s, &mut rep.slots_walked)?);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Update side.
    // ------------------------------------------------------------------

    /// Insert `key` into `node`'s catalog (idempotent): revive a
    /// tombstone or link a fresh native slot, then run hysteresis split
    /// propagation up the node-to-root path. Returns the per-key cost.
    pub fn apply_insert(&mut self, node: NodeId, key: K) -> Result<PatchReport, DynError> {
        let v = node.0;
        let mut rep = PatchReport::default();
        if key >= K::SUPREMUM {
            return Err(DynError::SupremumKey { node: v });
        }
        let walked_before = rep.slots_walked;
        let e = self.locate_ge(v, key, &mut rep.slots_walked)?;
        let found = self.find_native_in_tie_run(v, e, key, &mut rep.slots_walked)?;
        let target: u32;
        if found != NIL {
            let slot = self.slot_mut(v, found)?;
            if slot.live {
                rep.noop = true;
                self.counters.noops += 1;
                self.log.push(rep);
                return Ok(rep);
            }
            slot.live = true;
            let list = self.list_mut(v)?;
            list.live += 1;
            list.live_native += 1;
            list.dead = list.dead.saturating_sub(1);
            self.counters.tombstones = self.counters.tombstones.saturating_sub(1);
            target = found;
        } else {
            target = self.link_new_slot(v, e, key, NATIVE, NIL)?;
            // Densify the finger gap the locate found too long.
            if rep.slots_walked - walked_before > 2 * self.cfg.finger_gap {
                let list = self.list_mut(v)?;
                let pos = list.fingers.partition_point(|&(k, _)| k < key);
                list.fingers.insert(pos, (key, target));
                rep.fingers_added += 1;
            }
            let list = self.list_mut(v)?;
            list.live_native += 1;
        }
        self.counters.live_native += 1;
        rep.nodes_touched += 1;
        self.propagate_split(v, target, &mut rep)?;
        self.counters.applies += 1;
        self.counters.cost_total += rep.cost() as u64;
        self.log.push(rep);
        Ok(rep)
    }

    /// Delete `key` from `node`'s catalog (idempotent): tombstone the
    /// native slot, tombstone any parent samples mirroring now-dead
    /// slots (the delete chain), and run hysteresis merge propagation.
    pub fn apply_remove(&mut self, node: NodeId, key: K) -> Result<PatchReport, DynError> {
        let v = node.0;
        let mut rep = PatchReport::default();
        let e = self.locate_ge(v, key, &mut rep.slots_walked)?;
        let found = self.find_native_in_tie_run(v, e, key, &mut rep.slots_walked)?;
        let live = found != NIL && self.slot_ref(v, found)?.live;
        if !live {
            rep.noop = true;
            self.counters.noops += 1;
            self.log.push(rep);
            return Ok(rep);
        }
        self.tombstone(v, found, true)?;
        self.counters.live_native = self.counters.live_native.saturating_sub(1);
        // Propagate: dead-mirror sample chains plus block merges, both
        // strictly upward, via the reused worklist.
        let mut work = std::mem::take(&mut self.scratch);
        work.clear();
        work.push((v, found));
        let mut guard = 0u32;
        let limit = 4 * self.nodes.len() as u32 + 16;
        while let Some((nv, ns)) = work.pop() {
            guard += 1;
            if guard > limit {
                self.scratch = work;
                return Err(DynError::CorruptLink { node: nv });
            }
            rep.nodes_touched += 1;
            // A sample mirroring a dead slot is dropped from its parent.
            let up = self.slot_ref(nv, ns)?.up;
            if up != NIL {
                self.slot_mut(nv, ns)?.up = NIL;
                let p = self.parent_of(nv)?;
                if p == NIL {
                    self.scratch = work;
                    return Err(DynError::CorruptBridge { node: nv, slot: ns });
                }
                if self.slot_ref(p, up)?.live {
                    self.tombstone(p, up, false)?;
                    rep.samples_dropped += 1;
                    self.counters.samples_dropped += 1;
                    work.push((p, up));
                }
            }
            // Block merge: a live run shrunk below the hysteresis floor
            // gives one bounding sample back to the parent.
            let count = self.block_live_count(nv, ns, &mut rep.slots_walked)?;
            if count < self.cfg.block_lo {
                let rb = self.right_sampled_boundary(nv, ns, &mut rep.slots_walked)?;
                if rb != NIL {
                    let up2 = self.slot_ref(nv, rb)?.up;
                    if up2 != NIL {
                        self.slot_mut(nv, rb)?.up = NIL;
                        let p = self.parent_of(nv)?;
                        if p != NIL && self.slot_ref(p, up2)?.live {
                            self.tombstone(p, up2, false)?;
                            rep.samples_dropped += 1;
                            self.counters.samples_dropped += 1;
                            work.push((p, up2));
                        }
                    }
                }
            }
        }
        self.scratch = work;
        self.counters.applies += 1;
        self.counters.cost_total += rep.cost() as u64;
        self.log.push(rep);
        Ok(rep)
    }

    /// Scan the tie run starting at `e` for a native slot whose key is
    /// exactly `key`; `NIL` if the run holds none.
    fn find_native_in_tie_run(
        &self,
        v: u32,
        e: u32,
        key: K,
        walked: &mut u32,
    ) -> Result<u32, DynError> {
        let list = self.list(v)?;
        let cap = list.slots.len() as u32 + 2;
        let mut cur = e;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let s = Self::slot_in(list, v, cur)?;
            if s.kind == SENTINEL || s.key != key {
                return Ok(NIL);
            }
            if s.kind == NATIVE {
                return Ok(cur);
            }
            if s.next == NIL {
                return Err(DynError::CorruptLink { node: v });
            }
            cur = s.next;
            steps += 1;
            *walked += 1;
        }
    }

    /// Link a fresh live slot with `key` immediately before `before`.
    fn link_new_slot(
        &mut self,
        v: u32,
        before: u32,
        key: K,
        kind: u16,
        down: u32,
    ) -> Result<u32, DynError> {
        let list = self.list_mut(v)?;
        let prev = list
            .slots
            .get(before as usize)
            .ok_or(DynError::SlotOutOfRange {
                node: v,
                slot: before,
            })?
            .prev;
        let new_ix = list.slots.len() as u32;
        list.slots.push(Slot {
            key,
            prev,
            next: before,
            kind,
            live: true,
            down,
            up: NIL,
        });
        list.slots
            .get_mut(before as usize)
            .ok_or(DynError::SlotOutOfRange {
                node: v,
                slot: before,
            })?
            .prev = new_ix;
        if prev == NIL {
            list.head = new_ix;
        } else {
            list.slots
                .get_mut(prev as usize)
                .ok_or(DynError::SlotOutOfRange {
                    node: v,
                    slot: prev,
                })?
                .next = new_ix;
        }
        list.live += 1;
        Ok(new_ix)
    }

    /// Tombstone a live slot, maintaining gauges and density dirt.
    fn tombstone(&mut self, v: u32, s: u32, native: bool) -> Result<(), DynError> {
        let min_dead = self.cfg.min_dead;
        let dead_frac = self.cfg.dead_frac;
        let list = self.list_mut(v)?;
        let slot = list
            .slots
            .get_mut(s as usize)
            .ok_or(DynError::SlotOutOfRange { node: v, slot: s })?;
        if !slot.live {
            return Ok(());
        }
        slot.live = false;
        list.live = list.live.saturating_sub(1);
        if native {
            list.live_native = list.live_native.saturating_sub(1);
        }
        list.dead += 1;
        let total = list.live + list.dead;
        let over = list.dead as f64 > (min_dead as f64).max(dead_frac * total as f64);
        let newly_dirty = over && !list.dirty;
        if newly_dirty {
            list.dirty = true;
        }
        self.counters.tombstones += 1;
        if newly_dirty {
            self.density_dirty.push(v);
        }
        Ok(())
    }

    /// Count live slots in the block containing `s` (the run between the
    /// nearest live sampled slots on either side, exclusive), capped at
    /// `block_hi + 1` — enough to decide both hysteresis thresholds.
    fn block_live_count(&self, v: u32, s: u32, walked: &mut u32) -> Result<u32, DynError> {
        let list = self.list(v)?;
        let cap = list.slots.len() as u32 + 2;
        let hi = self.cfg.block_hi;
        let mut count = 0u32;
        // Left: walk to the nearest live sampled boundary or the head.
        let mut cur = s;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let slot = Self::slot_in(list, v, cur)?;
            if slot.live && slot.up != NIL && cur != s {
                break; // boundary, exclusive
            }
            if slot.live && slot.kind != SENTINEL && cur != s {
                count += 1;
                if count > hi {
                    return Ok(count);
                }
            }
            if slot.prev == NIL {
                break;
            }
            cur = slot.prev;
            steps += 1;
            *walked += 1;
        }
        // The slot itself, when live and unsampled, is part of the run.
        let own = Self::slot_in(list, v, s)?;
        if own.live && own.up == NIL && own.kind != SENTINEL {
            count += 1;
        }
        // Right: same walk forward.
        let mut cur = s;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let slot = Self::slot_in(list, v, cur)?;
            if cur != s {
                if slot.kind == SENTINEL || (slot.live && slot.up != NIL) {
                    break;
                }
                if slot.live {
                    count += 1;
                    if count > hi {
                        return Ok(count);
                    }
                }
            }
            if slot.next == NIL {
                break;
            }
            cur = slot.next;
            steps += 1;
            *walked += 1;
        }
        Ok(count)
    }

    /// The nearest live sampled slot at or after `s` (`NIL` when the
    /// sentinel arrives first).
    fn right_sampled_boundary(&self, v: u32, s: u32, walked: &mut u32) -> Result<u32, DynError> {
        let list = self.list(v)?;
        let cap = list.slots.len() as u32 + 2;
        let mut cur = s;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let slot = Self::slot_in(list, v, cur)?;
            if slot.kind == SENTINEL {
                return Ok(NIL);
            }
            if slot.live && slot.up != NIL {
                return Ok(cur);
            }
            if slot.next == NIL {
                return Err(DynError::CorruptLink { node: v });
            }
            cur = slot.next;
            steps += 1;
            *walked += 1;
        }
    }

    /// Hysteresis split propagation: while the block containing the
    /// touched slot overflows `block_hi`, promote a middle element into
    /// the parent and continue one level up with the fresh sample slot.
    fn propagate_split(
        &mut self,
        v_in: u32,
        s_in: u32,
        rep: &mut PatchReport,
    ) -> Result<(), DynError> {
        let mut v = v_in;
        let mut s = s_in;
        let mut guard = 0u32;
        let limit = self.nodes.len() as u32 + 4;
        loop {
            guard += 1;
            if guard > limit {
                return Err(DynError::CorruptLink { node: v });
            }
            let p = self.parent_of(v)?;
            if p == NIL {
                return Ok(());
            }
            let count = self.block_live_count(v, s, &mut rep.slots_walked)?;
            if count <= self.cfg.block_hi {
                return Ok(());
            }
            let m = self.block_middle(v, s, count / 2, &mut rep.slots_walked)?;
            if m == NIL {
                return Ok(()); // no promotable slot (all sampled): stop
            }
            let mk = self.slot_ref(v, m)?.key;
            let kind = self.child_kind(p, v)?;
            let e = self.locate_ge(p, mk, &mut rep.slots_walked)?;
            let new_ix = self.link_new_slot(p, e, mk, kind, m)?;
            self.slot_mut(v, m)?.up = new_ix;
            rep.samples_added += 1;
            rep.nodes_touched += 1;
            self.counters.samples_added += 1;
            v = p;
            s = new_ix;
        }
    }

    /// Walk left to the block's start, then forward `k` live slots to a
    /// live *unsampled* non-sentinel slot to promote (`NIL` if none).
    fn block_middle(&self, v: u32, s: u32, k: u32, walked: &mut u32) -> Result<u32, DynError> {
        let list = self.list(v)?;
        let cap = list.slots.len() as u32 + 2;
        // Left edge of the block (first slot after the left boundary).
        let mut cur = s;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let slot = Self::slot_in(list, v, cur)?;
            if slot.prev == NIL {
                break;
            }
            let prev = Self::slot_in(list, v, slot.prev)?;
            if prev.live && prev.up != NIL {
                break;
            }
            cur = slot.prev;
            steps += 1;
            *walked += 1;
        }
        // Forward: the k-th live slot (1-based), then first promotable.
        let mut seen = 0u32;
        let mut steps = 0u32;
        loop {
            if steps > cap {
                return Err(DynError::CorruptLink { node: v });
            }
            let slot = Self::slot_in(list, v, cur)?;
            if slot.kind == SENTINEL {
                return Ok(NIL);
            }
            if slot.live {
                seen += 1;
                if seen >= k.max(1) && slot.up == NIL {
                    return Ok(cur);
                }
            }
            if slot.next == NIL {
                return Err(DynError::CorruptLink { node: v });
            }
            cur = slot.next;
            steps += 1;
            *walked += 1;
        }
    }

    // ------------------------------------------------------------------
    // Audit.
    // ------------------------------------------------------------------

    /// Full structural audit: link integrity (every slot reachable
    /// exactly once, sentinel last), non-decreasing keys, live/dead
    /// tallies, bridge/back-reference consistency for live samples,
    /// finger validity, and the tombstone density bound. First violation
    /// wins, as a typed error.
    pub fn audit(&self) -> Result<(), DynError> {
        for (vi, list) in self.nodes.iter().enumerate() {
            let v = vi as u32;
            let mut cur = list.head;
            let mut visited = 0usize;
            let mut live = 0u32;
            let mut live_native = 0u32;
            let mut dead = 0u32;
            let mut prev_ix = NIL;
            let mut prev_key: Option<K> = None;
            let mut saw_sentinel = false;
            while cur != NIL {
                if visited > list.slots.len() {
                    return Err(DynError::CorruptLink { node: v });
                }
                let slot = Self::slot_in(list, v, cur)?;
                if slot.prev != prev_ix {
                    return Err(DynError::CorruptLink { node: v });
                }
                if let Some(pk) = prev_key {
                    if slot.key < pk {
                        return Err(DynError::CorruptOrder { node: v, slot: cur });
                    }
                }
                if saw_sentinel {
                    return Err(DynError::CorruptLink { node: v });
                }
                match slot.kind {
                    SENTINEL => {
                        if !slot.live || slot.key != K::SUPREMUM || cur != list.sentinel {
                            return Err(DynError::CorruptLink { node: v });
                        }
                        saw_sentinel = true;
                    }
                    NATIVE => {
                        if slot.live {
                            live += 1;
                            live_native += 1;
                        } else {
                            dead += 1;
                        }
                    }
                    kind => {
                        if slot.live {
                            live += 1;
                            // Live sample: bridge must mirror a live child
                            // slot with the same key pointing back here.
                            let c = self
                                .children
                                .get(vi)
                                .and_then(|k| k.get((kind - 1) as usize))
                                .copied()
                                .ok_or(DynError::CorruptBridge { node: v, slot: cur })?;
                            let mirror = self.slot_ref(c, slot.down)?;
                            if mirror.key != slot.key || mirror.up != cur {
                                return Err(DynError::CorruptBridge { node: v, slot: cur });
                            }
                        } else {
                            dead += 1;
                        }
                    }
                }
                prev_key = Some(slot.key);
                prev_ix = cur;
                cur = slot.next;
                visited += 1;
            }
            if !saw_sentinel || visited != list.slots.len() {
                return Err(DynError::CorruptLink { node: v });
            }
            if live != list.live || dead != list.dead || live_native != list.live_native {
                return Err(DynError::CorruptCounts { node: v });
            }
            for (fi, &(k, s)) in list.fingers.iter().enumerate() {
                let slot = Self::slot_in(list, v, s)?;
                if slot.key != k {
                    return Err(DynError::CorruptFinger {
                        node: v,
                        finger: fi as u32,
                    });
                }
            }
            let total = list.live + list.dead;
            if list.dead as f64 > (self.cfg.min_dead as f64).max(self.cfg.dead_frac * total as f64)
            {
                return Err(DynError::DensityViolation {
                    node: v,
                    dead: list.dead,
                    total,
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault-injection hooks (tests only; not part of the stable API).
    // ------------------------------------------------------------------

    /// Corrupt the first live sample slot's `down` bridge at `node` so a
    /// descent through it must produce a typed error. Returns whether a
    /// sample was found to corrupt.
    #[doc(hidden)]
    pub fn corrupt_bridge_for_fault_injection(&mut self, node: u32) -> bool {
        if let Some(list) = self.nodes.get_mut(node as usize) {
            for slot in list.slots.iter_mut() {
                if slot.live && slot.kind != NATIVE && slot.kind != SENTINEL {
                    slot.down = u32::MAX - 1;
                    return true;
                }
            }
        }
        false
    }

    /// Cycle the list at `node` (a slot's `next` pointing back at the
    /// head) so walks must hit the cycle guard. Returns whether applied.
    #[doc(hidden)]
    pub fn corrupt_link_for_fault_injection(&mut self, node: u32) -> bool {
        if let Some(list) = self.nodes.get_mut(node as usize) {
            let head = list.head;
            let sent = list.sentinel as usize;
            if let Some(slot) = list.slots.get_mut(sent.saturating_sub(1)) {
                if slot.kind != SENTINEL {
                    slot.next = head;
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute(dc: &DynCascade<i64>, path: &[NodeId], y: i64) -> Vec<Option<i64>> {
        path.iter()
            .map(|&n| dc.live_native_catalog(n).into_iter().find(|&k| k >= y))
            .collect()
    }

    fn check_paths(dc: &DynCascade<i64>, tree: &CatalogTree<i64>, rng: &mut SmallRng, tag: &str) {
        let mut out = Vec::new();
        let mut rep = QueryReport::default();
        for _ in 0..6 {
            let leaf = gen::random_leaf(tree, rng);
            let path = tree.path_from_root(leaf);
            let y = rng.gen_range(-10..70_010i64);
            dc.search_path_into(&path, y, &mut out, &mut rep)
                .unwrap_or_else(|e| panic!("{tag}: typed error on clean structure: {e}"));
            assert_eq!(out, brute(dc, &path, y), "{tag} y={y}");
        }
    }

    #[test]
    fn build_then_search_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(901);
        for depth in [2u32, 4, 6] {
            let tree = gen::balanced_binary(depth, 1500, SizeDist::Uniform, &mut rng);
            let dc = DynCascade::build(&tree, DynConfig::default());
            dc.audit().expect("fresh build audits clean");
            check_paths(&dc, &tree, &mut rng, "fresh");
        }
    }

    #[test]
    fn incremental_updates_stay_oracle_equal_and_audit_clean() {
        let mut rng = SmallRng::seed_from_u64(903);
        let tree = gen::balanced_binary(5, 2000, SizeDist::Uniform, &mut rng);
        let mut dc = DynCascade::build(&tree, DynConfig::default());
        let nodes = tree.len() as u32;
        for step in 0..4000 {
            let node = NodeId(rng.gen_range(0..nodes));
            let key = rng.gen_range(0..70_000i64);
            if rng.gen_bool(0.6) {
                dc.apply_insert(node, key).expect("insert");
            } else {
                dc.apply_remove(node, key).expect("remove");
            }
            if step % 200 == 0 {
                dc.audit().unwrap_or_else(|e| panic!("step {step}: {e}"));
                check_paths(&dc, &tree, &mut rng, "churn");
            }
        }
        let c = dc.counters();
        assert!(c.applies > 0 && c.samples_added > 0, "hysteresis must fire");
        assert!(dc.patch_log().total() > 0);
    }

    #[test]
    fn patch_cost_is_per_key_not_per_structure() {
        let mut rng = SmallRng::seed_from_u64(905);
        let tree = gen::balanced_binary(6, 6000, SizeDist::Uniform, &mut rng);
        let mut dc = DynCascade::build(&tree, DynConfig::default());
        let nodes = tree.len() as u32;
        let mut worst = 0u32;
        let mut total = 0u64;
        let updates = 3000u32;
        for _ in 0..updates {
            let node = NodeId(rng.gen_range(0..nodes));
            let key = rng.gen_range(0..1_000_000i64);
            let rep = if rng.gen_bool(0.55) {
                dc.apply_insert(node, key).expect("insert")
            } else {
                dc.apply_remove(node, key).expect("remove")
            };
            worst = worst.max(rep.cost());
            total += rep.cost() as u64;
        }
        let mean = total as f64 / updates as f64;
        // 6000 keys in the structure; per-update touched slots must stay
        // orders of magnitude below that (path length × hysteresis band).
        assert!(mean < 300.0, "mean per-update cost too high: {mean}");
        assert!(worst < 6000, "a single update touched the whole structure");
    }

    #[test]
    fn tombstones_accumulate_into_density_violation() {
        let mut rng = SmallRng::seed_from_u64(907);
        let tree = gen::balanced_binary(3, 600, SizeDist::Uniform, &mut rng);
        let cfg = DynConfig {
            min_dead: 8,
            dead_frac: 0.05,
            ..DynConfig::default()
        };
        let mut dc = DynCascade::build(&tree, cfg);
        assert!(dc.needs_compaction().is_none());
        let root = tree.root();
        let keys = dc.live_native_catalog(root);
        for &k in keys.iter().take(keys.len() / 2) {
            dc.apply_remove(root, k).expect("remove");
        }
        assert!(dc.needs_compaction().is_some(), "density dirt must surface");
        assert!(matches!(dc.audit(), Err(DynError::DensityViolation { .. })));
    }

    #[test]
    fn corrupted_bridge_is_a_typed_error_never_wrong() {
        let mut rng = SmallRng::seed_from_u64(909);
        let tree = gen::balanced_binary(4, 1200, SizeDist::Uniform, &mut rng);
        let mut dc = DynCascade::build(&tree, DynConfig::default());
        let root = tree.root();
        assert!(dc.corrupt_bridge_for_fault_injection(root.0));
        assert!(dc.audit().is_err(), "audit must see the bad bridge");
        // Sweep queries: every result is either correct or a typed error.
        let mut out = Vec::new();
        let mut rep = QueryReport::default();
        let mut typed = 0u32;
        for _ in 0..200 {
            let leaf = gen::random_leaf(&tree, &mut rng);
            let path = tree.path_from_root(leaf);
            let y = rng.gen_range(0..70_000i64);
            match dc.search_path_into(&path, y, &mut out, &mut rep) {
                Ok(()) => assert_eq!(out, brute(&dc, &path, y), "silently wrong answer"),
                Err(_) => typed += 1,
            }
        }
        assert!(typed > 0, "the corruption must be hit and typed");
    }

    #[test]
    fn cycled_links_hit_the_guard_not_a_hang() {
        let mut rng = SmallRng::seed_from_u64(911);
        let tree = gen::balanced_binary(3, 400, SizeDist::Uniform, &mut rng);
        let mut dc = DynCascade::build(&tree, DynConfig::default());
        let root = tree.root();
        assert!(dc.corrupt_link_for_fault_injection(root.0));
        let path = vec![root];
        let mut out = Vec::new();
        let mut rep = QueryReport::default();
        // High key forces a long walk into the cycle.
        let r = dc.search_path_into(&path, i64::MAX - 1, &mut out, &mut rep);
        assert!(
            matches!(r, Err(DynError::CorruptLink { .. })) || r.is_ok(),
            "must be typed or correct, got {r:?}"
        );
        assert!(dc.audit().is_err());
    }

    #[test]
    fn supremum_insert_rejected_typed() {
        let mut rng = SmallRng::seed_from_u64(913);
        let tree = gen::balanced_binary(2, 50, SizeDist::Uniform, &mut rng);
        let mut dc = DynCascade::build(&tree, DynConfig::default());
        assert!(matches!(
            dc.apply_insert(tree.root(), i64::MAX),
            Err(DynError::SupremumKey { .. })
        ));
        // MAX - 1 is a fine key.
        dc.apply_insert(tree.root(), i64::MAX - 1).expect("ok");
        let mut out = Vec::new();
        let mut rep = QueryReport::default();
        dc.search_path_into(&[tree.root()], i64::MAX - 1, &mut out, &mut rep)
            .expect("search");
        assert_eq!(out, vec![Some(i64::MAX - 1)]);
    }

    #[test]
    fn revive_after_tombstone_roundtrips() {
        let mut rng = SmallRng::seed_from_u64(915);
        let tree = gen::balanced_binary(3, 300, SizeDist::Uniform, &mut rng);
        let mut dc = DynCascade::build(&tree, DynConfig::default());
        let root = tree.root();
        let k = dc.live_native_catalog(root)[0];
        let r1 = dc.apply_remove(root, k).expect("remove");
        assert!(!r1.noop);
        let r2 = dc.apply_remove(root, k).expect("remove again");
        assert!(r2.noop, "double delete is a noop");
        let r3 = dc.apply_insert(root, k).expect("revive");
        assert!(!r3.noop);
        let r4 = dc.apply_insert(root, k).expect("dup insert");
        assert!(r4.noop);
        assert!(dc.live_native_catalog(root).contains(&k));
        dc.audit().expect("clean after roundtrip");
    }
}
