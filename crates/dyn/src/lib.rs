//! # fc-dyn — incremental dynamic catalog maintenance
//!
//! The serving stack's write path so far has been *global rebuilding*:
//! buffer updates per node, and when enough accumulate, rebuild the whole
//! cascaded structure from scratch (`fc_coop::DynamicCoop`). That keeps
//! every query oracle-correct but makes write cost proportional to the
//! structure, not to the keys touched.
//!
//! This crate implements the incremental alternative in the direction of
//! Mehlhorn–Näher dynamic fractional cascading and Nekrich's *Searching
//! in Dynamic Catalogs on a Tree*: a per-node **slot arena** whose slots
//! never move (stable indices), ordered by doubly-linked `prev`/`next`
//! chains, with
//!
//! * **tombstones** — deletion flips a `live` bit; keys stay behind as
//!   order markers, so bridges and finger entries never dangle;
//! * **samples + bridges** — every node's augmented list holds, besides
//!   its native keys, a sample of each child's augmented list; a sample
//!   slot carries a `down` bridge to the *slot index* it mirrors (stable
//!   across unrelated edits) and the mirrored slot carries the matching
//!   `up` back-reference;
//! * **hysteresis** — when the live run between two consecutive samples
//!   of a child grows past `block_hi`, a middle element is promoted into
//!   the parent (a *split*); when it shrinks below `block_lo`, a bounding
//!   sample is tombstoned (a *merge*). Splits and merges are themselves
//!   insertions/deletions one level up, so maintenance propagates only
//!   along the affected node-to-root path;
//! * **fingers** — a sparse sorted `(key, slot)` index per node gives
//!   `O(log)` entry into any list; finger slots are never invalidated
//!   (tombstones, not splices), only their gaps drift, and the update
//!   path densifies a gap it found too long.
//!
//! Every mutation returns a [`PatchReport`] whose counters *are* the
//! per-key-touched cost metric; the last reports are retained in a
//! bounded [`PatchLog`]. Every structural suspicion is a typed
//! [`DynError`] — a corrupted bridge or cycled link produces an error,
//! never a silently wrong answer and never a hang (all walks carry cycle
//! guards). Density invariants (bounded tombstone fraction per node) are
//! tracked eagerly; when violated, [`DynCascade::needs_compaction`]
//! reports the node so the owner (`DynamicCoop`) can fall back to the
//! always-correct clone-and-rebuild.
//!
//! The honesty check: Afshani's lower bound for dynamic fractional
//! cascading rules out the "ideal" combination of `O(log log n)` updates
//! with `O(1)`-per-level queries in general; this implementation is
//! engineering within that envelope — amortized per-path updates, walks
//! bounded by hysteresis plus a budget with a typed finger fallback.

pub mod cascade;
pub mod patch;

pub use cascade::DynCascade;
pub use patch::{DynConfig, DynCounters, PatchLog, PatchReport, QueryReport};

/// A typed structural error from the incremental cascade.
///
/// Every variant names the node (arena index) where the suspicion arose,
/// so the owner can target its fallback/quarantine. These are *detection*
/// results: the query or patch that produced one has not returned a
/// wrong answer, and the structure is still safe to rebuild from (the
/// arena itself, scanned flat, remains the authoritative key set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynError {
    /// A node index outside the arena.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
    },
    /// A slot index outside a node's arena.
    SlotOutOfRange {
        /// Node whose arena was indexed.
        node: u32,
        /// The offending slot index.
        slot: u32,
    },
    /// Two consecutive path entries are not parent and child.
    PathMismatch {
        /// The parent-side node.
        parent: u32,
        /// The node that is not its child.
        child: u32,
    },
    /// A live sample slot's `down` bridge does not mirror its key.
    CorruptBridge {
        /// Node holding the sample.
        node: u32,
        /// The sample slot.
        slot: u32,
    },
    /// A linked-list walk exceeded the arena size (cycle or torn link).
    CorruptLink {
        /// The node whose list is suspect.
        node: u32,
    },
    /// Keys along the list are not non-decreasing.
    CorruptOrder {
        /// The node whose list is suspect.
        node: u32,
        /// First slot at which order breaks.
        slot: u32,
    },
    /// Live/dead tallies disagree with the list contents.
    CorruptCounts {
        /// The node whose counters are suspect.
        node: u32,
    },
    /// A finger entry's recorded key differs from its slot's key.
    CorruptFinger {
        /// The node whose finger index is suspect.
        node: u32,
        /// Index into the finger vector.
        finger: u32,
    },
    /// Tombstones exceed the configured density bound (compaction due).
    DensityViolation {
        /// The over-dense node.
        node: u32,
        /// Tombstoned slots.
        dead: u32,
        /// Total slots.
        total: u32,
    },
    /// The reserved `SUPREMUM` key was used as a real entry.
    SupremumKey {
        /// The node targeted by the update.
        node: u32,
    },
}

impl DynError {
    /// The node this error points at, for quarantine targeting.
    pub fn node(&self) -> u32 {
        match *self {
            DynError::NodeOutOfRange { node }
            | DynError::SlotOutOfRange { node, .. }
            | DynError::CorruptBridge { node, .. }
            | DynError::CorruptLink { node }
            | DynError::CorruptOrder { node, .. }
            | DynError::CorruptCounts { node }
            | DynError::CorruptFinger { node, .. }
            | DynError::DensityViolation { node, .. }
            | DynError::SupremumKey { node } => node,
            DynError::PathMismatch { parent, .. } => parent,
        }
    }
}

impl std::fmt::Display for DynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DynError::NodeOutOfRange { node } => write!(f, "node {node} out of range"),
            DynError::SlotOutOfRange { node, slot } => {
                write!(f, "slot {slot} out of range at node {node}")
            }
            DynError::PathMismatch { parent, child } => {
                write!(f, "path step {parent} -> {child} is not an edge")
            }
            DynError::CorruptBridge { node, slot } => {
                write!(f, "corrupt bridge at node {node} slot {slot}")
            }
            DynError::CorruptLink { node } => write!(f, "corrupt link chain at node {node}"),
            DynError::CorruptOrder { node, slot } => {
                write!(f, "key order violated at node {node} slot {slot}")
            }
            DynError::CorruptCounts { node } => write!(f, "live/dead tallies wrong at node {node}"),
            DynError::CorruptFinger { node, finger } => {
                write!(f, "stale finger {finger} at node {node}")
            }
            DynError::DensityViolation { node, dead, total } => {
                write!(f, "density violation at node {node}: {dead}/{total} dead")
            }
            DynError::SupremumKey { node } => {
                write!(f, "reserved SUPREMUM key used at node {node}")
            }
        }
    }
}

impl std::error::Error for DynError {}
