//! The `reach(c, U)` sets of the paper's first two (rejected) approaches —
//! Figures 1 and 2.
//!
//! `reach(c, U)` is the set of catalog entries, over all nodes of the unit
//! `U`, that some query `y` with `find(y, u) = c` can return. Figure 1
//! illustrates that its size is `O((2(2b+1))^h) = O(p^β)`, `β < 1`; Figure 2
//! shows the *pruned* reaches, whose overlap statistics explain why the
//! second approach fails. These functions measure both quantities on real
//! structures for the F-1/F-2 experiments.

use fc_catalog::{CascadedTree, CatalogKey, NodeId};

/// The reach of augmented entry `c` at node `u`, explored `h` levels down.
/// Returns, per relative level `l = 0..=h`, the number of (node, entry)
/// pairs at that level, and the total.
pub fn reach_size<K: CatalogKey>(
    fc: &CascadedTree<K>,
    u: NodeId,
    c: usize,
    h: u32,
) -> (Vec<usize>, usize) {
    let tree = fc.tree();
    // For a query interval (keys[c-1], keys[c]] at u, the reachable entries
    // at a descendant w form the contiguous index range
    // [find_aug(w, lo+), find_aug(w, hi)] where lo/hi are the interval ends.
    // Track the index interval per node with a BFS.
    let keys = fc.keys(u);
    assert!(c < keys.len());
    let mut per_level = vec![0usize; h as usize + 1];
    per_level[0] = 1;
    let mut total = 1usize;
    // Frontier holds (node, lo_idx, hi_idx): the range of reachable entries.
    let mut frontier: Vec<(NodeId, usize, usize)> = vec![(u, c, c)];
    for l in 1..=h {
        let mut next = Vec::new();
        for &(v, lo, hi) in &frontier {
            for (slot, &w) in tree.children(v).iter().enumerate() {
                // Reachable entries at w: from the leftmost answer any y in
                // the lo-entry's interval can produce, to the rightmost for
                // the hi-entry. Bridges bound both ends.
                let bl = fc.aug(v).bridges[slot][lo] as usize;
                let lo_w = bl.saturating_sub(fc.fanout_bound());
                let hi_w = fc.aug(v).bridges[slot][hi] as usize;
                let hi_w = hi_w.min(fc.keys(w).len() - 1);
                let lo_w = lo_w.min(hi_w);
                per_level[l as usize] += hi_w - lo_w + 1;
                total += hi_w - lo_w + 1;
                next.push((w, lo_w, hi_w));
            }
        }
        frontier = next;
    }
    (per_level, total)
}

/// Overlap statistics of adjacent reaches (why the second approach's
/// pruning fails): for the unit rooted at `u`, computes the total size of
/// all (unpruned) reaches of entries in `u`'s catalog versus the number of
/// distinct (node, entry) pairs covered. The ratio is the storage blow-up a
/// naive reach table would pay — `Θ(n)` in the worst case (Section 2.1).
pub fn reach_overlap<K: CatalogKey>(fc: &CascadedTree<K>, u: NodeId, h: u32) -> (usize, usize) {
    let t = fc.keys(u).len();
    let mut sum = 0usize;
    let mut distinct = 0usize;
    // Distinct coverage: reaches are index intervals per node, and
    // consecutive entries produce consecutive (overlapping) intervals, so
    // the union per node is the hull of the first and last interval. We
    // exploit this instead of materialising sets.
    let tree = fc.tree();
    let mut hulls: std::collections::HashMap<u32, (usize, usize)> =
        std::collections::HashMap::new();
    for c in 0..t {
        let (_, tot) = reach_size(fc, u, c, h);
        sum += tot;
        // Merge the per-node ranges into hulls.
        let mut frontier: Vec<(NodeId, usize, usize)> = vec![(u, c, c)];
        for _ in 0..h {
            let mut next = Vec::new();
            for &(v, lo, hi) in &frontier {
                for (slot, &w) in tree.children(v).iter().enumerate() {
                    let bl = fc.aug(v).bridges[slot][lo] as usize;
                    let lo_w = bl.saturating_sub(fc.fanout_bound());
                    let hi_w = (fc.aug(v).bridges[slot][hi] as usize).min(fc.keys(w).len() - 1);
                    let lo_w = lo_w.min(hi_w);
                    next.push((w, lo_w, hi_w));
                }
            }
            for &(w, lo, hi) in &next {
                let e = hulls.entry(w.0).or_insert((lo, hi));
                e.0 = e.0.min(lo);
                e.1 = e.1.max(hi);
            }
            frontier = next;
        }
    }
    for (_, (lo, hi)) in hulls {
        distinct += hi - lo + 1;
    }
    distinct += t; // the root's own entries
    (sum, distinct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::CascadedTree;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(height: u32, total: usize, seed: u64) -> CascadedTree<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, &mut rng);
        CascadedTree::build(tree, 4)
    }

    #[test]
    fn reach_grows_at_most_geometrically() {
        let fc = build(8, 20_000, 601);
        let root = fc.tree().root();
        let b = fc.fanout_bound();
        let c = fc.keys(root).len() / 2;
        let (per_level, total) = reach_size(&fc, root, c, 5);
        assert_eq!(per_level[0], 1);
        // Level l holds at most (2(2b+1))^l entries (Figure 1's bound).
        for (l, &cnt) in per_level.iter().enumerate() {
            let bound = (2 * (2 * b + 1)).pow(l as u32);
            assert!(cnt <= bound, "level {l}: {cnt} > {bound}");
        }
        assert_eq!(total, per_level.iter().sum::<usize>());
    }

    #[test]
    fn reach_covers_every_possible_find() {
        // For y in entry c's interval, find(y, w) must land inside the
        // computed range at w — the defining property of the reach.
        let fc = build(5, 2000, 603);
        let tree = fc.tree();
        let root = tree.root();
        let keys = fc.keys(root);
        for c in [0usize, keys.len() / 3, keys.len() - 2] {
            let lo_y = if c == 0 { i64::MIN } else { keys[c - 1] + 1 };
            let hi_y = keys[c];
            let (_, _total) = reach_size(&fc, root, c, 3);
            // Probe both interval ends at every depth-<=3 descendant.
            for id in tree.ids() {
                let d = tree.depth(id);
                if d == 0 || d > 3 {
                    continue;
                }
                for y in [lo_y, hi_y] {
                    let f = fc.find_aug(id, y);
                    // Recompute the range along the path root -> id.
                    let path = tree.path_from_root(id);
                    let (mut lo_i, mut hi_i) = (c, c);
                    for w in path.windows(2) {
                        let slot = tree.child_slot(w[0], w[1]);
                        let bl = fc.aug(w[0]).bridges[slot][lo_i] as usize;
                        lo_i = bl.saturating_sub(fc.fanout_bound());
                        hi_i = (fc.aug(w[0]).bridges[slot][hi_i] as usize)
                            .min(fc.keys(w[1]).len() - 1);
                        lo_i = lo_i.min(hi_i);
                    }
                    assert!(
                        (lo_i..=hi_i).contains(&f),
                        "find {f} outside reach [{lo_i}, {hi_i}] at {id:?} y {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_exceeds_distinct_coverage() {
        let fc = build(6, 6000, 607);
        let root = fc.tree().root();
        let (sum, distinct) = reach_overlap(&fc, root, 3);
        // Overlap means the naive storage (sum) exceeds the distinct pairs.
        assert!(sum >= distinct, "sum {sum} < distinct {distinct}");
        assert!(distinct > 0);
    }
}
