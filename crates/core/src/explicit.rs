//! Explicit cooperative search (Section 2.2).
//!
//! Given a root-to-leaf path known in advance, `p` processors locate `y` in
//! every catalog along the path in `O((log n)/log p)` CREW steps:
//!
//! 1. a cooperative `p`-ary binary search locates `y` in the root's
//!    augmented catalog;
//! 2. each *hop* advances `h_i = Θ(log p)` levels in `O(1)` steps — Step 2
//!    moves right to the nearest sampled entry (choosing the skeleton tree
//!    `U_j`), Step 3 assigns one processor to each candidate position in
//!    the window `[k - q - r, k + q]` around every path node's skeleton
//!    key (Lemma 3 guarantees the window contains `find(y, v)`);
//! 3. the truncated tail (at most `(log n)/log p` levels) is searched
//!    sequentially through the bridges (Step 5).
//!
//! The implementation computes each window's answer by binary search but
//! **charges the PRAM cost of the window scan** the paper prescribes, and
//! verifies that the true answer indeed falls inside the window — a
//! per-query validation of Lemma 3. A violation (possible only when the
//! structure was built with an understated fan-out constant `b`) is counted
//! in [`SearchStats::fallbacks`] and repaired with a full binary search, so
//! results are always exact.

use crate::cancel::CancelToken;
use crate::skeleton::NO_CHILD;
use crate::structure::CoopStructure;
use fc_catalog::cascade::Find;
use fc_catalog::search::search_path_fc;
use fc_catalog::{CatalogKey, FcError, NodeId};
use fc_pram::cost::Pram;
use fc_pram::primitives::coop_lower_bound_traced;
use fc_pram::shadow::{NoTrace, Tracer};

/// Counters describing how a cooperative search executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Constant-time hops performed (Steps 2–4 iterations).
    pub hops: usize,
    /// Window-coverage violations repaired by binary search (0 whenever the
    /// structure uses the guaranteed fan-out bound — Lemma 3).
    pub fallbacks: usize,
    /// Total candidate positions examined across all hop windows.
    pub window_ops: u64,
    /// Path nodes searched sequentially in the truncated tail (Step 5).
    pub tail_nodes: usize,
    /// Hop height of the substructure used (`None` = fully sequential).
    pub used_h: Option<u32>,
}

/// Result of an explicit cooperative search.
#[derive(Debug, Clone)]
pub struct ExplicitSearchResult {
    /// `finds[i]` is `find(y, path[i])`, exactly as the sequential search
    /// would report.
    pub finds: Vec<Find>,
    /// `augs[i]` is the located position in `path[i]`'s *augmented*
    /// catalog — one bridge step away from any child's answer, which is
    /// how the retrieval structures (Theorem 6) reach the canonical nodes
    /// hanging off the search path in `O(1)`.
    pub augs: Vec<usize>,
    /// Execution counters.
    pub stats: SearchStats,
}

/// Run an explicit cooperative search for `y` along `path` (a downward path
/// starting at the root) with the processor count carried by `pram`.
///
/// Degrades gracefully: if processors die mid-search ([`Pram::kill`] or a
/// scheduled failure), the remaining hops re-select a substructure sized for
/// the survivors and continue, still returning the exact answer in
/// `O((log n)/log p')` steps for `p'` survivors.
///
/// # Panics
/// Panics if `path` is empty, does not start at the root, or is not a
/// connected downward path.
pub fn coop_search_explicit<K: CatalogKey>(
    st: &CoopStructure<K>,
    path: &[NodeId],
    y: K,
    pram: &mut Pram,
) -> ExplicitSearchResult {
    match search_explicit_inner(st, path, y, pram, false, None, &mut NoTrace) {
        Ok(out) => out,
        Err(e) => unreachable!("unchecked explicit search cannot fail: {e}"),
    }
}

/// [`coop_search_explicit`] with every logical access reported to a
/// [`Tracer`] on the CREW round structure of Section 2.2:
///
/// * Step 1 runs the traced cooperative `p`-ary root search (shared reads
///   of the query cell `("query", 0)` — legal under CREW, the analyzer's
///   canary under EREW);
/// * Step 2 (`search/hop-select`) has `min(s, t)` processors share the
///   position cursor and probe distinct augmented entries, one of them
///   publishing the selected skeleton tree to `("sel", 0)`;
/// * Step 3 (`search/hop-windows`) assigns one processor per candidate
///   window position: shared reads of the query, selection, and skeleton
///   key cells, private reads of `("aug", node)` at its candidate and left
///   neighbour (≤ 2 readers per catalog cell), and exactly one winner per
///   window writing its result cell `("res", 0)[i]` — every write
///   exclusive, which is the paper's CREW claim (Theorem 1/4);
/// * the Step 5 tail (`search/tail`) is single-processor bridge walking.
///
/// Results are bit-identical to [`coop_search_explicit`], as are the
/// `pram` charges.
pub fn coop_search_explicit_traced<K: CatalogKey, Tr: Tracer>(
    st: &CoopStructure<K>,
    path: &[NodeId],
    y: K,
    pram: &mut Pram,
    tr: &mut Tr,
) -> ExplicitSearchResult {
    match search_explicit_inner(st, path, y, pram, false, None, tr) {
        Ok(out) => out,
        Err(e) => unreachable!("unchecked explicit search cannot fail: {e}"),
    }
}

/// Audited variant of [`coop_search_explicit`] for structures that may have
/// been corrupted: instead of trusting the fan-out and window bounds, every
/// bridge crossing and window is verified, and the first violated invariant
/// aborts the search with a localized [`FcError`] — never a silently wrong
/// answer. The blame coordinate feeds `fc-resilience`'s audit/repair pass.
///
/// Costs the same PRAM steps as the unchecked search up to the abort point
/// (the guards are `O(1)` per hop and ride along with work already charged).
///
/// # Panics
/// Panics on the same malformed-`path` conditions as
/// [`coop_search_explicit`]. Structure corruption never panics.
pub fn coop_search_explicit_checked<K: CatalogKey>(
    st: &CoopStructure<K>,
    path: &[NodeId],
    y: K,
    pram: &mut Pram,
) -> Result<ExplicitSearchResult, FcError> {
    search_explicit_inner(st, path, y, pram, true, None, &mut NoTrace)
}

/// [`coop_search_explicit_checked`] with cooperative cancellation: the
/// token is polled once per descent step (root search, every hop, every
/// sequential tail node), so a query whose deadline passes mid-search
/// aborts within `O(1)` steps with [`FcError::Cancelled`] instead of
/// running to completion. All structural guards of the checked search stay
/// active — the result is never silently wrong, merely absent when
/// cancelled. This is the entry point `fc-serve` drives.
pub fn coop_search_explicit_cancellable<K: CatalogKey>(
    st: &CoopStructure<K>,
    path: &[NodeId],
    y: K,
    pram: &mut Pram,
    cancel: &CancelToken,
) -> Result<ExplicitSearchResult, FcError> {
    search_explicit_inner(st, path, y, pram, true, Some(cancel), &mut NoTrace)
}

/// Verify that `g` is a locally consistent lower-bound position for `y` in
/// `keys` (used in checked mode after every binary search: on a corrupted,
/// unsorted catalog a binary search can land anywhere).
fn audit_locate<K: CatalogKey>(keys: &[K], g: usize, y: K, node: u32) -> Result<(), FcError> {
    let prev_below = g == 0 || keys.get(g - 1).is_some_and(|&k| k < y);
    match keys.get(g) {
        Some(&k) if k >= y && prev_below => Ok(()),
        _ => Err(FcError::CorruptCatalog {
            node,
            entry: g.min(keys.len().saturating_sub(1)),
        }),
    }
}

fn search_explicit_inner<K: CatalogKey, Tr: Tracer>(
    st: &CoopStructure<K>,
    path: &[NodeId],
    y: K,
    pram: &mut Pram,
    checked: bool,
    cancel: Option<&CancelToken>,
    tr: &mut Tr,
) -> Result<ExplicitSearchResult, FcError> {
    assert!(!path.is_empty(), "path must be nonempty");
    assert_eq!(path[0], st.tree().root(), "path must start at the root");
    if let Some(c) = cancel {
        c.check()?;
    }

    let fc = st.cascade();
    let tree = st.tree();
    let slot_span = tree.max_degree() + 1;
    if checked && pram.processors() == 0 {
        return Err(FcError::NoProcessors);
    }

    let mut p_sel = pram.processors();
    let Some(mut sub) = st.select(p_sel) else {
        // No hop height pays off at this p: sequential fractional cascading
        // (the p = 1 baseline) is the right algorithm. The augmented walk
        // below runs FIRST: in checked mode it audits every bridge the
        // sequential search will trust, so `search_path_fc` (whose descents
        // are unchecked and may assert on a corrupted structure) only runs
        // once the path's bridges are certified. The walk costs what the
        // sequential search charges anyway.
        let mut augs = Vec::with_capacity(path.len());
        let mut aug = fc.find_aug(path[0], y);
        if checked {
            audit_locate(fc.keys(path[0]), aug, y, path[0].0)?;
        }
        if tr.live() {
            // Single-processor replay: the root binary search's probe
            // sequence, then one bridge step per level — trivially
            // exclusive, recorded for the per-phase access counts.
            tr.phase("search/seq");
            let keys = fc.keys(path[0]);
            tr.read(0, ("query", 0), 0);
            let (mut lo, mut hi) = (0usize, keys.len());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                tr.read(0, ("aug", path[0].idx()), mid);
                if keys[mid] < y {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            tr.write(0, ("res", 0), 0);
            tr.barrier();
        }
        augs.push(aug);
        for (i, w) in path.windows(2).enumerate() {
            if let Some(c) = cancel {
                c.check()?;
            }
            let slot = st.tree().child_slot(w[0], w[1]);
            let (next, walked) = if checked {
                fc.checked_descend(w[0], slot, aug, y)?
            } else {
                fc.descend(w[0], slot, aug, y)
            };
            if tr.live() {
                tr.read(0, ("bridge", w[0].idx() * slot_span + slot), aug);
                for b in 0..=walked {
                    tr.read(0, ("aug", w[1].idx()), next + b);
                }
                tr.write(0, ("res", 0), i + 1);
                tr.barrier();
            }
            aug = next;
            augs.push(aug);
        }
        let out = search_path_fc(fc, path, y, Some(pram));
        return Ok(ExplicitSearchResult {
            finds: out.results,
            augs,
            stats: SearchStats {
                tail_nodes: path.len().saturating_sub(1),
                used_h: None,
                ..SearchStats::default()
            },
        });
    };

    let mut stats = SearchStats {
        used_h: Some(sub.sp.h),
        ..SearchStats::default()
    };

    // Step 1: cooperative p-ary search in the root's augmented catalog.
    tr.phase("search/root");
    let mut aug = coop_lower_bound_traced(
        fc.keys(path[0]),
        &y,
        pram,
        tr,
        ("aug", path[0].idx()),
        ("query", 0),
    );
    if tr.live() {
        // Hand the located position to the hop machinery: one processor
        // copies the root search's cursor into the hop cursor cell.
        tr.read(0, ("clb-cursor", path[0].idx()), 0);
        tr.write(0, ("cursor", 0), 0);
        tr.write(0, ("res", 0), 0);
        tr.barrier();
    }
    if checked {
        audit_locate(fc.keys(path[0]), aug, y, path[0].0)?;
    }
    let mut finds = Vec::with_capacity(path.len());
    let mut augs = Vec::with_capacity(path.len());
    finds.push(fc.native_result(path[0], aug));
    augs.push(aug);
    let mut pos = 0usize;

    // Steps 2-4: hop unit by unit while the current node roots a unit.
    // `realigning` is set after a mid-search processor failure forced a
    // substructure switch: the current node need not root a unit of the new
    // forest, so we walk sequentially until the levels line up again.
    let mut realigning = false;
    while pos + 1 < path.len() {
        if let Some(c) = cancel {
            c.check()?;
        }
        // Graceful degradation: processors may have died in the rounds just
        // charged. Re-read the machine size and re-Brent-schedule the rest
        // of the search onto the survivors.
        let p_now = pram.processors();
        if checked && p_now == 0 {
            return Err(FcError::NoProcessors);
        }
        if p_now != p_sel {
            p_sel = p_now;
            match st.select(p_now) {
                Some(s) => {
                    sub = s;
                    stats.used_h = Some(s.sp.h);
                    realigning = true;
                }
                None => break, // too few survivors to hop: sequential tail
            }
        }

        let v = path[pos];
        let unit = match sub.unit_at(v) {
            Some(u) => u,
            None => {
                if realigning {
                    // One sequential bridge step toward the next unit root
                    // of the newly selected forest.
                    let w = path[pos + 1];
                    let slot = tree.child_slot(v, w);
                    let (next, walked) = if checked {
                        fc.checked_descend(v, slot, aug, y)?
                    } else {
                        fc.descend(v, slot, aug, y)
                    };
                    if tr.live() {
                        tr.phase("search/tail");
                        tr.read(0, ("bridge", v.idx() * slot_span + slot), aug);
                        for b in 0..=walked {
                            tr.read(0, ("aug", w.idx()), next + b);
                        }
                        tr.write(0, ("res", 0), pos + 1);
                        tr.write(0, ("cursor", 0), 0);
                        tr.barrier();
                    }
                    pram.seq(1 + walked);
                    aug = next;
                    finds.push(fc.native_result(w, aug));
                    augs.push(aug);
                    pos += 1;
                    stats.tail_nodes += 1;
                    continue;
                }
                break;
            }
        };
        realigning = false;

        // Step 2: move right to the nearest sampled entry, selecting U_j.
        // The paper assigns s_i processors to find it; arithmetic gives the
        // same answer, charged identically.
        let t = fc.keys(v).len();
        let j = (aug / sub.sp.s).min(unit.m as usize - 1);
        let k_sel = sub.sp.s.min(t);
        if tr.live() {
            // Step 2 replay: min(s, t) processors share the cursor and
            // probe distinct entries right of it; the one holding the
            // sampled entry publishes the selected skeleton tree.
            tr.phase("search/hop-select");
            for i in 0..k_sel {
                tr.read(i, ("cursor", 0), 0);
                tr.read(i, ("aug", v.idx()), (aug + i).min(t - 1));
            }
            let sel_cell = (j * sub.sp.s).min(t - 1);
            let winner = sel_cell.saturating_sub(aug).min(k_sel - 1);
            tr.write(winner, ("sel", 0), 0);
            tr.barrier();
        }
        pram.round(k_sel);

        // Step 3: one window per path node inside the unit, all scanned in
        // a single synchronous round.
        let mut z = 0usize;
        let mut ops = 0usize;
        let start_pos = pos;
        tr.phase("search/hop-windows");
        let mut pid_base = 0usize;
        let mut cursor_winner: Option<usize> = None;
        while pos + 1 < path.len() {
            let w = path[pos + 1];
            let slot = tree.child_slot(path[pos], w);
            let cpos = unit.children_pos[z][slot];
            if cpos == NO_CHILD {
                break;
            }
            let l = unit.level_of[cpos as usize] as u32;
            let k = unit.key(j, cpos as usize) as usize;
            let (q, r) = st.params().window(&sub.sp, l);
            let len = fc.keys(w).len();
            let lo = k.saturating_sub(q + r);
            let hi = (k + q).min(len - 1);
            ops += hi - lo + 1;
            let g = fc.find_aug(w, y);
            if tr.live() {
                // One processor per candidate position: shared reads of
                // query/selection/skeleton-key cells, private probes of the
                // candidate and its left neighbour (≤ 2 readers per cell),
                // and the unique boundary winner writes the result cell.
                let skel = ("skel", unit.root.idx());
                for (off, c) in (lo..=hi).enumerate() {
                    let pid = pid_base + off;
                    tr.read(pid, ("query", 0), 0);
                    tr.read(pid, ("sel", 0), 0);
                    tr.read(pid, skel, j * unit.nodes.len() + cpos as usize);
                    tr.read(pid, ("aug", w.idx()), c);
                    if c > 0 {
                        tr.read(pid, ("aug", w.idx()), c - 1);
                    }
                }
                if (lo..=hi).contains(&g) {
                    let winner = pid_base + (g - lo);
                    tr.write(winner, ("res", 0), pos + 1);
                    cursor_winner = Some(winner);
                }
                pid_base += hi - lo + 1;
            }
            if checked {
                audit_locate(fc.keys(w), g, y, w.0)?;
            }
            if g < lo || g > hi {
                if checked {
                    // Lemma 3 violated at search time: a corrupt skeleton
                    // key (or understated b) steered the window away from
                    // the true answer. Blame the node and abort.
                    return Err(FcError::WindowOverrun {
                        node: w.0,
                        level: l,
                        got: g,
                        lo,
                        hi,
                    });
                }
                // Lemma 3 violation (only possible with an understated b):
                // repair with a full binary search.
                stats.fallbacks += 1;
                pram.seq((usize::BITS - len.leading_zeros()) as usize);
            }
            finds.push(fc.native_result(w, g));
            augs.push(g);
            aug = g;
            z = cpos as usize;
            pos += 1;
        }
        if tr.live() {
            // The last window's winner advances the hop cursor; the round
            // closes with one synchronous barrier covering every window.
            if let Some(wpid) = cursor_winner {
                tr.write(wpid, ("cursor", 0), 0);
            }
            tr.barrier();
        }
        stats.window_ops += ops as u64;
        pram.round(ops);
        pram.seq(1); // hop bookkeeping
        stats.hops += 1;
        if pos == start_pos {
            break; // unit had no room below (clipped) — go sequential
        }
    }

    // Step 5: sequential tail through the bridges.
    while pos + 1 < path.len() {
        if let Some(c) = cancel {
            c.check()?;
        }
        let v = path[pos];
        let w = path[pos + 1];
        let slot = tree.child_slot(v, w);
        let (next, walked) = if checked {
            fc.checked_descend(v, slot, aug, y)?
        } else {
            fc.descend(v, slot, aug, y)
        };
        if tr.live() {
            tr.phase("search/tail");
            tr.read(0, ("bridge", v.idx() * slot_span + slot), aug);
            for b in 0..=walked {
                tr.read(0, ("aug", w.idx()), next + b);
            }
            tr.write(0, ("res", 0), pos + 1);
            tr.write(0, ("cursor", 0), 0);
            tr.barrier();
        }
        pram.seq(1 + walked);
        aug = next;
        finds.push(fc.native_result(w, aug));
        augs.push(aug);
        pos += 1;
        stats.tail_nodes += 1;
    }

    Ok(ExplicitSearchResult { finds, augs, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::search::search_path_naive;
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn build(height: u32, total: usize, mode: ParamMode, seed: u64) -> CoopStructure<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, &mut rng);
        CoopStructure::preprocess(tree, mode)
    }

    fn check_against_naive(
        st: &CoopStructure<i64>,
        p: usize,
        queries: usize,
        seed: u64,
    ) -> SearchStats {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = st.tree();
        let total = tree.total_catalog_size();
        let mut last = SearchStats::default();
        for _ in 0..queries {
            let leaf = gen::random_leaf(tree, &mut rng);
            let path = tree.path_from_root(leaf);
            let y = rng.gen_range(-10..(total as i64 * 16) + 10);
            let naive = search_path_naive(tree, &path, y, None);
            let mut pram = Pram::new(p, Model::Crew);
            let coop = coop_search_explicit(st, &path, y, &mut pram);
            assert_eq!(coop.finds, naive.results, "p={p} y={y}");
            last = coop.stats;
        }
        last
    }

    #[test]
    fn matches_naive_across_processor_counts_auto() {
        let st = build(9, 20_000, ParamMode::Auto, 301);
        for p in [1usize, 2, 8, 64, 512, 4096, 1 << 15, 1 << 20] {
            check_against_naive(&st, p, 25, 400 + p as u64);
        }
    }

    #[test]
    fn matches_naive_across_processor_counts_theory() {
        let st = build(9, 20_000, ParamMode::Theory, 303);
        for p in [1usize, 3, 16, 256, 1 << 12, 1 << 20] {
            check_against_naive(&st, p, 25, 500 + p as u64);
        }
    }

    #[test]
    fn lemma3_no_fallbacks_with_guaranteed_b() {
        for mode in [ParamMode::Theory, ParamMode::Auto] {
            let st = build(10, 50_000, mode, 307);
            let mut rng = SmallRng::seed_from_u64(311);
            let tree = st.tree();
            for p in [64usize, 4096, 1 << 16] {
                for _ in 0..50 {
                    let leaf = gen::random_leaf(tree, &mut rng);
                    let path = tree.path_from_root(leaf);
                    let y = rng.gen_range(0..(50_000i64 * 16));
                    let mut pram = Pram::new(p, Model::Crew);
                    let out = coop_search_explicit(&st, &path, y, &mut pram);
                    assert_eq!(out.stats.fallbacks, 0, "mode {mode:?} p {p}");
                }
            }
        }
    }

    #[test]
    fn hops_replace_tail_as_p_grows() {
        let st = build(12, 1 << 16, ParamMode::Auto, 313);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(317);
        let leaf = gen::random_leaf(tree, &mut rng);
        let path = tree.path_from_root(leaf);
        let y = 12345;
        let mut prev_tail = usize::MAX;
        for p in [1usize << 10, 1 << 14, 1 << 18] {
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_explicit(&st, &path, y, &mut pram);
            if let Some(h) = out.stats.used_h {
                assert!(h >= 1);
                assert!(out.stats.hops >= 1);
            }
            assert!(out.stats.tail_nodes <= prev_tail);
            prev_tail = prev_tail.min(out.stats.tail_nodes);
        }
    }

    #[test]
    fn steps_decrease_with_more_processors() {
        let st = build(12, 1 << 16, ParamMode::Auto, 331);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(337);
        let mut total_steps = Vec::new();
        for p in [1usize, 1 << 16, 1 << 30] {
            let mut steps = 0u64;
            let mut rng2 = SmallRng::seed_from_u64(rng.gen());
            for _ in 0..30 {
                let leaf = gen::random_leaf(tree, &mut rng2);
                let path = tree.path_from_root(leaf);
                let y = rng2.gen_range(0..(1i64 << 24));
                let mut pram = Pram::new(p, Model::Crew);
                coop_search_explicit(&st, &path, y, &mut pram);
                steps += pram.steps();
            }
            total_steps.push(steps);
        }
        assert!(
            total_steps[2] < total_steps[0],
            "p = 2^30 should beat p = 1: {total_steps:?}"
        );
    }

    #[test]
    fn skewed_catalogs_are_searched_correctly() {
        let mut rng = SmallRng::seed_from_u64(341);
        let tree = gen::balanced_binary(9, 30_000, SizeDist::SingleHeavy(0.7), &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        check_against_naive(&st, 1 << 14, 40, 347);
    }

    #[test]
    fn partial_paths_are_supported() {
        let st = build(8, 5000, ParamMode::Auto, 349);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(353);
        let leaf = gen::random_leaf(tree, &mut rng);
        let full = tree.path_from_root(leaf);
        for cut in 1..=full.len() {
            let path = &full[..cut];
            let y = 777;
            let naive = search_path_naive(tree, path, y, None);
            let mut pram = Pram::new(1 << 12, Model::Crew);
            let coop = coop_search_explicit(&st, path, y, &mut pram);
            assert_eq!(coop.finds, naive.results, "cut {cut}");
        }
    }

    #[test]
    fn boundary_queries() {
        let st = build(8, 5000, ParamMode::Auto, 359);
        let tree = st.tree();
        let leaf = tree.leaves()[0];
        let path = tree.path_from_root(leaf);
        for y in [i64::MIN, -1, 0, i64::MAX - 1] {
            let naive = search_path_naive(tree, &path, y, None);
            let mut pram = Pram::new(1 << 12, Model::Crew);
            let coop = coop_search_explicit(&st, &path, y, &mut pram);
            assert_eq!(coop.finds, naive.results, "y {y}");
        }
    }

    #[test]
    fn traced_search_matches_untraced_and_is_crew_clean() {
        use fc_pram::ShadowMem;
        let st = build(9, 20_000, ParamMode::Auto, 401);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(403);
        for p in [1usize, 64, 4096, 1 << 16] {
            for _ in 0..10 {
                let leaf = gen::random_leaf(tree, &mut rng);
                let path = tree.path_from_root(leaf);
                let y = rng.gen_range(-10..(20_000i64 * 16) + 10);
                let mut pram = Pram::new(p, Model::Crew);
                let plain = coop_search_explicit(&st, &path, y, &mut pram);
                let mut pram_t = Pram::new(p, Model::Crew);
                let mut shadow = ShadowMem::new(Model::Crew);
                let traced = coop_search_explicit_traced(&st, &path, y, &mut pram_t, &mut shadow);
                assert_eq!(traced.finds, plain.finds, "p={p} y={y}");
                assert_eq!(traced.augs, plain.augs, "p={p} y={y}");
                assert_eq!(traced.stats, plain.stats, "p={p} y={y}");
                assert_eq!(
                    pram_t.steps(),
                    pram.steps(),
                    "traced replay must not change cost"
                );
                assert_eq!(pram_t.rounds(), pram.rounds());
                assert!(
                    shadow.finish(),
                    "CREW violation at p={p} y={y}: {:?}",
                    shadow.violations().first()
                );
            }
        }
    }

    #[test]
    fn traced_search_is_the_erew_canary_for_p_above_one() {
        use fc_pram::ShadowMem;
        let st = build(12, 64_000, ParamMode::Auto, 409);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(419);
        let leaf = gen::random_leaf(tree, &mut rng);
        let path = tree.path_from_root(leaf);

        // p = 1: a single processor breaks no EREW rule.
        let mut pram = Pram::new(1, Model::Crew);
        let mut shadow = ShadowMem::new(Model::Erew);
        coop_search_explicit_traced(&st, &path, 4321, &mut pram, &mut shadow);
        assert!(shadow.finish(), "sequential search must be EREW-clean");

        // p > 1: the cooperative root search shares the query cell — the
        // canary violation the analyzer gate requires to be detectable.
        let mut pram = Pram::new(1 << 20, Model::Crew);
        let mut shadow = ShadowMem::new(Model::Erew);
        let out = coop_search_explicit_traced(&st, &path, 4321, &mut pram, &mut shadow);
        assert!(out.stats.used_h.is_some(), "hop path must engage");
        assert!(!shadow.finish(), "CREW search must violate EREW");
        let v = &shadow.violations()[0];
        assert!(
            v.phase.starts_with("search/"),
            "blame must name a search phase, got {}",
            v.phase
        );
        assert!(!v.pairs.is_empty());
        let repro = shadow.repro().expect("first violation has a repro");
        assert!(repro.pids.len() >= 2);
        assert!(!repro.trace.is_empty());
    }

    #[test]
    #[should_panic(expected = "start at the root")]
    fn path_must_start_at_root() {
        let st = build(6, 1000, ParamMode::Auto, 361);
        let tree = st.tree();
        let leaf = tree.leaves()[0];
        let path = tree.path_from_root(leaf);
        let mut pram = Pram::new(64, Model::Crew);
        let _ = coop_search_explicit(&st, &path[1..], 5, &mut pram);
    }
}
