//! Batched queries on real cores — the public batch API.
//!
//! The PRAM cost model measures what the paper bounds; this module is the
//! physical counterpart for throughput-oriented users: a batch of
//! independent searches executed with rayon, one task per query. (The
//! *intra*-query parallelism of the paper targets latency on a PRAM;
//! inter-query parallelism is what a multicore actually exploits — both
//! views are reported by the Criterion benches.)
//!
//! Three entry points, all re-exported at the crate root:
//!
//! * [`explicit_batch`] / [`explicit_batch_seq`] — raw batched descent,
//!   returning the full [`ExplicitSearchResult`] plus per-query step
//!   counts (experiment-grade output).
//! * [`explicit_batch_verified`] — the serving-grade variant used by the
//!   `fc-shard` scatter/gather router for its per-shard gather leg: every
//!   query runs the *checked, cancellable* descent and each per-node
//!   answer is re-verified against the authoritative native catalog, so a
//!   batch entry is either oracle-correct on the structure it ran against
//!   or a typed [`FcError`] — never silently wrong.
//! * [`implicit_batch`] — batched implicit searches with pluggable branch
//!   oracles.

use crate::cancel::CancelToken;
use crate::explicit::{
    coop_search_explicit, coop_search_explicit_cancellable, ExplicitSearchResult,
};
use crate::implicit::{coop_search_implicit, BranchOracle, ImplicitSearchResult};
use crate::structure::CoopStructure;
use fc_catalog::{CatalogKey, FcError, NodeId};
use fc_pram::cost::{Model, Pram};
use rayon::prelude::*;

/// Run a batch of explicit searches in parallel on the rayon pool. Each
/// query gets its own `p`-processor cost model; the returned step counts
/// are per query.
///
/// Queries are `(leaf, y)` pairs; paths are derived from the leaves.
pub fn explicit_batch<K: CatalogKey>(
    st: &CoopStructure<K>,
    queries: &[(NodeId, K)],
    p: usize,
) -> Vec<(ExplicitSearchResult, u64)> {
    queries
        .par_iter()
        .map(|&(leaf, y)| {
            let path = st.tree().path_from_root(leaf);
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_explicit(st, &path, y, &mut pram);
            (out, pram.steps())
        })
        .collect()
}

/// Sequential reference for [`explicit_batch`] (used by tests/benches).
pub fn explicit_batch_seq<K: CatalogKey>(
    st: &CoopStructure<K>,
    queries: &[(NodeId, K)],
    p: usize,
) -> Vec<(ExplicitSearchResult, u64)> {
    queries
        .iter()
        .map(|&(leaf, y)| {
            let path = st.tree().path_from_root(leaf);
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_explicit(st, &path, y, &mut pram);
            (out, pram.steps())
        })
        .collect()
}

/// Per-query outcome of [`explicit_batch_verified`]: the smallest native
/// catalog entry `>= y` at every node of the query's root-to-leaf path
/// (`None` = `+∞`), or the structural error that was detected.
pub type VerifiedAnswers<K> = Result<Vec<Option<K>>, FcError>;

/// Run a batch of *checked, verified* explicit searches — the gather-leg
/// primitive of the `fc-shard` scatter/gather router.
///
/// Each query runs [`coop_search_explicit_cancellable`] (all structural
/// guards active, `cancel` polled at every descent step) and every
/// per-node answer is then re-verified against the native catalog with an
/// independent binary search. The contract matches the serving layer's:
/// an `Ok` entry equals the sequential oracle on `st`, any detected
/// inconsistency (or cancellation) is a typed [`FcError`] — never a
/// silently wrong answer.
///
/// Queries are `(leaf, y)` pairs; paths are derived from the leaves.
/// Results are positionally aligned with `queries`.
pub fn explicit_batch_verified<K: CatalogKey>(
    st: &CoopStructure<K>,
    queries: &[(NodeId, K)],
    p: usize,
    cancel: &CancelToken,
) -> Vec<VerifiedAnswers<K>> {
    queries
        .par_iter()
        .map(|&(leaf, y)| verified_one(st, leaf, y, p, cancel))
        .collect()
}

fn verified_one<K: CatalogKey>(
    st: &CoopStructure<K>,
    leaf: NodeId,
    y: K,
    p: usize,
    cancel: &CancelToken,
) -> VerifiedAnswers<K> {
    let path = st.tree().path_from_root(leaf);
    let mut pram = Pram::new(p.max(1), Model::Crew);
    let res = coop_search_explicit_cancellable(st, &path, y, &mut pram, cancel)?;
    let mut answers = Vec::with_capacity(path.len());
    for (&node, find) in path.iter().zip(res.finds.iter()) {
        let cat = st.tree().catalog(node);
        let ans = cat.get(find.native_idx as usize).copied();
        if cat.get(cat.partition_point(|k| *k < y)).copied() != ans {
            return Err(FcError::CorruptCatalog {
                node: node.0,
                entry: find.native_idx as usize,
            });
        }
        answers.push(ans);
    }
    Ok(answers)
}

/// Run a batch of implicit searches in parallel. The oracle must be
/// `Sync`; each query gets its own cost model.
pub fn implicit_batch<K: CatalogKey, O: BranchOracle<K> + Sync>(
    st: &CoopStructure<K>,
    oracles: &[(O, K)],
    p: usize,
) -> Vec<(ImplicitSearchResult, u64)> {
    oracles
        .par_iter()
        .map(|(oracle, y)| {
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_implicit(st, oracle, *y, &mut pram);
            (out, pram.steps())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use fc_catalog::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        let mut rng = SmallRng::seed_from_u64(701);
        let tree = gen::balanced_binary(9, 20_000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let queries: Vec<(NodeId, i64)> = (0..200)
            .map(|_| {
                (
                    gen::random_leaf(st.tree(), &mut rng),
                    rng.gen_range(0..(20_000i64 * 16)),
                )
            })
            .collect();
        let par = explicit_batch(&st, &queries, 1 << 16);
        let seq = explicit_batch_seq(&st, &queries, 1 << 16);
        assert_eq!(par.len(), seq.len());
        for ((a, sa), (b, sb)) in par.iter().zip(&seq) {
            assert_eq!(a.finds, b.finds);
            assert_eq!(sa, sb, "step accounting is deterministic");
        }
    }

    fn oracle(st: &CoopStructure<i64>, leaf: NodeId, y: i64) -> Vec<Option<i64>> {
        st.tree()
            .path_from_root(leaf)
            .iter()
            .map(|&node| {
                let cat = st.tree().catalog(node);
                cat.get(cat.partition_point(|k| *k < y)).copied()
            })
            .collect()
    }

    #[test]
    fn verified_batch_matches_the_sequential_oracle() {
        let mut rng = SmallRng::seed_from_u64(709);
        let tree = gen::balanced_binary(7, 6000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let queries: Vec<(NodeId, i64)> = (0..150)
            .map(|_| {
                (
                    gen::random_leaf(st.tree(), &mut rng),
                    rng.gen_range(-5..(6000i64 * 16 + 5)),
                )
            })
            .collect();
        let cancel = CancelToken::new();
        let out = explicit_batch_verified(&st, &queries, 1 << 12, &cancel);
        assert_eq!(out.len(), queries.len());
        for (res, &(leaf, y)) in out.iter().zip(&queries) {
            let got = res.as_ref().expect("clean structure must verify");
            assert_eq!(*got, oracle(&st, leaf, y));
        }
    }

    #[test]
    fn verified_batch_agrees_with_raw_batch_finds() {
        let mut rng = SmallRng::seed_from_u64(711);
        let tree = gen::balanced_binary(6, 2000, SizeDist::LeafHeavy, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let queries: Vec<(NodeId, i64)> = (0..60)
            .map(|_| {
                (
                    gen::random_leaf(st.tree(), &mut rng),
                    rng.gen_range(0..(2000i64 * 16)),
                )
            })
            .collect();
        let cancel = CancelToken::new();
        let verified = explicit_batch_verified(&st, &queries, 256, &cancel);
        let raw = explicit_batch(&st, &queries, 256);
        for ((v, (r, _)), &(leaf, _)) in verified.iter().zip(&raw).zip(&queries) {
            let path = st.tree().path_from_root(leaf);
            let from_raw: Vec<Option<i64>> = path
                .iter()
                .zip(&r.finds)
                .map(|(&node, f)| st.tree().catalog(node).get(f.native_idx as usize).copied())
                .collect();
            assert_eq!(v.as_ref().expect("clean"), &from_raw);
        }
    }

    #[test]
    fn verified_batch_cancels_instead_of_answering() {
        let mut rng = SmallRng::seed_from_u64(713);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let queries: Vec<(NodeId, i64)> = (0..10)
            .map(|_| (gen::random_leaf(st.tree(), &mut rng), 5i64))
            .collect();
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = explicit_batch_verified(&st, &queries, 64, &cancel);
        for res in &out {
            assert!(
                matches!(res, Err(fc_catalog::FcError::Cancelled)),
                "{res:?}"
            );
        }
    }

    #[test]
    fn verified_empty_batch() {
        let mut rng = SmallRng::seed_from_u64(715);
        let tree = gen::balanced_binary(4, 200, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let cancel = CancelToken::new();
        assert!(explicit_batch_verified(&st, &[], 64, &cancel).is_empty());
    }

    #[test]
    fn empty_batch() {
        let mut rng = SmallRng::seed_from_u64(703);
        let tree = gen::balanced_binary(4, 200, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        assert!(explicit_batch(&st, &[], 64).is_empty());
    }

    #[test]
    fn implicit_batch_reaches_targets() {
        use crate::implicit::ConsistentLeafOracle;
        let mut rng = SmallRng::seed_from_u64(707);
        let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        // LeafOracleAdapter borrows the tree and the oracle, both Sync, so
        // batches work directly.
        use crate::implicit::LeafOracleAdapter;
        let targets: Vec<NodeId> = (0..20)
            .map(|_| gen::random_leaf(st.tree(), &mut rng))
            .collect();
        let oracles: Vec<ConsistentLeafOracle> = targets
            .iter()
            .map(|&t| ConsistentLeafOracle::new(st.tree(), t))
            .collect();
        let pairs: Vec<(LeafOracleAdapter<'_, i64>, i64)> = oracles
            .iter()
            .map(|o| (LeafOracleAdapter::new(st.tree(), o), 777i64))
            .collect();
        let out = implicit_batch(&st, &pairs, 1 << 14);
        for ((res, _), &target) in out.iter().zip(&targets) {
            assert_eq!(*res.path.last().unwrap(), target);
        }
    }
}
