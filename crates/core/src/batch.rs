//! Batched queries on real cores.
//!
//! The PRAM cost model measures what the paper bounds; this module is the
//! physical counterpart for throughput-oriented users: a batch of
//! independent searches executed with rayon, one task per query. (The
//! *intra*-query parallelism of the paper targets latency on a PRAM;
//! inter-query parallelism is what a multicore actually exploits — both
//! views are reported by the Criterion benches.)

use crate::explicit::{coop_search_explicit, ExplicitSearchResult};
use crate::implicit::{coop_search_implicit, BranchOracle, ImplicitSearchResult};
use crate::structure::CoopStructure;
use fc_catalog::{CatalogKey, NodeId};
use fc_pram::cost::{Model, Pram};
use rayon::prelude::*;

/// Run a batch of explicit searches in parallel on the rayon pool. Each
/// query gets its own `p`-processor cost model; the returned step counts
/// are per query.
///
/// Queries are `(leaf, y)` pairs; paths are derived from the leaves.
pub fn explicit_batch<K: CatalogKey>(
    st: &CoopStructure<K>,
    queries: &[(NodeId, K)],
    p: usize,
) -> Vec<(ExplicitSearchResult, u64)> {
    queries
        .par_iter()
        .map(|&(leaf, y)| {
            let path = st.tree().path_from_root(leaf);
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_explicit(st, &path, y, &mut pram);
            (out, pram.steps())
        })
        .collect()
}

/// Sequential reference for [`explicit_batch`] (used by tests/benches).
pub fn explicit_batch_seq<K: CatalogKey>(
    st: &CoopStructure<K>,
    queries: &[(NodeId, K)],
    p: usize,
) -> Vec<(ExplicitSearchResult, u64)> {
    queries
        .iter()
        .map(|&(leaf, y)| {
            let path = st.tree().path_from_root(leaf);
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_explicit(st, &path, y, &mut pram);
            (out, pram.steps())
        })
        .collect()
}

/// Run a batch of implicit searches in parallel. The oracle must be
/// `Sync`; each query gets its own cost model.
pub fn implicit_batch<K: CatalogKey, O: BranchOracle<K> + Sync>(
    st: &CoopStructure<K>,
    oracles: &[(O, K)],
    p: usize,
) -> Vec<(ImplicitSearchResult, u64)> {
    oracles
        .par_iter()
        .map(|(oracle, y)| {
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_implicit(st, oracle, *y, &mut pram);
            (out, pram.steps())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use fc_catalog::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        let mut rng = SmallRng::seed_from_u64(701);
        let tree = gen::balanced_binary(9, 20_000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let queries: Vec<(NodeId, i64)> = (0..200)
            .map(|_| {
                (
                    gen::random_leaf(st.tree(), &mut rng),
                    rng.gen_range(0..(20_000i64 * 16)),
                )
            })
            .collect();
        let par = explicit_batch(&st, &queries, 1 << 16);
        let seq = explicit_batch_seq(&st, &queries, 1 << 16);
        assert_eq!(par.len(), seq.len());
        for ((a, sa), (b, sb)) in par.iter().zip(&seq) {
            assert_eq!(a.finds, b.finds);
            assert_eq!(sa, sb, "step accounting is deterministic");
        }
    }

    #[test]
    fn empty_batch() {
        let mut rng = SmallRng::seed_from_u64(703);
        let tree = gen::balanced_binary(4, 200, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        assert!(explicit_batch(&st, &[], 64).is_empty());
    }

    #[test]
    fn implicit_batch_reaches_targets() {
        use crate::implicit::ConsistentLeafOracle;
        let mut rng = SmallRng::seed_from_u64(707);
        let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        // LeafOracleAdapter borrows the tree and the oracle, both Sync, so
        // batches work directly.
        use crate::implicit::LeafOracleAdapter;
        let targets: Vec<NodeId> = (0..20)
            .map(|_| gen::random_leaf(st.tree(), &mut rng))
            .collect();
        let oracles: Vec<ConsistentLeafOracle> = targets
            .iter()
            .map(|&t| ConsistentLeafOracle::new(st.tree(), t))
            .collect();
        let pairs: Vec<(LeafOracleAdapter<'_, i64>, i64)> = oracles
            .iter()
            .map(|o| (LeafOracleAdapter::new(st.tree(), o), 777i64))
            .collect();
        let out = implicit_batch(&st, &pairs, 1 << 14);
        for ((res, _), &target) in out.iter().zip(&targets) {
            assert_eq!(*res.path.last().unwrap(), target);
        }
    }
}
