//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] combines an explicit cancel flag (shared, thread-safe)
//! with an optional wall-clock deadline. Search loops poll it at descent
//! granularity — once per hop and once per sequential tail step — so a
//! cancelled query unwinds within `O(1)` descent steps instead of running
//! to completion. Cancellation surfaces as [`FcError::Cancelled`], never as
//! a partial or silently wrong answer.
//!
//! The deadline check calls [`Instant::now`] at most once per poll; with
//! path lengths of `O(log n)` the overhead is a few dozen clock reads per
//! query, which the serving layer (`fc-serve`) amortizes against its
//! per-query bookkeeping anyway.

use fc_catalog::FcError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation handle: explicit flag + optional deadline.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag, so a
/// service can hand one clone to the worker running the query and keep one
/// to cancel from the outside.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own (cancel explicitly via
    /// [`CancelToken::cancel`]).
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that fires once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// A token that fires `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Request cancellation: every clone observes it on its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once the flag is set or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Poll helper for search loops: `Err(FcError::Cancelled)` once fired.
    #[inline]
    pub fn check(&self) -> Result<(), FcError> {
        if self.is_cancelled() {
            Err(FcError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(FcError::Cancelled));
    }

    #[test]
    fn past_deadline_fires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }
}
