//! General trees: long explicit paths (Theorem 2) and degree-`d` trees
//! (Theorem 3), Section 2.4.
//!
//! **Theorem 2.** For a bounded-degree tree and an explicit search path of
//! length `k`, partition the path into subpaths of length `log n`, give
//! each subpath `p^ε` processors, and run groups of `p^(1-ε)` subpaths
//! concurrently; a subpath needs no information from its predecessor
//! because its head entry is found by direct cooperative binary search.
//! Total time `O((log n)/log p + k/(p^(1-ε) log p))`.
//!
//! **Theorem 3.** Degree-`d` nodes are expanded into `log d` binary levels
//! ([`binarize`]); search time gains a `log d` factor.

use crate::explicit::SearchStats;
use crate::skeleton::NO_CHILD;
use crate::structure::CoopStructure;
use fc_catalog::cascade::Find;
use fc_catalog::{CatalogKey, CatalogTree, NodeId};
use fc_pram::cost::Pram;
use fc_pram::primitives::coop_lower_bound;

/// Result of a long-path cooperative search.
#[derive(Debug, Clone)]
pub struct LongPathResult {
    /// `finds[i] = find(y, path[i])`.
    pub finds: Vec<Find>,
    /// Subpath length used (`L ~ log n`).
    pub subpath_len: usize,
    /// Concurrent subpaths per group (`~ p^(1-ε)`).
    pub group_size: usize,
    /// Processors per subpath (`~ p^ε`).
    pub p_per_subpath: usize,
    /// Number of sequential group phases.
    pub groups: usize,
}

/// Theorem 2 search: locate `y` along an arbitrary downward `path` (which
/// need not start at the root) of a bounded-degree tree, with `p` processors
/// split as `p^(1-ε)` concurrent subpaths × `p^ε` processors each.
///
/// `pram` carries the total processor count `p`; `eps` is the paper's `ε`
/// (any constant in `(0, 1]`).
pub fn coop_search_long_path<K: CatalogKey>(
    st: &CoopStructure<K>,
    path: &[NodeId],
    y: K,
    eps: f64,
    pram: &mut Pram,
) -> LongPathResult {
    assert!(!path.is_empty());
    assert!(eps > 0.0 && eps <= 1.0, "epsilon must be in (0, 1]");
    let p = pram.processors();
    let n = st.tree().total_catalog_size().max(2);
    let subpath_len = ((usize::BITS - n.leading_zeros()) as usize).max(1);
    let p_per_subpath = ((p as f64).powf(eps).floor() as usize).max(1);
    let group_size = (p / p_per_subpath).max(1);

    // Cut the path into subpaths of length subpath_len.
    let subpaths: Vec<&[NodeId]> = path.chunks(subpath_len).collect();
    let groups = subpaths.len().div_ceil(group_size);

    let mut finds = Vec::with_capacity(path.len());
    for group in subpaths.chunks(group_size) {
        // All subpaths of a group run concurrently: fork one counter per
        // subpath at p^eps processors, join with max.
        let mut branch_prams = Vec::with_capacity(group.len());
        for sub in group {
            let mut bp = pram.with_processors(p_per_subpath);
            let sub_finds = search_subpath(st, sub, y, &mut bp);
            finds.extend(sub_finds);
            branch_prams.push(bp);
        }
        pram.join_max(branch_prams);
    }

    LongPathResult {
        finds,
        subpath_len,
        group_size,
        p_per_subpath,
        groups,
    }
}

/// Search one subpath: cooperative binary search at its head, then hop
/// through units (descending sequentially to the next unit-root boundary
/// first), sequential below the truncation.
fn search_subpath<K: CatalogKey>(
    st: &CoopStructure<K>,
    path: &[NodeId],
    y: K,
    pram: &mut Pram,
) -> Vec<Find> {
    let fc = st.cascade();
    let tree = st.tree();
    let mut finds = Vec::with_capacity(path.len());

    // Head: direct cooperative binary search in the head's augmented
    // catalog (no information needed from the previous subpath).
    let mut aug = coop_lower_bound(fc.keys(path[0]), &y, pram);
    finds.push(fc.native_result(path[0], aug));
    let mut pos = 0usize;

    let sub = st.select(pram.processors());

    // Align to the next unit-root boundary sequentially (at most h-1
    // levels), then hop while units are available.
    if let Some(sub) = sub {
        loop {
            // Sequential alignment steps.
            while pos + 1 < path.len() && sub.unit_at(path[pos]).is_none() {
                let (next, walked) =
                    fc.descend(path[pos], tree.child_slot(path[pos], path[pos + 1]), aug, y);
                pram.seq(1 + walked);
                aug = next;
                pos += 1;
                finds.push(fc.native_result(path[pos], aug));
                if tree.depth(path[pos]).is_multiple_of(sub.sp.h) {
                    break;
                }
            }
            let Some(unit) = sub.unit_at(path[pos]) else {
                break;
            };
            if pos + 1 >= path.len() {
                break;
            }
            // One hop (Step 2 + Step 3, as in the explicit search).
            let t = fc.keys(path[pos]).len();
            let j = (aug / sub.sp.s).min(unit.m as usize - 1);
            pram.round(sub.sp.s.min(t));
            let mut z = 0usize;
            let mut ops = 0usize;
            let start = pos;
            while pos + 1 < path.len() {
                let w = path[pos + 1];
                let slot = tree.child_slot(path[pos], w);
                let cpos = unit.children_pos[z][slot];
                if cpos == NO_CHILD {
                    break;
                }
                let l = unit.level_of[cpos as usize] as u32;
                let k = unit.key(j, cpos as usize) as usize;
                let (q, r) = st.params().window(&sub.sp, l);
                let len = fc.keys(w).len();
                let lo = k.saturating_sub(q + r);
                let hi = (k + q).min(len - 1);
                ops += hi - lo + 1;
                let g = fc.find_aug(w, y);
                if g < lo || g > hi {
                    pram.seq((usize::BITS - len.leading_zeros()) as usize);
                }
                finds.push(fc.native_result(w, g));
                aug = g;
                z = cpos as usize;
                pos += 1;
            }
            pram.round(ops);
            pram.seq(1);
            if pos == start {
                break;
            }
        }
    }

    // Sequential remainder.
    while pos + 1 < path.len() {
        let (next, walked) =
            fc.descend(path[pos], tree.child_slot(path[pos], path[pos + 1]), aug, y);
        pram.seq(1 + walked);
        aug = next;
        pos += 1;
        finds.push(fc.native_result(path[pos], aug));
    }
    finds
}

/// Result of a subtree search (open problem 3 baseline).
#[derive(Debug, Clone)]
pub struct SubtreeSearchResult {
    /// Nodes of the searched subtree in BFS order from its root.
    pub nodes: Vec<NodeId>,
    /// `finds[i] = find(y, nodes[i])`.
    pub finds: Vec<Find>,
}

/// Generalized search paths — the paper's **open problem 3**: locate `y`
/// in the catalogs of *every* node of the subtree rooted at `root`.
///
/// This is the natural baseline the open problem asks to beat: descend
/// from the root through the bridges (one `O(1)` hop per edge), splitting
/// the processors between the two children at every branching, so sibling
/// subtrees are searched concurrently. With `m` subtree nodes this gives
/// `O(log n + m/p + depth)` steps — work-optimal, but the depth term is
/// the whole subtree height rather than `(log m)/log p`; closing that gap
/// cooperatively is exactly what the paper leaves open.
pub fn coop_search_subtree<K: CatalogKey>(
    st: &CoopStructure<K>,
    root: NodeId,
    y: K,
    pram: &mut Pram,
) -> SubtreeSearchResult {
    let fc = st.cascade();
    let tree = st.tree();

    // Entry: locate y at the subtree root (cooperative binary search from
    // scratch — the subtree root may be anywhere).
    let root_aug = coop_lower_bound(fc.keys(root), &y, pram);

    // BFS with processor splitting: each frontier level is one concurrent
    // round; a node's children share its processors.
    let mut nodes = vec![root];
    let mut finds = vec![fc.native_result(root, root_aug)];
    let mut frontier: Vec<(NodeId, usize)> = vec![(root, root_aug)];
    while !frontier.is_empty() {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        let mut level_ops = 0usize;
        for &(v, aug) in &frontier {
            for (slot, &c) in tree.children(v).iter().enumerate() {
                let (ca, walked) = fc.descend(v, slot, aug, y);
                level_ops += 1 + walked;
                nodes.push(c);
                finds.push(fc.native_result(c, ca));
                next.push((c, ca));
            }
        }
        pram.round(level_ops);
        frontier = next;
    }
    SubtreeSearchResult { nodes, finds }
}

/// Map of a binarized tree back to its original.
#[derive(Debug, Clone)]
pub struct Binarized<K> {
    /// The binary tree: original nodes keep their catalogs; inserted gadget
    /// nodes have empty catalogs.
    pub tree: CatalogTree<K>,
    /// `old_to_new[i]` = arena index of original node `i` in the new tree.
    pub old_to_new: Vec<u32>,
    /// `new_to_old[j]` = original node index, or `u32::MAX` for gadget
    /// nodes.
    pub new_to_old: Vec<u32>,
}

/// Sentinel in [`Binarized::new_to_old`] for inserted gadget nodes.
pub const GADGET: u32 = u32::MAX;

/// Replace every degree-`d` node by a balanced binary splitter of dummy
/// nodes (`ceil(log2 d)` extra levels), as Theorem 3 prescribes. Preserves
/// child order; gadget nodes carry empty catalogs.
pub fn binarize<K: CatalogKey>(tree: &CatalogTree<K>) -> Binarized<K> {
    let mut parents: Vec<Option<u32>> = Vec::new();
    let mut catalogs: Vec<Vec<K>> = Vec::new();
    let mut old_to_new = vec![0u32; tree.len()];
    let mut new_to_old: Vec<u32> = Vec::new();

    // Emit the root, then process a queue of (old node, new index).
    parents.push(None);
    catalogs.push(tree.catalog(tree.root()).to_vec());
    new_to_old.push(tree.root().0);
    old_to_new[tree.root().idx()] = 0;

    let mut queue = std::collections::VecDeque::new();
    queue.push_back((tree.root(), 0u32));
    while let Some((old, new_idx)) = queue.pop_front() {
        let children = tree.children(old);
        // Work list of (parent_new, child_range) to split binary.
        let mut work = vec![(new_idx, 0usize, children.len())];
        while let Some((pn, lo, hi)) = work.pop() {
            let cnt = hi - lo;
            if cnt == 0 {
                continue;
            }
            if cnt <= 2 {
                for &c in &children[lo..hi] {
                    let idx = parents.len() as u32;
                    parents.push(Some(pn));
                    catalogs.push(tree.catalog(c).to_vec());
                    new_to_old.push(c.0);
                    old_to_new[c.idx()] = idx;
                    queue.push_back((c, idx));
                }
            } else {
                // Two gadget nodes splitting the range in half.
                let mid = lo + cnt / 2;
                for (a, b) in [(lo, mid), (mid, hi)] {
                    if b - a == 1 {
                        let c = children[a];
                        let idx = parents.len() as u32;
                        parents.push(Some(pn));
                        catalogs.push(tree.catalog(c).to_vec());
                        new_to_old.push(c.0);
                        old_to_new[c.idx()] = idx;
                        queue.push_back((c, idx));
                    } else {
                        let idx = parents.len() as u32;
                        parents.push(Some(pn));
                        catalogs.push(Vec::new());
                        new_to_old.push(GADGET);
                        work.push((idx, a, b));
                    }
                }
            }
        }
    }

    Binarized {
        tree: CatalogTree::from_parents(parents, catalogs),
        old_to_new,
        new_to_old,
    }
}

/// Convenience: run an explicit cooperative search for `y` toward original
/// leaf `old_leaf` of the pre-binarization tree, returning finds projected
/// back onto the original path nodes.
pub fn coop_search_binarized<K: CatalogKey>(
    st: &CoopStructure<K>,
    bin: &Binarized<K>,
    old_leaf_new_idx: u32,
    y: K,
    pram: &mut Pram,
) -> (Vec<Find>, SearchStats) {
    let path = st.tree().path_from_root(NodeId(old_leaf_new_idx));
    let out = crate::explicit::coop_search_explicit(st, &path, y, pram);
    let finds = path
        .iter()
        .zip(&out.finds)
        .filter(|(id, _)| bin.new_to_old[id.idx()] != GADGET)
        .map(|(_, f)| *f)
        .collect();
    (finds, out.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::search::search_path_naive;
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn long_path_matches_naive() {
        let mut rng = SmallRng::seed_from_u64(501);
        let tree = gen::path(300, 9000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let tree = st.tree();
        let leaf = tree.leaves()[0];
        let path = tree.path_from_root(leaf);
        for p in [1usize, 64, 4096, 1 << 16] {
            for _ in 0..5 {
                let y = rng.gen_range(-10..9000 * 16 + 10);
                let naive = search_path_naive(tree, &path, y, None);
                let mut pram = Pram::new(p, Model::Crew);
                let out = coop_search_long_path(&st, &path, y, 0.5, &mut pram);
                assert_eq!(out.finds, naive.results, "p {p} y {y}");
            }
        }
    }

    #[test]
    fn long_path_groups_cut_steps() {
        let mut rng = SmallRng::seed_from_u64(503);
        let tree = gen::path(1024, 1 << 14, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let tree_ref = st.tree();
        let leaf = tree_ref.leaves()[0];
        let path = tree_ref.path_from_root(leaf);
        let y = 777;
        let mut steps = Vec::new();
        for p in [1usize, 256, 1 << 16] {
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_long_path(&st, &path, y, 0.5, &mut pram);
            assert_eq!(out.finds.len(), path.len());
            steps.push(pram.steps());
        }
        assert!(steps[2] < steps[0], "steps {steps:?}");
        assert!(steps[1] < steps[0], "steps {steps:?}");
    }

    #[test]
    fn long_path_epsilon_tradeoff_reported() {
        let mut rng = SmallRng::seed_from_u64(505);
        let tree = gen::path(256, 4000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let tree_ref = st.tree();
        let path = tree_ref.path_from_root(tree_ref.leaves()[0]);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let out = coop_search_long_path(&st, &path, 5, 0.25, &mut pram);
        // p^0.25 of 4096 = 8 processors per subpath.
        assert_eq!(out.p_per_subpath, 8);
        assert_eq!(out.group_size, 4096 / 8);
        assert_eq!(
            out.groups,
            path.chunks(out.subpath_len)
                .count()
                .div_ceil(out.group_size)
        );
    }

    #[test]
    fn subtree_search_matches_naive_everywhere() {
        let mut rng = SmallRng::seed_from_u64(521);
        let tree = gen::balanced_binary(8, 10_000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let tree = st.tree();
        for _ in 0..5 {
            // A random internal node as subtree root.
            let root = NodeId(rng.gen_range(0..tree.len() as u32));
            let y = rng.gen_range(-10..10_000 * 16 + 10);
            let mut pram = Pram::new(1 << 14, Model::Crew);
            let out = coop_search_subtree(&st, root, y, &mut pram);
            assert_eq!(out.nodes.len(), out.finds.len());
            for (node, find) in out.nodes.iter().zip(&out.finds) {
                let naive = search_path_naive(tree, &[*node], y, None);
                assert_eq!(*find, naive.results[0], "node {node:?}");
            }
            // Every descendant of root appears exactly once.
            let expect: usize = tree
                .ids()
                .filter(|&id| {
                    let mut cur = Some(id);
                    while let Some(v) = cur {
                        if v == root {
                            return true;
                        }
                        cur = tree.parent(v);
                    }
                    false
                })
                .count();
            assert_eq!(out.nodes.len(), expect);
        }
    }

    #[test]
    fn subtree_search_splits_processors() {
        let mut rng = SmallRng::seed_from_u64(523);
        let tree = gen::balanced_binary(11, 1 << 15, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let root = st.tree().root();
        let y = 777;
        let mut p1 = Pram::new(1, Model::Crew);
        coop_search_subtree(&st, root, y, &mut p1);
        let mut pbig = Pram::new(1 << 16, Model::Crew);
        coop_search_subtree(&st, root, y, &mut pbig);
        // The m/p term vanishes; only the depth term remains.
        assert!(
            pbig.steps() * 8 < p1.steps(),
            "big-p {} vs p=1 {}",
            pbig.steps(),
            p1.steps()
        );
    }

    #[test]
    fn binarize_preserves_catalogs_and_order() {
        let mut rng = SmallRng::seed_from_u64(507);
        let tree = gen::dary(5, 3, 4000, &mut rng);
        let bin = binarize(&tree);
        assert!(bin.tree.max_degree() <= 2);
        // Every original node appears with its catalog.
        for id in tree.ids() {
            let new = NodeId(bin.old_to_new[id.idx()]);
            assert_eq!(bin.tree.catalog(new), tree.catalog(id));
            assert_eq!(bin.new_to_old[new.idx()], id.0);
        }
        // Totals match (gadgets are empty).
        assert_eq!(bin.tree.total_catalog_size(), tree.total_catalog_size());
        // Left-to-right leaf order is preserved.
        let old_leaves: Vec<u32> = tree.leaves().iter().map(|l| l.0).collect();
        let new_leaves: Vec<u32> = bin
            .tree
            .leaves()
            .iter()
            .map(|l| bin.new_to_old[l.idx()])
            .collect();
        let mut new_leaves_nongadget: Vec<u32> =
            new_leaves.into_iter().filter(|&x| x != GADGET).collect();
        let mut old_sorted = old_leaves.clone();
        old_sorted.sort_unstable();
        new_leaves_nongadget.sort_unstable();
        assert_eq!(old_sorted, new_leaves_nongadget);
    }

    #[test]
    fn binarize_depth_penalty_is_log_d() {
        let mut rng = SmallRng::seed_from_u64(509);
        for d in [3usize, 4, 8, 16] {
            let tree = gen::dary(d, 2, 1000, &mut rng);
            let bin = binarize(&tree);
            let lg_d = usize::BITS - (d - 1).leading_zeros();
            assert!(
                bin.tree.height() <= tree.height() * (lg_d + 1),
                "d {d}: new height {} old {} lg_d {lg_d}",
                bin.tree.height(),
                tree.height()
            );
        }
    }

    #[test]
    fn binarized_search_matches_original_naive() {
        let mut rng = SmallRng::seed_from_u64(511);
        let tree = gen::dary(6, 3, 8000, &mut rng);
        let bin = binarize(&tree);
        let st = CoopStructure::preprocess(bin.tree.clone(), ParamMode::Auto);
        for _ in 0..10 {
            let old_leaf = gen::random_leaf(&tree, &mut rng);
            let old_path = tree.path_from_root(old_leaf);
            let y = rng.gen_range(-10..8000 * 16 + 10);
            let naive = search_path_naive(&tree, &old_path, y, None);
            let mut pram = Pram::new(1 << 14, Model::Crew);
            let (finds, _) =
                coop_search_binarized(&st, &bin, bin.old_to_new[old_leaf.idx()], y, &mut pram);
            assert_eq!(finds, naive.results);
        }
    }
}
