//! Implicit cooperative search (Section 2.3).
//!
//! In the basic implicit search the path is not given: at each node `v` the
//! branch taken is `branch(q, find(y, v))`, a function of the query and the
//! located catalog entry. The paper's **consistency assumption** requires
//! that at nodes off the search path the branch function points *toward*
//! the path (right if the path lies right of the node, left otherwise), and
//! that the tree leaf on the path returns left.
//!
//! Under that assumption the branch values of a unit's nodes, read in
//! **inorder**, form the monotone pattern `R…R L…L`, so all `p` processors
//! can identify the path through a height-`Θ(log p)` unit in `O(1)` CREW
//! steps: evaluate `find` at *every* unit node via the skeleton windows,
//! evaluate `branch` everywhere, and locate the unique R→L transition.
//! The processor count per hop grows to `2^(h_i) · s_i² = O(p)` (the
//! `2^(h_i)` factor pays for the off-path nodes), exactly the bound at the
//! end of Section 2.3.

use crate::skeleton::{Unit, NO_CHILD};
use crate::structure::CoopStructure;
use fc_catalog::cascade::Find;
use fc_catalog::{CatalogKey, CatalogTree, NodeId};
use fc_pram::cost::Pram;
use fc_pram::primitives::coop_lower_bound;

pub use crate::explicit::SearchStats;

/// A branching decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branch {
    /// Continue into the left child (child slot 0).
    Left,
    /// Continue into the right child (child slot 1).
    Right,
}

impl Branch {
    /// The child slot this branch selects.
    #[inline]
    pub fn slot(self) -> usize {
        match self {
            Branch::Left => 0,
            Branch::Right => 1,
        }
    }
}

/// The secondary-comparison oracle `branch(q, find(y, v))`.
///
/// Implementations capture the query `q`; the search provides the node and
/// the located entry. The basic implicit search requires the consistency
/// assumption of Section 2; oracles that violate it (like raw point
/// location, Section 3) need the specialised hop in `fc-geom`.
pub trait BranchOracle<K: CatalogKey> {
    /// Decide the branch at `node` given `find(y, node)`.
    fn branch(&self, node: NodeId, find: Find) -> Branch;
}

/// A branch oracle built from a known target leaf — the canonical
/// consistency-assumption oracle used for testing and benchmarks: at
/// ancestors of the target it branches toward the target; at any other node
/// it points toward the target's side; at the target leaf it returns left.
#[derive(Debug, Clone)]
pub struct ConsistentLeafOracle {
    /// Per node: smallest and largest leaf rank underneath.
    leaf_range: Vec<(u32, u32)>,
    /// The target leaf's rank.
    target_rank: u32,
}

impl ConsistentLeafOracle {
    /// Build the oracle for `target` (must be a leaf of `tree`).
    pub fn new<K: CatalogKey>(tree: &CatalogTree<K>, target: NodeId) -> Self {
        assert!(tree.is_leaf(target), "target must be a leaf");
        let mut leaf_range = vec![(u32::MAX, 0u32); tree.len()];
        let mut rank = 0u32;
        let mut target_rank = 0;
        // Assign leaf ranks in left-to-right order, then propagate ranges
        // upward (children have larger arena indices, so a reverse sweep
        // sees children first).
        for id in tree.ids() {
            if tree.is_leaf(id) {
                leaf_range[id.idx()] = (rank, rank);
                if id == target {
                    target_rank = rank;
                }
                rank += 1;
            }
        }
        for idx in (0..tree.len()).rev() {
            let id = NodeId(idx as u32);
            for &c in tree.children(id) {
                let (clo, chi) = leaf_range[c.idx()];
                let e = &mut leaf_range[idx];
                e.0 = e.0.min(clo);
                e.1 = e.1.max(chi);
            }
        }
        ConsistentLeafOracle {
            leaf_range,
            target_rank,
        }
    }
}

impl ConsistentLeafOracle {
    /// Exact branch for ancestors, needing the tree to inspect children.
    fn branch_exact<K: CatalogKey>(&self, tree: &CatalogTree<K>, node: NodeId) -> Branch {
        let (lo, hi) = self.leaf_range[node.idx()];
        if hi < self.target_rank {
            return Branch::Right;
        }
        if lo > self.target_rank {
            return Branch::Left;
        }
        if lo == hi {
            return Branch::Left;
        }
        let children = tree.children(node);
        let (llo, lhi) = self.leaf_range[children[0].idx()];
        debug_assert!(llo <= lhi);
        if self.target_rank <= lhi {
            Branch::Left
        } else {
            Branch::Right
        }
    }
}

/// A wrapper that lets [`ConsistentLeafOracle`] answer exactly by carrying
/// a tree reference (the `BranchOracle` trait is object-safe and
/// tree-agnostic; this adapter is what the searches actually consume).
pub struct LeafOracleAdapter<'a, K: CatalogKey> {
    tree: &'a CatalogTree<K>,
    oracle: &'a ConsistentLeafOracle,
}

impl<'a, K: CatalogKey> LeafOracleAdapter<'a, K> {
    /// Pair an oracle with its tree.
    pub fn new(tree: &'a CatalogTree<K>, oracle: &'a ConsistentLeafOracle) -> Self {
        LeafOracleAdapter { tree, oracle }
    }
}

impl<'a, K: CatalogKey> BranchOracle<K> for LeafOracleAdapter<'a, K> {
    fn branch(&self, node: NodeId, _find: Find) -> Branch {
        self.oracle.branch_exact(self.tree, node)
    }
}

/// Result of an implicit search: the discovered path and the located
/// entries along it.
#[derive(Debug, Clone)]
pub struct ImplicitSearchResult {
    /// The search path, root to leaf.
    pub path: Vec<NodeId>,
    /// `finds[i] = find(y, path[i])`.
    pub finds: Vec<Find>,
    /// Execution counters.
    pub stats: SearchStats,
}

/// Sequential implicit search through the cascaded structure: the `p = 1`
/// baseline (`O(log n)` including the branch evaluations).
pub fn implicit_search_seq<K: CatalogKey>(
    st: &CoopStructure<K>,
    oracle: &impl BranchOracle<K>,
    y: K,
    mut pram: Option<&mut Pram>,
) -> ImplicitSearchResult {
    let fc = st.cascade();
    let tree = st.tree();
    let mut node = tree.root();
    let mut aug = fc.find_aug(node, y);
    if let Some(pram) = pram.as_deref_mut() {
        let len = fc.keys(node).len();
        pram.seq((usize::BITS - len.leading_zeros()) as usize);
    }
    let mut path = vec![node];
    let mut cur = fc.native_result(node, aug);
    let mut finds = vec![cur];
    while !tree.is_leaf(node) {
        let b = oracle.branch(node, cur);
        let slot = b.slot().min(tree.children(node).len() - 1);
        let (next, walked) = fc.descend(node, slot, aug, y);
        if let Some(pram) = pram.as_deref_mut() {
            pram.seq(2 + walked); // branch eval + move + walk
        }
        node = tree.children(node)[slot];
        aug = next;
        cur = fc.native_result(node, aug);
        path.push(node);
        finds.push(cur);
    }
    ImplicitSearchResult {
        path,
        finds,
        stats: SearchStats::default(),
    }
}

/// Cooperative implicit search (Section 2.3): hops through units, locating
/// `y` at **all** unit nodes via the skeleton windows and identifying the
/// path from the R→L transition of the branch values in unit inorder.
pub fn coop_search_implicit<K: CatalogKey>(
    st: &CoopStructure<K>,
    oracle: &impl BranchOracle<K>,
    y: K,
    pram: &mut Pram,
) -> ImplicitSearchResult {
    let p = pram.processors();
    let Some(sub) = st.select(p) else {
        return implicit_search_seq(st, oracle, y, Some(pram));
    };
    let fc = st.cascade();
    let tree = st.tree();
    let mut stats = SearchStats {
        used_h: Some(sub.sp.h),
        ..SearchStats::default()
    };

    let root = tree.root();
    let mut aug = coop_lower_bound(fc.keys(root), &y, pram);
    let mut node = root;
    let mut path = vec![root];
    let mut finds = vec![fc.native_result(root, aug)];

    // Hops.
    while !tree.is_leaf(node) {
        let Some(unit) = sub.unit_at(node) else { break };
        if unit.nodes.len() == 1 {
            break; // clipped to a single node: nothing to hop over
        }
        stats.hops += 1;

        // Step 2: skeleton tree selection.
        let t = fc.keys(node).len();
        let j = (aug / sub.sp.s).min(unit.m as usize - 1);
        pram.round(sub.sp.s.min(t));

        // Locate y at every unit node via its window (one round).
        let zn = unit.nodes.len();
        #[allow(clippy::needless_range_loop)] // one virtual processor per unit node
        let mut g = vec![0usize; zn];
        g[0] = aug;
        let mut ops = 0usize;
        for z in 1..zn {
            let w = unit.nodes[z];
            let l = unit.level_of[z] as u32;
            let k = unit.key(j, z) as usize;
            let (q, r) = st.params().window(&sub.sp, l);
            let len = fc.keys(w).len();
            let lo = k.saturating_sub(q + r);
            let hi = (k + q).min(len - 1);
            ops += hi - lo + 1;
            let gz = fc.find_aug(w, y);
            if gz < lo || gz > hi {
                stats.fallbacks += 1;
                pram.seq((usize::BITS - len.leading_zeros()) as usize);
            }
            g[z] = gz;
        }
        stats.window_ops += ops as u64;
        pram.round(ops);

        // Evaluate branch everywhere (one round) and find the R→L
        // transition in inorder (one CREW round: each processor checks one
        // adjacent pair).
        let branches: Vec<Branch> = (0..zn)
            .map(|z| oracle.branch(unit.nodes[z], fc.native_result(unit.nodes[z], g[z])))
            .collect();
        pram.round(zn);
        pram.round(zn);
        debug_assert!(
            inorder_is_monotone(unit, &branches),
            "consistency assumption violated inside a unit"
        );

        // Follow the branches from the unit root to its bottom (the PRAM
        // identifies the same node in O(1) from the transition; we verify
        // agreement in debug builds).
        let mut z = 0usize;
        loop {
            let b = branches[z];
            let cpos = unit.children_pos[z][b.slot()];
            if cpos == NO_CHILD {
                break;
            }
            z = cpos as usize;
            node = unit.nodes[z];
            aug = g[z];
            path.push(node);
            finds.push(fc.native_result(node, aug));
        }
        debug_assert_eq!(
            Some(z),
            transition_bottom(unit, &branches),
            "branch walk and R→L transition disagree"
        );
        pram.seq(1);
        if z == 0 {
            break;
        }
    }

    // Sequential tail.
    let mut cur = fc.native_result(node, aug);
    while !tree.is_leaf(node) {
        let b = oracle.branch(node, cur);
        let slot = b.slot().min(tree.children(node).len() - 1);
        let (next, walked) = fc.descend(node, slot, aug, y);
        pram.seq(2 + walked);
        node = tree.children(node)[slot];
        aug = next;
        cur = fc.native_result(node, aug);
        path.push(node);
        finds.push(cur);
        stats.tail_nodes += 1;
    }

    ImplicitSearchResult { path, finds, stats }
}

/// Check the consistency pattern: branch values in unit inorder must be
/// `R…R L…L`.
fn inorder_is_monotone(unit: &Unit, branches: &[Branch]) -> bool {
    let mut seen_left = false;
    for &z in &unit.inorder {
        match branches[z as usize] {
            Branch::Left => seen_left = true,
            Branch::Right => {
                if seen_left {
                    return false;
                }
            }
        }
    }
    true
}

/// The unit-bottom node the R→L transition identifies: of the inorder
/// adjacent pair `(w = last R, v = first L)`, the one at the unit's bottom
/// level (Section 2.3's identification, adapted as described in DESIGN.md).
fn transition_bottom(unit: &Unit, branches: &[Branch]) -> Option<usize> {
    let bottom = unit.level_of.iter().copied().max().unwrap_or(0);
    let mut last_r: Option<usize> = None;
    let mut first_l: Option<usize> = None;
    for &z in &unit.inorder {
        match branches[z as usize] {
            Branch::Right => last_r = Some(z as usize),
            Branch::Left => {
                if first_l.is_none() {
                    first_l = Some(z as usize);
                }
            }
        }
    }
    match (last_r, first_l) {
        (Some(w), Some(v)) => {
            if unit.level_of[w] == bottom {
                Some(w)
            } else {
                debug_assert_eq!(unit.level_of[v], bottom);
                Some(v)
            }
        }
        (Some(w), None) => Some(w), // all R: path exits at the right end
        (None, Some(v)) => Some(v), // all L: path exits at the left end
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use fc_catalog::gen::{self, SizeDist};
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn build(height: u32, total: usize, mode: ParamMode, seed: u64) -> CoopStructure<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, &mut rng);
        CoopStructure::preprocess(tree, mode)
    }

    #[test]
    fn oracle_is_consistent_with_its_target() {
        let st = build(6, 2000, ParamMode::Auto, 401);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(403);
        for _ in 0..10 {
            let target = gen::random_leaf(tree, &mut rng);
            let oracle = ConsistentLeafOracle::new(tree, target);
            let adapter = LeafOracleAdapter::new(tree, &oracle);
            let out = implicit_search_seq(&st, &adapter, 500, None);
            assert_eq!(*out.path.last().unwrap(), target);
        }
    }

    #[test]
    fn coop_implicit_matches_sequential_implicit() {
        for mode in [ParamMode::Theory, ParamMode::Auto] {
            let st = build(9, 20_000, mode, 407);
            let tree = st.tree();
            let mut rng = SmallRng::seed_from_u64(409);
            for p in [1usize, 64, 4096, 1 << 16, 1 << 20] {
                for _ in 0..15 {
                    let target = gen::random_leaf(tree, &mut rng);
                    let oracle = ConsistentLeafOracle::new(tree, target);
                    let adapter = LeafOracleAdapter::new(tree, &oracle);
                    let y = rng.gen_range(-10..20_000 * 16 + 10);
                    let seq = implicit_search_seq(&st, &adapter, y, None);
                    let mut pram = Pram::new(p, Model::Crew);
                    let coop = coop_search_implicit(&st, &adapter, y, &mut pram);
                    assert_eq!(coop.path, seq.path, "mode {mode:?} p {p}");
                    assert_eq!(coop.finds, seq.finds, "mode {mode:?} p {p}");
                    assert_eq!(*coop.path.last().unwrap(), target);
                }
            }
        }
    }

    #[test]
    fn implicit_needs_no_fallbacks_with_guaranteed_b() {
        let st = build(9, 30_000, ParamMode::Auto, 419);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(421);
        for _ in 0..40 {
            let target = gen::random_leaf(tree, &mut rng);
            let oracle = ConsistentLeafOracle::new(tree, target);
            let adapter = LeafOracleAdapter::new(tree, &oracle);
            let y = rng.gen_range(0..30_000 * 16);
            let mut pram = Pram::new(1 << 16, Model::Crew);
            let out = coop_search_implicit(&st, &adapter, y, &mut pram);
            assert_eq!(out.stats.fallbacks, 0);
        }
    }

    #[test]
    fn implicit_costs_more_than_explicit_but_same_shape() {
        let st = build(11, 1 << 15, ParamMode::Auto, 431);
        let tree = st.tree();
        let mut rng = SmallRng::seed_from_u64(433);
        let target = gen::random_leaf(tree, &mut rng);
        let oracle = ConsistentLeafOracle::new(tree, target);
        let adapter = LeafOracleAdapter::new(tree, &oracle);
        let path = tree.path_from_root(target);
        let y = 999;
        let p = 1 << 18;
        let mut pi = Pram::new(p, Model::Crew);
        let ci = coop_search_implicit(&st, &adapter, y, &mut pi);
        let mut pe = Pram::new(p, Model::Crew);
        let ce = crate::explicit::coop_search_explicit(&st, &path, y, &mut pe);
        assert_eq!(ci.finds, ce.finds);
        // Implicit examines all unit nodes, so it does at least as much work.
        assert!(pi.work() >= pe.work());
    }

    #[test]
    fn leftmost_and_rightmost_targets() {
        let st = build(8, 5000, ParamMode::Auto, 437);
        let tree = st.tree();
        let leaves = tree.leaves();
        for &target in [leaves.first().unwrap(), leaves.last().unwrap()].iter() {
            let oracle = ConsistentLeafOracle::new(tree, *target);
            let adapter = LeafOracleAdapter::new(tree, &oracle);
            let mut pram = Pram::new(1 << 14, Model::Crew);
            let out = coop_search_implicit(&st, &adapter, 42, &mut pram);
            assert_eq!(*out.path.last().unwrap(), *target);
        }
    }

    #[test]
    fn branch_slot_mapping() {
        assert_eq!(Branch::Left.slot(), 0);
        assert_eq!(Branch::Right.slot(), 1);
    }
}
