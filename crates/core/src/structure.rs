//! The preprocessed cooperative search structure `T'` (Theorem 1).
//!
//! [`CoopStructure`] bundles the fractional cascaded tree `S` with the
//! substructures `T_i` and exposes the space accounting that Lemma 2
//! bounds: the skeleton-forest sizes sum geometrically, so the whole of
//! `T'` occupies `O(n)` words.

use crate::params::{CoopParams, ParamMode};
use crate::skeleton::Substructure;
use fc_catalog::{CascadedTree, CatalogKey, CatalogTree};
use fc_pram::cost::Pram;

/// The cooperative search structure `T'` over a balanced binary catalog
/// tree.
///
/// ```
/// use fc_catalog::gen::{self, SizeDist};
/// use fc_coop::{CoopStructure, ParamMode};
/// use fc_coop::explicit::coop_search_explicit;
/// use fc_pram::{Model, Pram};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let tree = gen::balanced_binary(8, 4000, SizeDist::Uniform, &mut rng);
/// let st = CoopStructure::preprocess(tree, ParamMode::Auto);
///
/// let leaf = gen::random_leaf(st.tree(), &mut rng);
/// let path = st.tree().path_from_root(leaf);
/// let mut pram = Pram::new(1 << 16, Model::Crew); // 2^16 CREW processors
/// let out = coop_search_explicit(&st, &path, 1234, &mut pram);
/// assert_eq!(out.finds.len(), path.len());
/// assert!(pram.steps() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CoopStructure<K> {
    fc: CascadedTree<K>,
    params: CoopParams,
    subs: Vec<Substructure>,
}

/// Per-substructure space row for the Lemma 2 experiment.
#[derive(Debug, Clone, Copy)]
pub struct SpaceRow {
    /// Substructure index.
    pub i: u32,
    /// Hop height.
    pub h: u32,
    /// Sampling factor.
    pub s: usize,
    /// Skeleton keys stored in this `T_i`.
    pub skeleton_words: usize,
    /// Number of units.
    pub units: usize,
}

impl<K: CatalogKey> CoopStructure<K> {
    /// Full preprocessing: build the fractional cascaded structure `S`
    /// (sampling factor 4, the binary-tree standard) and every substructure
    /// `T_i`.
    ///
    /// # Panics
    /// Panics if the tree is not binary (use [`crate::general::binarize`]
    /// for higher degrees first, as Theorem 3 prescribes).
    pub fn preprocess(tree: CatalogTree<K>, mode: ParamMode) -> Self {
        assert!(
            tree.max_degree() <= 2,
            "CoopStructure requires a binary tree; binarize degree-d trees first (Theorem 3)"
        );
        // The paper applies [1] to the *bidirectional* version of T; the
        // reverse samples are what make Lemma 1's key disjointness hold.
        let fc = CascadedTree::build_bidir(tree, 4);
        Self::from_cascade(fc, mode)
    }

    /// Preprocess from an existing cascaded structure, using its guaranteed
    /// fan-out bound `b`.
    pub fn from_cascade(fc: CascadedTree<K>, mode: ParamMode) -> Self {
        let b = fc.fanout_bound();
        Self::from_cascade_with_b(fc, mode, b)
    }

    /// Preprocess with an explicit fan-out constant `b` (the
    /// instance-calibrated ablation; searches validate window coverage at
    /// runtime and fall back to a full binary search on violation, counting
    /// the event).
    pub fn from_cascade_with_b(fc: CascadedTree<K>, mode: ParamMode, b: usize) -> Self {
        let height = fc.tree().height();
        let params = CoopParams::derive(b, height, mode);
        let subs = params
            .subs
            .iter()
            .map(|&sp| Substructure::build(&fc, sp))
            .collect();
        CoopStructure { fc, params, subs }
    }

    /// Preprocess while charging EREW PRAM cost: the cascade build is
    /// level-synchronous, and each substructure's skeleton fill is `h_i + 1`
    /// rounds of its total key count (every tree `U_j` of every unit fills
    /// one level per round, all in parallel, with exclusive reads because
    /// Lemma 1 keeps the key sets disjoint).
    pub fn preprocess_cost(tree: CatalogTree<K>, mode: ParamMode, pram: &mut Pram) -> Self {
        assert!(tree.max_degree() <= 2);
        let fc = CascadedTree::build_bidir_cost(tree, 4, pram);
        let height = fc.tree().height();
        let b = fc.fanout_bound();
        let params = CoopParams::derive(b, height, mode);
        let mut subs = Vec::with_capacity(params.subs.len());
        for &sp in &params.subs {
            let sub = Substructure::build(&fc, sp);
            let words = sub.space();
            let rounds = sp.h as usize + 1;
            for _ in 0..rounds {
                pram.round(words.div_ceil(rounds));
            }
            subs.push(sub);
        }
        CoopStructure { fc, params, subs }
    }

    /// The underlying fractional cascaded structure `S`.
    #[inline]
    pub fn cascade(&self) -> &CascadedTree<K> {
        &self.fc
    }

    /// The underlying catalog tree.
    #[inline]
    pub fn tree(&self) -> &CatalogTree<K> {
        self.fc.tree()
    }

    /// The derived parameters.
    #[inline]
    pub fn params(&self) -> &CoopParams {
        &self.params
    }

    /// All substructures, in increasing hop height.
    #[inline]
    pub fn substructures(&self) -> &[Substructure] {
        &self.subs
    }

    /// The substructure serving `p` processors, if any hop height pays off
    /// at that `p`.
    pub fn select(&self, p: usize) -> Option<&Substructure> {
        self.params.select(p).map(|i| &self.subs[i])
    }

    /// Mutable cascaded structure — a fault-injection hook for robustness
    /// tests and the `fc-resilience` crate (corruptions must be *detected*
    /// by the audit, never produce silently wrong answers). Not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn cascade_mut_for_fault_injection(&mut self) -> &mut CascadedTree<K> {
        &mut self.fc
    }

    /// Mutable substructures — fault-injection/repair hook paired with
    /// [`Self::cascade_mut_for_fault_injection`]. Not part of the stable API.
    #[doc(hidden)]
    pub fn substructures_mut_for_fault_injection(&mut self) -> &mut [Substructure] {
        &mut self.subs
    }

    /// Split borrow for localized repair: the (already repaired) cascade
    /// read-only alongside mutable substructures, so individual units can be
    /// rebuilt in place. Not part of the stable API.
    #[doc(hidden)]
    pub fn cascade_and_subs_mut_for_repair(&mut self) -> (&CascadedTree<K>, &mut [Substructure]) {
        (&self.fc, &mut self.subs)
    }

    /// Per-substructure space breakdown (the Lemma 2 experiment's rows).
    pub fn space_rows(&self) -> Vec<SpaceRow> {
        self.subs
            .iter()
            .map(|sub| SpaceRow {
                i: sub.sp.i,
                h: sub.sp.h,
                s: sub.sp.s,
                skeleton_words: sub.space(),
                units: sub.units.len(),
            })
            .collect()
    }

    /// Total words of `T'`: augmented catalogs + bridges + skeleton keys.
    /// Lemma 2: this is `O(n)`.
    pub fn total_space_words(&self) -> usize {
        let tree = self.fc.tree();
        let mut words = 0usize;
        for id in tree.ids() {
            let aug = self.fc.aug(id);
            words += aug.keys.len() // keys
                + aug.native_succ.len() // native successor pointers
                + aug.bridges.iter().map(<[u32]>::len).sum::<usize>(); // bridges
        }
        words + self.subs.iter().map(Substructure::space).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn preprocess_builds_every_band() {
        let mut rng = SmallRng::seed_from_u64(71);
        let tree = gen::balanced_binary(8, 8000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        assert!(!st.substructures().is_empty());
        for sub in st.substructures() {
            assert!(sub.sp.h >= 1);
        }
    }

    #[test]
    fn lemma2_total_space_is_linear() {
        let mut rng = SmallRng::seed_from_u64(73);
        let mut ratios = Vec::new();
        for height in [8u32, 10, 12] {
            let n = 1usize << (height + 4);
            let tree = gen::balanced_binary(height, n, SizeDist::Uniform, &mut rng);
            let st = CoopStructure::preprocess(tree, ParamMode::Theory);
            ratios.push(st.total_space_words() as f64 / n as f64);
        }
        // Space per catalog entry must not grow with n (Lemma 2).
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.5,
            "space/n ratios should be flat, got {ratios:?}"
        );
    }

    #[test]
    fn lemma2_per_substructure_bound() {
        // Lemma 2's two terms: T_i's skeleton space is at most the number
        // of covered nodes (units partition S', every unit has >= 1 tree)
        // plus the extra trees, bounded by (aug entries / s_i) * 2^(h_i+1).
        let mut rng = SmallRng::seed_from_u64(79);
        let tree = gen::balanced_binary(12, 1 << 16, SizeDist::Uniform, &mut rng);
        let nodes = tree.len();
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let aug_total = st.cascade().total_aug_size();
        let rows = st.space_rows();
        let mut sum = 0usize;
        for row in &rows {
            let sparse_term = 2 * nodes; // shared boundary nodes double-count
            let extra_term = (aug_total / row.s + row.units) * (1usize << (row.h + 1));
            assert!(
                row.skeleton_words <= sparse_term + extra_term,
                "row {row:?} exceeds Lemma 2 bound {} + {}",
                sparse_term,
                extra_term
            );
            sum += row.skeleton_words;
        }
        // The sum over all substructures stays linear in n + #nodes.
        assert!(
            sum <= 6 * (aug_total + nodes),
            "total skeleton space {sum} vs linear bound {}",
            6 * (aug_total + nodes)
        );
    }

    #[test]
    fn preprocess_cost_depth_is_polylog() {
        let mut rng = SmallRng::seed_from_u64(83);
        let n = 1usize << 14;
        let tree = gen::balanced_binary(10, n, SizeDist::Uniform, &mut rng);
        let log_n = (usize::BITS - n.leading_zeros()) as u64;
        let procs = (n as u64 / log_n).max(1) as usize;
        let mut pram = Pram::new(procs, Model::Erew);
        let st = CoopStructure::preprocess_cost(tree, ParamMode::Auto, &mut pram);
        assert!(st.total_space_words() > 0);
        assert!(
            pram.steps() <= 6 * log_n * log_n,
            "steps {} exceed 6 log^2 n = {}",
            pram.steps(),
            6 * log_n * log_n
        );
    }

    #[test]
    fn select_returns_band_for_large_p() {
        let mut rng = SmallRng::seed_from_u64(89);
        let tree = gen::balanced_binary(12, 64_000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        // With enough processors, some hop height always beats the
        // sequential estimate on a deep tree.
        assert!(st.select(1 << 28).is_some());
        // Cost-aware selection declines when nothing pays off.
        assert!(st.select(1).is_none());
    }

    #[test]
    #[should_panic(expected = "binary tree")]
    fn non_binary_tree_rejected() {
        let mut rng = SmallRng::seed_from_u64(97);
        let tree = gen::dary(3, 3, 500, &mut rng);
        let _ = CoopStructure::preprocess(tree, ParamMode::Auto);
    }
}
