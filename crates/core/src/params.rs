//! Preprocessing constants (Section 2.1).
//!
//! The paper fixes, for the substructure `T_i` serving processor counts
//! `2^(2^i) < p <= 2^(2^(i+1))`:
//!
//! * hop height `h_i = floor(alpha * 2^i)` with `alpha` solving
//!   `(2(2b+1)^2)^alpha = 2` (so `0 < alpha < 0.25`),
//! * sampling factor `s_i = (2b+2)(2b+1)^(h_i)`,
//! * truncation: only levels `0 .. ceil((1 - 2^-i) log n)` of `S` are
//!   covered; the tail is searched sequentially.
//!
//! With these choices the processors used per hop are `O(p)` and the hop
//! count is `O((log n)/log p)` (proof of Theorem 1).
//!
//! Because the paper's constants are asymptotic (with `b = 3`, `alpha ~
//! 0.15`, hop heights stay tiny for any practical `p`), the crate also
//! offers an **auto-tuned** mode: it enumerates hop heights `h = 1, 2, ...`
//! and assigns to each the processor band in which that `h` minimises the
//! modelled step count, using the *same* formulas for `s_i`, windows, and
//! truncation. The Theory/Auto comparison is one of the workspace's
//! ablation experiments (see DESIGN.md).

/// Which rule derives hop heights from processor counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamMode {
    /// The paper's exact constants: `alpha` from `(2(2b+1)^2)^alpha = 2`,
    /// `h_i = max(1, floor(alpha * 2^i))`.
    Theory,
    /// Hop heights `h = 1, 2, ...` each serving the band of `p` where the
    /// per-hop work `2(2b+2)(2b+1)^(2h)` fits (the same balance `alpha`
    /// strikes asymptotically, solved numerically per instance).
    Auto,
}

/// Parameters of one substructure `T_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubParams {
    /// Substructure index `i` (Theory) or `h`-rank (Auto).
    pub i: u32,
    /// Hop height `h_i` (levels traversed per constant-time hop).
    pub h: u32,
    /// Sampling factor `s_i = (2b+2)(2b+1)^h`.
    pub s: usize,
    /// Smallest processor count served (exclusive in Theory mode).
    pub p_min: u64,
    /// Largest processor count served (inclusive).
    pub p_max: u64,
    /// Deepest tree level covered; levels below are searched sequentially
    /// (the truncation of "Our Final Approach").
    pub trunc: u32,
}

/// Full parameter set for a cooperative structure.
#[derive(Debug, Clone)]
pub struct CoopParams {
    /// Fan-out constant `b` used in all window formulas. Defaults to the
    /// cascade's guaranteed bound `s_cascade - 1`; may be set to the
    /// instance's observed bound as an ablation (searches then validate
    /// coverage at runtime and fall back on violation).
    pub b: usize,
    /// The paper's `alpha` for this `b` (meaningful in Theory mode).
    pub alpha: f64,
    /// Tree height the parameters were derived for.
    pub height: u32,
    /// Mode that generated [`CoopParams::subs`].
    pub mode: ParamMode,
    /// Per-substructure parameters, in increasing `h`.
    pub subs: Vec<SubParams>,
}

impl CoopParams {
    /// Derive the parameter set for a tree of height `height` (levels
    /// `0..=height`) with fan-out constant `b`.
    pub fn derive(b: usize, height: u32, mode: ParamMode) -> Self {
        assert!(b >= 1, "fan-out constant must be positive");
        let base = 2.0 * ((2 * b + 1) as f64).powi(2);
        let alpha = 1.0 / base.log2();
        debug_assert!(alpha < 0.25 + 1e-9);

        let mut subs = Vec::new();
        match mode {
            ParamMode::Theory => {
                // i ranges over 0 .. ceil(log log n) - 1; height stands in
                // for log n (balanced trees). Stop once h would exceed the
                // covered levels or the processor band passes n-scale.
                let max_i = 32u32;
                for i in 0..max_i {
                    let h = ((alpha * (1u64 << i) as f64).floor() as u32).max(1);
                    let p_min = saturating_pow2(1u64 << i);
                    let p_max = saturating_pow2(1u64 << (i + 1));
                    let tail = (height as f64 / (1u64 << i) as f64).ceil() as u32;
                    let trunc = height.saturating_sub(tail.min(height));
                    let s = sampling_factor(b, h);
                    subs.push(SubParams {
                        i,
                        h,
                        s,
                        p_min,
                        p_max,
                        trunc,
                    });
                    if h >= height.max(1) || p_max == u64::MAX {
                        break;
                    }
                }
            }
            ParamMode::Auto => {
                // One substructure per hop height h; band boundaries where
                // the per-hop processor requirement of h fits.
                let mut h = 1u32;
                loop {
                    let s = sampling_factor(b, h);
                    let work_h = 2u64
                        .saturating_mul(s as u64)
                        .saturating_mul(pow_u64((2 * b + 1) as u64, h));
                    let s_next = sampling_factor(b, h + 1);
                    let work_next = 2u64
                        .saturating_mul(s_next as u64)
                        .saturating_mul(pow_u64((2 * b + 1) as u64, h + 1));
                    let p_min = work_h;
                    let p_max = work_next.saturating_sub(1);
                    let lg_p = 64 - p_min.leading_zeros();
                    let tail = (2 * height).div_ceil(lg_p.max(2));
                    let trunc = height.saturating_sub(tail.min(height));
                    subs.push(SubParams {
                        i: h - 1,
                        h,
                        s,
                        p_min,
                        p_max,
                        trunc,
                    });
                    if h >= height.max(1) || p_max == u64::MAX || subs.len() >= 24 {
                        break;
                    }
                    h += 1;
                }
            }
        }
        CoopParams {
            b,
            alpha,
            height,
            mode,
            subs,
        }
    }

    /// Pick the substructure index serving processor count `p`, or `None`
    /// when no hop height beats the sequential fractional cascading search
    /// (which is what `T_0`'s lower end degenerates to).
    ///
    /// Theory mode uses the paper's band rule verbatim. Auto mode is
    /// cost-aware: it estimates each hop height's step count under Brent
    /// scheduling — `ceil(trunc/h)` hops, each costing `2` rounds plus
    /// `ceil(hop_work / p)` serialisation (the per-hop work equals the
    /// band's `p_min` by construction), plus the sequential tail — and
    /// picks the cheapest, falling back to sequential when nothing wins.
    pub fn select(&self, p: usize) -> Option<usize> {
        let p = p as u64;
        match self.mode {
            ParamMode::Theory => {
                // Largest band whose lower edge fits under p.
                let mut best = None;
                for (idx, sp) in self.subs.iter().enumerate() {
                    if sp.p_min <= p {
                        best = Some(idx);
                    }
                }
                best
            }
            ParamMode::Auto => {
                let seq_est = 2 * (self.height as u64 + 1);
                let mut best: Option<(usize, u64)> = None;
                for (idx, sp) in self.subs.iter().enumerate() {
                    if sp.trunc == 0 {
                        continue;
                    }
                    let hops = (sp.trunc as u64).div_ceil(sp.h as u64);
                    let tail = (self.height - sp.trunc) as u64;
                    let per_hop = 2u64.saturating_add(sp.p_min.div_ceil(p.max(1)));
                    let est = hops.saturating_mul(per_hop).saturating_add(2 * tail);
                    if best.is_none_or(|(_, b)| est < b) {
                        best = Some((idx, est));
                    }
                }
                match best {
                    Some((idx, est)) if est < seq_est => Some(idx),
                    _ => None,
                }
            }
        }
    }

    /// The window half-widths of Step 3 (Section 2.2) for a node `l` levels
    /// below its unit root in substructure `sub`: returns `(q, r)` with the
    /// window `[k - q - r, k + q]` around skeleton key position `k`, where
    /// `q = ((2b+1)^l - 1)/2` and `r = (s_i - 1)(2b+1)^l`.
    pub fn window(&self, sub: &SubParams, l: u32) -> (usize, usize) {
        let f = pow_u64((2 * self.b + 1) as u64, l).min(usize::MAX as u64) as usize;
        let q = (f - 1) / 2;
        let r = (sub.s - 1).saturating_mul(f);
        (q, r)
    }
}

/// `s = (2b+2)(2b+1)^h`, saturating.
pub fn sampling_factor(b: usize, h: u32) -> usize {
    let base = (2 * b + 1) as u64;
    let p = pow_u64(base, h);
    ((2 * b + 2) as u64)
        .saturating_mul(p)
        .min(usize::MAX as u64) as usize
}

fn pow_u64(base: u64, exp: u32) -> u64 {
    let mut acc = 1u64;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

/// `2^e`, saturating at `u64::MAX` (`e` may be huge: `2^(2^i)`).
fn saturating_pow2(e: u64) -> u64 {
    if e >= 64 {
        u64::MAX
    } else {
        1u64 << e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_solves_the_paper_equation() {
        let p = CoopParams::derive(3, 20, ParamMode::Theory);
        let base: f64 = 2.0 * 49.0; // 2(2b+1)^2 with b = 3
        assert!((base.powf(p.alpha) - 2.0).abs() < 1e-9);
        assert!(p.alpha > 0.0 && p.alpha < 0.25);
    }

    #[test]
    fn theory_bands_are_the_paper_ranges() {
        let p = CoopParams::derive(3, 20, ParamMode::Theory);
        assert_eq!(p.subs[0].p_min, 2); // 2^(2^0)
        assert_eq!(p.subs[0].p_max, 4); // 2^(2^1)
        assert_eq!(p.subs[1].p_min, 4);
        assert_eq!(p.subs[1].p_max, 16);
        assert_eq!(p.subs[2].p_max, 256);
    }

    #[test]
    fn sampling_factor_formula() {
        // b = 3: s = 8 * 7^h
        assert_eq!(sampling_factor(3, 0), 8);
        assert_eq!(sampling_factor(3, 1), 56);
        assert_eq!(sampling_factor(3, 2), 392);
        // b = 1: s = 4 * 3^h
        assert_eq!(sampling_factor(1, 3), 108);
    }

    #[test]
    fn hop_heights_grow_with_band() {
        for mode in [ParamMode::Theory, ParamMode::Auto] {
            let p = CoopParams::derive(3, 30, mode);
            let hs: Vec<u32> = p.subs.iter().map(|s| s.h).collect();
            assert!(hs.windows(2).all(|w| w[0] <= w[1]), "{mode:?}: {hs:?}");
            assert!(hs[0] >= 1);
        }
    }

    #[test]
    fn select_is_monotone_in_p() {
        // More processors never select a smaller hop height.
        let p = CoopParams::derive(3, 30, ParamMode::Auto);
        let mut prev_h = 0u32;
        for procs in [1usize, 2, 64, 1024, 1 << 14, 1 << 20, 1 << 30, 1 << 40] {
            let h = p.select(procs).map_or(0, |idx| p.subs[idx].h);
            assert!(h >= prev_h, "p = {procs}: h {h} < previous {prev_h}");
            prev_h = h;
        }
        // Large p definitely selects something.
        assert!(p.select(1 << 40).is_some());
    }

    #[test]
    fn select_never_loses_to_sequential_estimate() {
        // Cost-aware Auto selection only picks a substructure when the
        // modelled cost beats the sequential estimate.
        let params = CoopParams::derive(3, 20, ParamMode::Auto);
        let seq_est = 2 * (params.height as u64 + 1);
        for procs in [1usize, 8, 1 << 10, 1 << 16, 1 << 24] {
            if let Some(idx) = params.select(procs) {
                let sp = params.subs[idx];
                let hops = (sp.trunc as u64).div_ceil(sp.h as u64);
                let tail = (params.height - sp.trunc) as u64;
                let est = hops * (2 + sp.p_min.div_ceil(procs as u64)) + 2 * tail;
                assert!(est < seq_est, "p = {procs}: est {est} >= seq {seq_est}");
            }
        }
    }

    #[test]
    fn tiny_p_selects_nothing_in_auto_mode() {
        let p = CoopParams::derive(3, 30, ParamMode::Auto);
        // Auto's first band starts at the work of an h = 1 hop, which
        // exceeds any single-digit p for b = 3.
        assert_eq!(p.select(1), None);
        assert_eq!(p.select(2), None);
    }

    #[test]
    fn truncation_leaves_a_tail() {
        let p = CoopParams::derive(3, 32, ParamMode::Theory);
        // i = 0 truncates at level 0 (tail = whole height); larger i covers
        // more levels.
        let truncs: Vec<u32> = p.subs.iter().map(|s| s.trunc).collect();
        assert!(truncs.windows(2).all(|w| w[0] <= w[1]), "{truncs:?}");
        assert_eq!(p.subs[0].trunc, 0);
        assert!(truncs.last().copied().unwrap() <= 32);
    }

    #[test]
    fn window_formulas_match_paper() {
        let p = CoopParams::derive(3, 20, ParamMode::Theory);
        let sub = p.subs[2];
        // l = 1: q = (7-1)/2 = 3, r = (s-1)*7.
        let (q, r) = p.window(&sub, 1);
        assert_eq!(q, 3);
        assert_eq!(r, (sub.s - 1) * 7);
        // l = 0: q = 0, r = s-1 (the Step-2 sampling shift alone).
        let (q0, r0) = p.window(&sub, 0);
        assert_eq!(q0, 0);
        assert_eq!(r0, sub.s - 1);
    }

    #[test]
    fn bands_tile_the_processor_axis() {
        for mode in [ParamMode::Theory, ParamMode::Auto] {
            let p = CoopParams::derive(3, 24, mode);
            for w in p.subs.windows(2) {
                assert!(
                    w[1].p_min <= w[0].p_max.saturating_add(1),
                    "{mode:?}: gap between bands {:?} and {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
