//! # fc-coop — optimal cooperative search in fractional cascaded trees
//!
//! This crate implements the primary contribution of *"Optimal Cooperative
//! Search in Fractional Cascaded Data Structures"* (Tamassia & Vitter,
//! SPAA 1990): preprocessing a balanced binary tree with catalogs of total
//! size `n` into a structure `T'` on which **all `p` processors of a CREW
//! PRAM cooperate on a single root-to-leaf search** and finish in
//! `O((log n)/log p)` steps, for any `1 <= p <= n` (Theorem 1). Extensions
//! cover explicit searches on long paths (Theorem 2) and trees of degree
//! `d` (Theorem 3).
//!
//! ## How the structure works (Section 2.1, "Our Final Approach")
//!
//! Starting from the fractional cascaded structure `S` (built by
//! `fc-catalog`), the preprocessing forms one *substructure* `T_i` per
//! processor band `2^(2^i) < p <= 2^(2^(i+1))`:
//!
//! * `S` is truncated to its top `(1 - 2^-i)·log n` levels and partitioned
//!   into subtrees (*units*) of height `h_i = Θ(log p)`;
//! * for each unit root `u` with `t` augmented entries, `m = ceil(t/s_i)`
//!   *skeleton trees* `U_1..U_m` are formed — same shape as the unit, one
//!   key per node; root keys are every `s_i`-th entry of `u`'s catalog,
//!   child keys are induced by the bridges. The sampling factor
//!   `s_i = (2b+2)(2b+1)^(h_i)` makes the skeleton keys *disjoint* per node
//!   (Lemma 1), which is what bounds the total space by `O(n)` (Lemma 2).
//!
//! A search hops one unit at a time: knowing `find(y, u)` at a unit root,
//! `Θ(log p)` levels are traversed in `O(1)` CREW steps by assigning one
//! processor to each candidate catalog position in a window around the
//! skeleton keys (Lemma 3 guarantees the window covers the true answer).
//!
//! ## Module map
//!
//! * [`params`] — the constants `b`, `alpha`, `h_i`, `s_i`, truncation
//!   depths; paper-exact [`params::ParamMode::Theory`] and an auto-tuned
//!   [`params::ParamMode::Auto`] ablation.
//! * [`skeleton`] — units and compacted skeleton forests; Lemma 1 checker.
//! * [`structure`] — [`CoopStructure`]: `S` + all substructures, space
//!   accounting (Lemma 2).
//! * [`explicit`] — explicit cooperative search (Section 2.2).
//! * [`implicit`] — implicit cooperative search under the consistency
//!   assumption (Section 2.3), with pluggable branch oracles.
//! * [`general`] — long paths and degree-`d` trees (Section 2.4).
//! * [`reach`] — `reach(c, U)` computation for the Figure 1/2 experiments.
//! * [`cancel`] — cooperative cancellation tokens polled at descent steps
//!   (deadline propagation for the `fc-serve` query service).
//! * [`batch`] — batched inter-query parallelism, including the verified
//!   batched descent the `fc-shard` router uses for its gather legs.
//! * [`dynamic`] — dynamic updates (open problem 4): buffered global
//!   rebuilding with atomic batch drains and post-rebuild self-audit,
//!   plus the opt-in `fc-dyn` incremental mode (node-to-root bridge and
//!   sample patches, per-key-touched cost, clone-and-rebuild fallback).

#![warn(missing_docs)]
// Explicit index loops mirror the one-processor-per-index PRAM semantics.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod cancel;
pub mod dynamic;
pub mod explicit;
pub mod general;
pub mod implicit;
pub mod params;
pub mod reach;
pub mod skeleton;
pub mod structure;

pub use batch::{
    explicit_batch, explicit_batch_seq, explicit_batch_verified, implicit_batch, VerifiedAnswers,
};
pub use cancel::CancelToken;
pub use explicit::{
    coop_search_explicit, coop_search_explicit_cancellable, coop_search_explicit_checked,
    ExplicitSearchResult,
};
pub use implicit::{coop_search_implicit, Branch, BranchOracle, ConsistentLeafOracle};
pub use params::{CoopParams, ParamMode};
pub use structure::CoopStructure;
// The incremental write path's public surface, re-exported so downstream
// layers (serve/shard/store) need no direct fc-dyn dependency.
pub use fc_dyn::{DynCascade, DynConfig, DynCounters, DynError, PatchReport, QueryReport};
