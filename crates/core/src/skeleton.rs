//! Units (height-`h_i` subtrees of `S'`) and their skeleton forests
//! `U_1, ..., U_m` (Section 2.1, "Our Final Approach", Figure 3).
//!
//! A **unit** is one of the subtrees the truncated structure `S'` is
//! partitioned into, rooted at a node whose depth is a multiple of the hop
//! height `h_i`. For a unit rooted at `u` whose augmented catalog has `t`
//! entries, the **skeleton forest** consists of `m = ceil(t / s_i)` trees of
//! the same shape as the unit, each carrying one augmented-catalog position
//! (*key*) per node:
//!
//! * the root key of `U_j` is the `(j+1)·s_i`-th entry of `u`'s catalog
//!   (the last tree gets the terminal `+∞` — the *sparse node* when the
//!   catalog was too small to sample at all);
//! * every child key is induced by the bridge from its parent's key.
//!
//! Lemma 1 proves the sampling factor `s_i = (2b+2)(2b+1)^(h_i)` makes the
//! `m` keys of every node pairwise distinct; [`check_lemma1`] verifies this
//! on built forests. The forests are stored compacted (BFS order per unit),
//! which is what lets Step 3 of the search assign processors in `O(1)`.

use crate::params::SubParams;
use fc_catalog::{CascadedTree, CatalogKey, NodeId};

/// Sentinel for "no child inside this unit".
pub const NO_CHILD: u32 = u32::MAX;

/// One unit of a substructure: a height-`<= h_i` subtree of `S'` with its
/// compacted skeleton forest.
#[derive(Debug, Clone)]
pub struct Unit {
    /// The unit's root in the underlying tree.
    pub root: NodeId,
    /// Unit nodes in BFS order (`nodes[0] == root`).
    pub nodes: Vec<NodeId>,
    /// For each unit-local node, the unit-local positions of its left and
    /// right children (`NO_CHILD` when the child is absent or outside the
    /// unit). Units are binary: the paper's main case.
    pub children_pos: Vec<[u32; 2]>,
    /// Relative level (0 at the unit root) of each unit-local node.
    pub level_of: Vec<u8>,
    /// Unit-local node indices in inorder (used by the implicit search's
    /// R→L transition detection, Section 2.3 / point-location Step 6).
    pub inorder: Vec<u32>,
    /// Number of skeleton trees `m`.
    pub m: u32,
    /// Compacted key matrix: `keys[j * nodes.len() + z]` is the
    /// augmented-catalog index of `key[z, U_j]` in node `z`'s catalog.
    pub keys: Vec<u32>,
}

impl Unit {
    /// Key (augmented index) of unit-local node `z` in skeleton tree `j`.
    #[inline]
    pub fn key(&self, j: usize, z: usize) -> u32 {
        self.keys[j * self.nodes.len() + z]
    }

    /// Whether the forest consists of the single sparse tree (root catalog
    /// too small to sample).
    #[inline]
    pub fn is_sparse(&self) -> bool {
        self.m == 1
    }

    /// Number of stored skeleton keys (the unit's share of `T_i`'s space).
    #[inline]
    pub fn space(&self) -> usize {
        self.keys.len()
    }
}

/// One substructure `T_i`: all units for hop height `h_i`, plus a map from
/// unit-root tree nodes to unit ids.
#[derive(Debug, Clone)]
pub struct Substructure {
    /// The parameters this substructure was built for.
    pub sp: SubParams,
    /// All units, in order of discovery (BFS over unit roots).
    pub units: Vec<Unit>,
    /// `unit_of_root[node_idx]` = unit id if that node is a unit root.
    pub unit_of_root: Vec<u32>,
}

/// Sentinel for "not a unit root".
pub const NOT_A_ROOT: u32 = u32::MAX;

impl Substructure {
    /// Build `T_i` over the cascaded tree: units rooted at depths
    /// `0, h, 2h, ... < trunc`, clipped at depth `trunc`.
    pub fn build<K: CatalogKey>(fc: &CascadedTree<K>, sp: SubParams) -> Self {
        let tree = fc.tree();
        let mut unit_of_root = vec![NOT_A_ROOT; tree.len()];
        let mut units = Vec::new();
        if sp.trunc == 0 {
            // Fully truncated: the whole search is the sequential tail.
            return Substructure {
                sp,
                units,
                unit_of_root,
            };
        }
        for id in tree.ids() {
            let d = tree.depth(id);
            if d.is_multiple_of(sp.h) && d < sp.trunc {
                let unit = build_unit(fc, id, sp);
                unit_of_root[id.idx()] = units.len() as u32;
                units.push(unit);
            }
        }
        Substructure {
            sp,
            units,
            unit_of_root,
        }
    }

    /// The unit rooted at `node`, if any.
    #[inline]
    pub fn unit_at(&self, node: NodeId) -> Option<&Unit> {
        let u = self.unit_of_root[node.idx()];
        (u != NOT_A_ROOT).then(|| &self.units[u as usize])
    }

    /// Total skeleton keys stored (the space Lemma 2 bounds).
    pub fn space(&self) -> usize {
        self.units.iter().map(Unit::space).sum()
    }

    /// Rebuild the unit rooted at `root` from the (repaired) cascaded
    /// structure, leaving every other unit untouched. Returns the number of
    /// skeleton keys rewritten, or `None` when `root` does not root a unit
    /// of this substructure. This is the localized-repair primitive: after
    /// a catalog/bridge fix at a node, only the `O(1)` units whose key
    /// matrices read through that node need refilling — not the whole `T_i`.
    pub fn rebuild_unit_at<K: CatalogKey>(
        &mut self,
        fc: &CascadedTree<K>,
        root: NodeId,
    ) -> Option<usize> {
        let u = self.unit_of_root[root.idx()];
        if u == NOT_A_ROOT {
            return None;
        }
        let unit = build_unit(fc, root, self.sp);
        let words = unit.space();
        self.units[u as usize] = unit;
        Some(words)
    }
}

/// Build the unit rooted at `root`: BFS to relative depth `sp.h`, clipped at
/// absolute depth `sp.trunc`, then fill the skeleton key matrix top-down.
fn build_unit<K: CatalogKey>(fc: &CascadedTree<K>, root: NodeId, sp: SubParams) -> Unit {
    let tree = fc.tree();
    let root_depth = tree.depth(root);

    // BFS over the unit's nodes.
    let mut nodes = vec![root];
    let mut level_of = vec![0u8];
    let mut children_pos: Vec<[u32; 2]> = Vec::new();
    let mut head = 0usize;
    while head < nodes.len() {
        let v = nodes[head];
        let lvl = level_of[head];
        let mut cp = [NO_CHILD; 2];
        if (lvl as u32) < sp.h && tree.depth(v) < sp.trunc {
            for (slot, &c) in tree.children(v).iter().enumerate() {
                debug_assert!(slot < 2, "units require binary trees");
                debug_assert!(tree.depth(c) == tree.depth(v) + 1);
                cp[slot] = nodes.len() as u32;
                nodes.push(c);
                level_of.push(lvl + 1);
            }
        }
        children_pos.push(cp);
        head += 1;
    }
    debug_assert_eq!(tree.depth(root), root_depth);

    // Inorder sequence of unit-local indices (iterative, stack-based).
    let mut inorder = Vec::with_capacity(nodes.len());
    let mut stack: Vec<(u32, bool)> = vec![(0, false)];
    while let Some((z, expanded)) = stack.pop() {
        if expanded {
            inorder.push(z);
            continue;
        }
        let [l, r] = children_pos[z as usize];
        if r != NO_CHILD {
            stack.push((r, false));
        }
        stack.push((z, true));
        if l != NO_CHILD {
            stack.push((l, false));
        }
    }
    debug_assert_eq!(inorder.len(), nodes.len());

    // Skeleton forest: m trees, keys induced by bridges.
    let t = fc.keys(root).len();
    let m = t.div_ceil(sp.s).max(1);
    let zn = nodes.len();
    let mut keys = vec![0u32; m * zn];
    for j in 0..m {
        // Root key: (j+1)*s-th entry (1-indexed) = index (j+1)*s - 1; the
        // last tree takes the terminal +inf (index t - 1).
        let root_key = if j + 1 == m {
            (t - 1) as u32
        } else {
            ((j + 1) * sp.s - 1) as u32
        };
        keys[j * zn] = root_key;
        // Top-down in BFS order: parents precede children.
        for z in 0..zn {
            let kz = keys[j * zn + z];
            let v = nodes[z];
            for (slot, &cpos) in children_pos[z].iter().enumerate() {
                if cpos != NO_CHILD {
                    let bridge = fc.aug(v).bridges[slot][kz as usize];
                    keys[j * zn + cpos as usize] = bridge;
                }
            }
        }
    }

    Unit {
        root,
        nodes,
        children_pos,
        level_of,
        inorder,
        m: m as u32,
        keys,
    }
}

/// Verify Lemma 1 on a built substructure: for every unit and every
/// unit-local node, the keys across the `m` skeleton trees are pairwise
/// distinct. Returns the number of violating (unit, node) pairs (0 when the
/// lemma holds) and the minimum observed key gap at the unit roots.
pub fn check_lemma1(sub: &Substructure) -> (usize, usize) {
    let mut violations = 0usize;
    let mut min_root_gap = usize::MAX;
    for unit in &sub.units {
        let zn = unit.nodes.len();
        for z in 0..zn {
            let mut ks: Vec<u32> = (0..unit.m as usize).map(|j| unit.key(j, z)).collect();
            ks.sort_unstable();
            let distinct = ks.windows(2).all(|w| w[0] < w[1]);
            if !distinct {
                violations += 1;
            }
            if z == 0 && unit.m >= 3 {
                // Gap statistic over the sampled root keys; the final tree's
                // +inf key may legitimately sit next to the last sample, so
                // it is excluded.
                let mut sampled: Vec<u32> =
                    (0..unit.m as usize - 1).map(|j| unit.key(j, 0)).collect();
                sampled.sort_unstable();
                for w in sampled.windows(2) {
                    min_root_gap = min_root_gap.min((w[1] - w[0]) as usize);
                }
            }
        }
    }
    (violations, min_root_gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CoopParams, ParamMode};
    use fc_catalog::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build_sub(height: u32, total: usize, seed: u64) -> (CascadedTree<i64>, Substructure) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build_bidir(tree, 4);
        let params = CoopParams::derive(fc.fanout_bound(), height, ParamMode::Auto);
        let sp = params.subs[0];
        let sub = Substructure::build(&fc, sp);
        (fc, sub)
    }

    #[test]
    fn units_tile_the_covered_levels() {
        let (fc, sub) = build_sub(8, 5000, 1);
        let tree = fc.tree();
        let h = sub.sp.h;
        // Every node at depth multiple of h above trunc is a unit root.
        let expected: usize = tree
            .ids()
            .filter(|&id| tree.depth(id) % h == 0 && tree.depth(id) < sub.sp.trunc)
            .count();
        assert_eq!(sub.units.len(), expected);
        assert!(expected > 0);
    }

    #[test]
    fn unit_shape_matches_tree() {
        let (fc, sub) = build_sub(8, 5000, 2);
        let tree = fc.tree();
        for unit in &sub.units {
            assert_eq!(unit.nodes[0], unit.root);
            for (z, cp) in unit.children_pos.iter().enumerate() {
                for (slot, &pos) in cp.iter().enumerate() {
                    if pos != NO_CHILD {
                        let child = unit.nodes[pos as usize];
                        assert_eq!(tree.children(unit.nodes[z])[slot], child);
                        assert_eq!(unit.level_of[pos as usize], unit.level_of[z] + 1);
                    }
                }
            }
            // No node deeper than h relative levels.
            assert!(unit.level_of.iter().all(|&l| (l as u32) <= sub.sp.h));
        }
    }

    #[test]
    fn root_keys_are_the_sampled_entries() {
        let (fc, sub) = build_sub(8, 20_000, 3);
        for unit in &sub.units {
            let t = fc.keys(unit.root).len();
            let m = unit.m as usize;
            assert_eq!(m, t.div_ceil(sub.sp.s).max(1));
            for j in 0..m {
                let k = unit.key(j, 0) as usize;
                if j + 1 == m {
                    assert_eq!(k, t - 1, "last tree takes +inf");
                    assert_eq!(fc.keys(unit.root)[k], i64::SUPREMUM);
                } else {
                    assert_eq!(k, (j + 1) * sub.sp.s - 1);
                }
            }
        }
    }

    #[test]
    fn child_keys_follow_bridges() {
        let (fc, sub) = build_sub(6, 3000, 4);
        for unit in &sub.units {
            for j in 0..unit.m as usize {
                for z in 0..unit.nodes.len() {
                    for (slot, &cpos) in unit.children_pos[z].iter().enumerate() {
                        if cpos != NO_CHILD {
                            let expect =
                                fc.aug(unit.nodes[z]).bridges[slot][unit.key(j, z) as usize];
                            assert_eq!(unit.key(j, cpos as usize), expect);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lemma1_holds_on_random_instances() {
        for seed in 0..5 {
            let (_fc, sub) = build_sub(8, 10_000, 100 + seed);
            let (violations, min_gap) = check_lemma1(&sub);
            assert_eq!(violations, 0, "seed {seed}");
            // Root keys are spaced >= s by construction.
            if min_gap != usize::MAX {
                assert!(min_gap >= sub.sp.s, "gap {min_gap} < s {}", sub.sp.s);
            }
        }
    }

    #[test]
    fn lemma1_holds_on_skewed_instances() {
        let mut rng = SmallRng::seed_from_u64(55);
        let tree = gen::balanced_binary(8, 10_000, SizeDist::SingleHeavy(0.8), &mut rng);
        let fc = CascadedTree::build_bidir(tree, 4);
        let params = CoopParams::derive(fc.fanout_bound(), 8, ParamMode::Auto);
        for &sp in &params.subs {
            let sub = Substructure::build(&fc, sp);
            let (violations, _) = check_lemma1(&sub);
            assert_eq!(violations, 0, "h = {}", sp.h);
        }
    }

    #[test]
    fn sparse_units_have_single_tree_with_sup_key() {
        // Tiny catalogs: every unit root has fewer than s entries.
        let mut rng = SmallRng::seed_from_u64(9);
        let tree = gen::balanced_binary(6, 120, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build_bidir(tree, 4);
        let params = CoopParams::derive(fc.fanout_bound(), 6, ParamMode::Auto);
        let sub = Substructure::build(&fc, params.subs[0]);
        for unit in &sub.units {
            if fc.keys(unit.root).len() <= sub.sp.s {
                assert!(unit.is_sparse());
                let k = unit.key(0, 0) as usize;
                assert_eq!(fc.keys(unit.root)[k], i64::SUPREMUM);
            }
        }
    }

    #[test]
    fn zero_trunc_builds_no_units() {
        let (fc, _) = build_sub(6, 1000, 10);
        let sp = SubParams {
            i: 0,
            h: 1,
            s: 56,
            p_min: 1,
            p_max: u64::MAX,
            trunc: 0,
        };
        let sub = Substructure::build(&fc, sp);
        assert!(sub.units.is_empty());
        assert_eq!(sub.space(), 0);
    }
}
