//! Dynamic cooperative search — the paper's open problem 4.
//!
//! Section 5 lists "cooperative update in dynamic data structures" as
//! open, noting that *sequential* dynamic fractional cascading achieves
//! `O(log log n)` update time (Mehlhorn–Näher, reference [14]). This
//! module provides the standard **global rebuilding** baseline on top of
//! the static structure:
//!
//! * insertions and deletions are buffered per node (ordered sets);
//! * a search runs the static cooperative search and *corrects* each
//!   node's answer against the buffers (skip deleted static entries
//!   forward, race against the best buffered insertion) — `O(1 + d_v)`
//!   extra per node, where `d_v` is the deleted run at the answer;
//! * when the total buffered-change count exceeds a fraction of `n`, the
//!   whole structure is rebuilt from the logical catalogs, amortising the
//!   `O(n)` rebuild over `Θ(n)` updates.
//!
//! The result: exact dynamic queries at `O((log n)/log p)` + buffer
//! overhead, `O(1)` amortised-per-update buffering plus the amortised
//! rebuild — a baseline against which a true cooperative dynamic scheme
//! (still open) can be compared. Costs are charged to the usual [`Pram`].

use crate::explicit::coop_search_explicit;
use crate::params::ParamMode;
use crate::structure::CoopStructure;
use fc_catalog::{CatalogKey, CatalogTree, NodeId};
use fc_pram::cost::Pram;
use std::collections::BTreeSet;

/// A dynamic wrapper over the cooperative structure.
pub struct DynamicCoop<K: CatalogKey> {
    st: CoopStructure<K>,
    ins: Vec<BTreeSet<K>>,
    del: Vec<BTreeSet<K>>,
    changes: usize,
    mode: ParamMode,
    /// Rebuild when `changes > max(rebuild_min, frac * n)`.
    frac: f64,
    rebuild_min: usize,
    /// Number of rebuilds performed (for the amortisation experiment).
    pub rebuilds: u64,
}

impl<K: CatalogKey> DynamicCoop<K> {
    /// Wrap a freshly preprocessed structure. `frac` is the rebuild
    /// threshold as a fraction of the current total catalog size
    /// (`0 < frac`; 0.25 is a reasonable default).
    pub fn new(tree: CatalogTree<K>, mode: ParamMode, frac: f64) -> Self {
        assert!(frac > 0.0);
        let nodes = tree.len();
        DynamicCoop {
            st: CoopStructure::preprocess(tree, mode),
            ins: vec![BTreeSet::new(); nodes],
            del: vec![BTreeSet::new(); nodes],
            changes: 0,
            mode,
            frac,
            rebuild_min: 64,
            rebuilds: 0,
        }
    }

    /// The underlying static structure (rebuilt lazily).
    pub fn structure(&self) -> &CoopStructure<K> {
        &self.st
    }

    /// Buffered changes since the last rebuild.
    pub fn pending_changes(&self) -> usize {
        self.changes
    }

    /// Insert `key` into `node`'s catalog. No-op if the key is already
    /// logically present.
    pub fn insert(&mut self, node: NodeId, key: K, pram: &mut Pram) {
        debug_assert!(key < K::SUPREMUM);
        pram.seq(1);
        if self.del[node.idx()].remove(&key) {
            self.changes += 1;
            self.maybe_rebuild(pram);
            return;
        }
        if self.st.tree().catalog(node).binary_search(&key).is_ok() {
            return; // already present statically
        }
        if self.ins[node.idx()].insert(key) {
            self.changes += 1;
            self.maybe_rebuild(pram);
        }
    }

    /// Delete `key` from `node`'s catalog. No-op if absent.
    pub fn remove(&mut self, node: NodeId, key: K, pram: &mut Pram) {
        pram.seq(1);
        if self.ins[node.idx()].remove(&key) {
            self.changes += 1;
            self.maybe_rebuild(pram);
            return;
        }
        if self.st.tree().catalog(node).binary_search(&key).is_ok()
            && self.del[node.idx()].insert(key)
        {
            self.changes += 1;
            self.maybe_rebuild(pram);
        }
    }

    /// The logical catalog of `node` (static minus deletions plus
    /// insertions) — `O(catalog)` work; used by tests and rebuilds.
    pub fn logical_catalog(&self, node: NodeId) -> Vec<K> {
        let mut out: Vec<K> = self
            .st
            .tree()
            .catalog(node)
            .iter()
            .filter(|k| !self.del[node.idx()].contains(k))
            .copied()
            .collect();
        out.extend(self.ins[node.idx()].iter().copied());
        out.sort_unstable();
        out
    }

    /// Dynamic cooperative search: for every node on the root-to-leaf
    /// `path`, the smallest *logical* entry `>= y` (`None` = `+∞`).
    pub fn search(&self, path: &[NodeId], y: K, pram: &mut Pram) -> Vec<Option<K>> {
        let out = coop_search_explicit(&self.st, path, y, pram);
        path.iter()
            .zip(&out.finds)
            .map(|(&node, find)| {
                // Static candidate: skip past deleted entries.
                let cat = self.st.tree().catalog(node);
                let mut idx = find.native_idx as usize;
                let mut skips = 0usize;
                while idx < cat.len() && self.del[node.idx()].contains(&cat[idx]) {
                    idx += 1;
                    skips += 1;
                }
                let static_cand = cat.get(idx).copied();
                // Buffered candidate.
                let ins_cand = self.ins[node.idx()].range(y..).next().copied();
                let buf_len = self.ins[node.idx()].len();
                pram.seq(1 + skips + (usize::BITS - buf_len.leading_zeros()) as usize);
                match (static_cand, ins_cand) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .collect()
    }

    fn maybe_rebuild(&mut self, pram: &mut Pram) {
        let n = self.st.tree().total_catalog_size();
        let threshold = self.rebuild_min.max((n as f64 * self.frac) as usize);
        if self.changes <= threshold {
            return;
        }
        // Rebuild from the logical catalogs.
        let tree = self.st.tree();
        let parents: Vec<Option<u32>> = tree.ids().map(|id| tree.parent(id).map(|p| p.0)).collect();
        let catalogs: Vec<Vec<K>> = tree.ids().map(|id| self.logical_catalog(id)).collect();
        let new_tree = CatalogTree::from_parents(parents, catalogs);
        let new_n = new_tree.total_catalog_size();
        // Charge the parallel preprocessing cost (level-synchronous).
        let mut cost = pram.fork();
        self.st = CoopStructure::preprocess_cost(new_tree, self.mode, &mut cost);
        pram.join_max([cost]);
        let _ = new_n;
        for s in self.ins.iter_mut().chain(self.del.iter_mut()) {
            s.clear();
        }
        self.changes = 0;
        self.rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute(dy: &DynamicCoop<i64>, path: &[NodeId], y: i64) -> Vec<Option<i64>> {
        path.iter()
            .map(|&node| dy.logical_catalog(node).into_iter().find(|&k| k >= y))
            .collect()
    }

    #[test]
    fn dynamic_search_matches_brute_force_through_updates() {
        let mut rng = SmallRng::seed_from_u64(801);
        let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 14, Model::Crew);
        let node_count = dy.structure().tree().len();
        for step in 0..3000 {
            let node = NodeId(rng.gen_range(0..node_count as u32));
            let key = rng.gen_range(0..64_000i64);
            if rng.gen_bool(0.6) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
            if step % 150 == 0 {
                let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
                let path = dy.structure().tree().path_from_root(leaf);
                let y = rng.gen_range(-5..64_005i64);
                let got = dy.search(&path, y, &mut pram);
                assert_eq!(got, brute(&dy, &path, y), "step {step}");
            }
        }
        assert!(dy.rebuilds > 0, "enough churn must trigger rebuilds");
    }

    #[test]
    fn delete_then_search_skips_deleted_entries() {
        let mut rng = SmallRng::seed_from_u64(803);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 10.0); // never rebuild
        let mut pram = Pram::new(64, Model::Crew);
        let leaf = dy.structure().tree().leaves()[0];
        let path = dy.structure().tree().path_from_root(leaf);
        // Delete the first few entries of the root catalog and search below
        // them.
        let root = path[0];
        let first: Vec<i64> = dy
            .structure()
            .tree()
            .catalog(root)
            .iter()
            .take(3)
            .copied()
            .collect();
        for &k in &first {
            dy.remove(root, k, &mut pram);
        }
        let got = dy.search(&path, i64::MIN, &mut pram);
        let expect = dy.logical_catalog(root).first().copied();
        assert_eq!(got[0], expect);
    }

    #[test]
    fn insert_visible_immediately_and_idempotent() {
        let mut rng = SmallRng::seed_from_u64(805);
        let tree = gen::balanced_binary(4, 200, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 10.0);
        let mut pram = Pram::new(64, Model::Crew);
        let leaf = dy.structure().tree().leaves()[0];
        let path = dy.structure().tree().path_from_root(leaf);
        let node = path[1];
        dy.insert(node, 7777, &mut pram);
        dy.insert(node, 7777, &mut pram); // idempotent
        let got = dy.search(&path, 7777, &mut pram);
        assert_eq!(got[1], Some(7777));
        // Remove it again: gone.
        dy.remove(node, 7777, &mut pram);
        let got = dy.search(&path, 7777, &mut pram);
        assert_ne!(got[1], Some(7777));
    }

    #[test]
    fn rebuild_amortisation_bounds_total_steps() {
        let mut rng = SmallRng::seed_from_u64(807);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let updates = 4000usize;
        for _ in 0..updates {
            let node = NodeId(rng.gen_range(0..dy.structure().tree().len() as u32));
            dy.insert(node, rng.gen_range(0..1_000_000i64), &mut pram);
        }
        assert!(dy.rebuilds >= 2);
        // Amortised steps per update stay polylogarithmic-ish: the rebuild
        // cost is O(n polylog / p) and is triggered every Theta(n) updates.
        let per_update = pram.steps() as f64 / updates as f64;
        assert!(
            per_update < 50.0,
            "amortised steps per update too high: {per_update}"
        );
    }

    #[test]
    fn supremum_key_rejected_in_debug() {
        // SUPREMUM is reserved; inserting it is a programming error guarded
        // by a debug assertion — here we just verify normal keys work at
        // the extremes.
        let mut rng = SmallRng::seed_from_u64(809);
        let tree = gen::balanced_binary(3, 100, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 10.0);
        let mut pram = Pram::new(8, Model::Crew);
        let root = dy.structure().tree().root();
        dy.insert(root, i64::MAX - 1, &mut pram);
        let path = vec![root];
        let got = dy.search(&path, i64::MAX - 1, &mut pram);
        assert_eq!(got[0], Some(i64::MAX - 1));
    }
}
