//! Dynamic cooperative search — the paper's open problem 4.
//!
//! Section 5 lists "cooperative update in dynamic data structures" as
//! open, noting that *sequential* dynamic fractional cascading achieves
//! `O(log log n)` update time (Mehlhorn–Näher, reference [14]). This
//! module provides the standard **global rebuilding** baseline on top of
//! the static structure:
//!
//! * insertions and deletions are buffered per node (ordered sets);
//! * a search runs the static cooperative search and *corrects* each
//!   node's answer against the buffers (skip deleted static entries
//!   forward, race against the best buffered insertion) — `O(1 + d_v)`
//!   extra per node, where `d_v` is the deleted run at the answer;
//! * when the total buffered-change count exceeds a fraction of `n`, the
//!   whole structure is rebuilt from the logical catalogs, amortising the
//!   `O(n)` rebuild over `Θ(n)` updates.
//!
//! The result: exact dynamic queries at `O((log n)/log p)` + buffer
//! overhead, `O(1)` amortised-per-update buffering plus the amortised
//! rebuild — a baseline against which a true cooperative dynamic scheme
//! (still open) can be compared. Costs are charged to the usual [`Pram`].
//!
//! **Incremental mode** ([`DynamicCoop::new_incremental`]) replaces the
//! buffers with `fc_dyn`'s slot-arena cascade: each update patches
//! bridges and samples only along the affected node-to-root path, so
//! update cost is per key touched rather than per structure, and every
//! update is visible to [`DynamicCoop::search`] immediately. The static
//! structure then lags until the next (rare) rebuild — triggered only by
//! a density-invariant violation, detected corruption, or an explicit
//! [`DynamicCoop::force_rebuild`] — which doubles as compaction: the
//! cascade is rebuilt tombstone-free from its live catalogs. The
//! clone-and-rebuild path thus remains the always-correct fallback
//! behind the fast path.

use crate::explicit::coop_search_explicit;
use crate::params::ParamMode;
use crate::structure::CoopStructure;
use fc_catalog::{invariants, CatalogKey, CatalogTree, NodeId};
use fc_dyn::{DynCascade, DynConfig, DynError, QueryReport};
use fc_pram::cost::Pram;
use std::collections::BTreeSet;

/// One buffered update, for [`DynamicCoop::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp<K> {
    /// Insert `key` into `node`'s catalog.
    Insert(NodeId, K),
    /// Delete `key` from `node`'s catalog.
    Remove(NodeId, K),
}

/// Snapshot of the rebuild/generation counters, for the serving layer's
/// epoch bookkeeping and the amortisation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Monotone generation id: bumped by exactly 1 on every rebuild. The
    /// static structure returned by [`DynamicCoop::structure`] is the one
    /// produced by generation `generation`.
    pub generation: u64,
    /// Total rebuilds performed (same as `generation`; kept for clarity).
    pub rebuilds: u64,
    /// Buffered changes drained into the logical catalogs by the most
    /// recent rebuild.
    pub last_drained: usize,
    /// Buffered changes drained across all rebuilds.
    pub total_drained: usize,
    /// Changes buffered since the last rebuild.
    pub pending: usize,
    /// Rebuilds whose post-rebuild structural self-audit failed (must stay
    /// 0 — a nonzero value means the rebuild itself produced an invalid
    /// structure).
    pub audit_failures: u64,
    /// Incremental-mode: updates applied on the fast in-place path
    /// (zero in buffered mode).
    pub incremental_applies: u64,
    /// Incremental-mode: full clone-and-rebuild fallbacks forced by
    /// density violations or detected corruption (a subset of
    /// `rebuilds`; explicit `force_rebuild` calls are not counted here).
    pub fallback_rebuilds: u64,
    /// Incremental-mode: cumulative per-key-touched cost (nodes + slots
    /// walked) across all incremental applies.
    pub keys_touched: u64,
    /// Incremental-mode gauge: live native entries in the cascade.
    pub live_entries: u64,
    /// Incremental-mode gauge: tombstoned slots awaiting compaction.
    pub tombstones: u64,
}

impl GenStats {
    /// Fraction of cascade slots that are tombstones (0 outside
    /// incremental mode or when empty).
    pub fn tombstone_ratio(&self) -> f64 {
        let total = self.live_entries + self.tombstones;
        if total == 0 {
            0.0
        } else {
            self.tombstones as f64 / total as f64
        }
    }
}

/// A buffer-consistency violation found by [`DynamicCoop::audit_buffers`].
///
/// The insert/delete buffers are *authoritative* state (like the native
/// catalogs), but they obey invariants the update path maintains by
/// construction; a violated invariant means the buffers were corrupted
/// behind the API's back (fault injection, memory error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferBlame {
    /// `ins[node]` contains a key that is already present in the static
    /// catalog ([`DynamicCoop::insert`] never buffers such a key).
    InsDuplicatesStatic {
        /// Arena index of the node.
        node: u32,
    },
    /// `del[node]` contains a key absent from the static catalog
    /// ([`DynamicCoop::remove`] only buffers statically present keys).
    DelPhantom {
        /// Arena index of the node.
        node: u32,
    },
    /// `ins[node]` and `del[node]` overlap (the update path always removes
    /// from one before inserting into the other).
    InsDelOverlap {
        /// Arena index of the node.
        node: u32,
    },
    /// The change counter is inconsistent with the buffer sizes: every
    /// buffered op changes exactly one buffer element, so
    /// `changes >= Σ|ins| + Σ|del|` and both sides have equal parity.
    CounterMismatch {
        /// The stored counter.
        changes: usize,
        /// Total buffered elements.
        buffered: usize,
    },
    /// Incremental mode: the cascade's own structural audit found dirt
    /// (corrupt bridge/link/order, stale finger, density violation).
    IncrementalDirty {
        /// Arena index of the node the cascade audit blamed.
        node: u32,
    },
}

/// A dynamic wrapper over the cooperative structure.
pub struct DynamicCoop<K: CatalogKey> {
    st: CoopStructure<K>,
    ins: Vec<BTreeSet<K>>,
    del: Vec<BTreeSet<K>>,
    changes: usize,
    mode: ParamMode,
    /// Rebuild when `changes > max(rebuild_min, frac * n)`.
    frac: f64,
    rebuild_min: usize,
    /// Number of rebuilds performed (for the amortisation experiment).
    pub rebuilds: u64,
    gen: GenStats,
    /// Incremental cascade (`None` = classic buffered mode).
    incr: Option<DynCascade<K>>,
    /// Ops whose incremental apply aborted on typed corruption, awaiting
    /// re-apply after the fallback rebuild. Never dropped silently.
    retry: Vec<UpdateOp<K>>,
}

impl<K: CatalogKey> DynamicCoop<K> {
    /// Wrap a freshly preprocessed structure. `frac` is the rebuild
    /// threshold as a fraction of the current total catalog size
    /// (`0 < frac`; 0.25 is a reasonable default).
    pub fn new(tree: CatalogTree<K>, mode: ParamMode, frac: f64) -> Self {
        assert!(frac > 0.0);
        let nodes = tree.len();
        DynamicCoop {
            st: CoopStructure::preprocess(tree, mode),
            ins: vec![BTreeSet::new(); nodes],
            del: vec![BTreeSet::new(); nodes],
            changes: 0,
            mode,
            frac,
            rebuild_min: 64,
            rebuilds: 0,
            gen: GenStats::default(),
            incr: None,
            retry: Vec::new(),
        }
    }

    /// Like [`DynamicCoop::new`], but updates take `fc_dyn`'s incremental
    /// path: in-place node-to-root patches with per-key-touched cost,
    /// immediately visible to [`DynamicCoop::search`]. The buffered
    /// clone-and-rebuild machinery stays in place as the always-correct
    /// fallback (density violation, detected corruption, or explicit
    /// [`DynamicCoop::force_rebuild`]).
    pub fn new_incremental(tree: CatalogTree<K>, mode: ParamMode, frac: f64) -> Self {
        Self::new_incremental_with(tree, mode, frac, DynConfig::default())
    }

    /// [`DynamicCoop::new_incremental`] with explicit cascade tuning.
    pub fn new_incremental_with(
        tree: CatalogTree<K>,
        mode: ParamMode,
        frac: f64,
        cfg: DynConfig,
    ) -> Self {
        let mut dy = Self::new(tree, mode, frac);
        dy.incr = Some(DynCascade::build(dy.st.tree(), cfg));
        dy
    }

    /// Whether updates take the incremental path.
    pub fn incremental(&self) -> bool {
        self.incr.is_some()
    }

    /// The incremental cascade, when in incremental mode.
    pub fn incremental_cascade(&self) -> Option<&DynCascade<K>> {
        self.incr.as_ref()
    }

    /// The underlying static structure (rebuilt lazily).
    pub fn structure(&self) -> &CoopStructure<K> {
        &self.st
    }

    /// Buffered changes since the last rebuild.
    pub fn pending_changes(&self) -> usize {
        self.changes
    }

    /// The buffered (not yet drained) insertions at `node`.
    pub fn buffered_inserts(&self, node: NodeId) -> &BTreeSet<K> {
        &self.ins[node.idx()]
    }

    /// The buffered (not yet drained) deletions at `node`.
    pub fn buffered_deletes(&self, node: NodeId) -> &BTreeSet<K> {
        &self.del[node.idx()]
    }

    /// Insert `key` into `node`'s catalog. No-op if the key is already
    /// logically present.
    pub fn insert(&mut self, node: NodeId, key: K, pram: &mut Pram) {
        if self.incr.is_some() {
            let fallback = self.incr_apply(UpdateOp::Insert(node, key), pram);
            self.settle_incremental(fallback, pram);
            return;
        }
        self.buffer_insert(node, key, pram);
        self.maybe_rebuild(pram);
    }

    /// Delete `key` from `node`'s catalog. No-op if absent.
    pub fn remove(&mut self, node: NodeId, key: K, pram: &mut Pram) {
        if self.incr.is_some() {
            let fallback = self.incr_apply(UpdateOp::Remove(node, key), pram);
            self.settle_incremental(fallback, pram);
            return;
        }
        self.buffer_remove(node, key, pram);
        self.maybe_rebuild(pram);
    }

    /// Apply a batch of updates **atomically with respect to rebuilds**: no
    /// rebuild can fire while the batch is partially applied, so a rebuild
    /// (and hence any generation published from it by the serving layer)
    /// observes either none or all of the batch. The rebuild check runs
    /// once, after the last op. Returns `true` if that check rebuilt.
    ///
    /// In incremental mode each op patches the cascade in place and the
    /// commit-point check only rebuilds on a fallback trigger (density
    /// violation or detected corruption), so the return value stays
    /// "`true` iff the static structure is fresh to publish".
    pub fn apply_batch(&mut self, ops: &[UpdateOp<K>], pram: &mut Pram) -> bool {
        if self.incr.is_some() {
            let mut fallback = false;
            for &op in ops {
                fallback |= self.incr_apply(op, pram);
            }
            return self.settle_incremental(fallback, pram);
        }
        for &op in ops {
            match op {
                UpdateOp::Insert(node, key) => self.buffer_insert(node, key, pram),
                UpdateOp::Remove(node, key) => self.buffer_remove(node, key, pram),
            }
        }
        self.maybe_rebuild(pram)
    }

    /// One op on the incremental path. Returns `true` when the cascade
    /// asks for the clone-and-rebuild fallback (corruption detected or
    /// density bound crossed). A corrupted apply parks the op in the
    /// retry queue — it is never lost; `settle_incremental` rebuilds
    /// from the authoritative flat arenas and re-applies it.
    fn incr_apply(&mut self, op: UpdateOp<K>, pram: &mut Pram) -> bool {
        let Some(dc) = self.incr.as_mut() else {
            return false;
        };
        let res = match op {
            UpdateOp::Insert(node, key) => dc.apply_insert(node, key),
            UpdateOp::Remove(node, key) => dc.apply_remove(node, key),
        };
        match res {
            Ok(rep) => {
                pram.seq(1 + rep.cost() as usize);
                self.gen.incremental_applies += 1;
                self.gen.keys_touched += rep.cost() as u64;
                if !rep.noop {
                    self.changes += 1;
                }
                dc.needs_compaction().is_some()
            }
            Err(_) => {
                self.changes += 1;
                self.retry.push(op);
                true
            }
        }
    }

    /// Commit-point check for the incremental path: rebuild (compact)
    /// when any op of the batch tripped a fallback trigger, then drain
    /// the retry queue against the fresh cascade. An op that fails even
    /// on a freshly built cascade is a builder bug; it is surfaced as an
    /// `audit_failures` tick, never silently dropped mid-queue.
    fn settle_incremental(&mut self, fallback: bool, pram: &mut Pram) -> bool {
        let density = self
            .incr
            .as_ref()
            .is_some_and(|dc| dc.needs_compaction().is_some());
        if !(fallback || density) {
            return false;
        }
        self.gen.fallback_rebuilds += 1;
        self.force_rebuild(pram);
        let retry = std::mem::take(&mut self.retry);
        for op in retry {
            if let Some(dc) = self.incr.as_mut() {
                let res = match op {
                    UpdateOp::Insert(node, key) => dc.apply_insert(node, key),
                    UpdateOp::Remove(node, key) => dc.apply_remove(node, key),
                };
                match res {
                    Ok(rep) => {
                        pram.seq(1 + rep.cost() as usize);
                        self.gen.incremental_applies += 1;
                        self.gen.keys_touched += rep.cost() as u64;
                    }
                    Err(_) => self.gen.audit_failures += 1,
                }
            }
        }
        true
    }

    /// Buffer an insert without checking the rebuild threshold.
    fn buffer_insert(&mut self, node: NodeId, key: K, pram: &mut Pram) {
        debug_assert!(key < K::SUPREMUM);
        pram.seq(1);
        if self.del[node.idx()].remove(&key) {
            self.changes += 1;
            return;
        }
        if self.st.tree().catalog(node).binary_search(&key).is_ok() {
            return; // already present statically
        }
        if self.ins[node.idx()].insert(key) {
            self.changes += 1;
        }
    }

    /// Buffer a delete without checking the rebuild threshold.
    fn buffer_remove(&mut self, node: NodeId, key: K, pram: &mut Pram) {
        pram.seq(1);
        if self.ins[node.idx()].remove(&key) {
            self.changes += 1;
            return;
        }
        if self.st.tree().catalog(node).binary_search(&key).is_ok()
            && self.del[node.idx()].insert(key)
        {
            self.changes += 1;
        }
    }

    /// The logical catalog of `node` (static minus deletions plus
    /// insertions; in incremental mode the cascade's live native keys,
    /// recovered by flat arena scan) — `O(catalog)` work; used by tests
    /// and rebuilds.
    pub fn logical_catalog(&self, node: NodeId) -> Vec<K> {
        if let Some(dc) = &self.incr {
            return dc.live_native_catalog(node);
        }
        let mut out: Vec<K> = self
            .st
            .tree()
            .catalog(node)
            .iter()
            .filter(|k| !self.del[node.idx()].contains(k))
            .copied()
            .collect();
        out.extend(self.ins[node.idx()].iter().copied());
        out.sort_unstable();
        // The logical catalog is a set; dedup also keeps a rebuild safe
        // (no strict-order panic in the tree builder) when the insert
        // buffer was corrupted with a statically present key and the
        // rebuild fires before the corruption is audited and repaired.
        out.dedup();
        out
    }

    /// Dynamic cooperative search: for every node on the root-to-leaf
    /// `path`, the smallest *logical* entry `>= y` (`None` = `+∞`).
    ///
    /// In incremental mode this serves from the live cascade (every
    /// applied update visible); a typed cascade error degrades to the
    /// per-node flat-arena scan — correct under arbitrary link/bridge
    /// corruption because the arenas, not the links, are authoritative.
    /// Use [`DynamicCoop::search_checked`] to observe the error itself.
    pub fn search(&self, path: &[NodeId], y: K, pram: &mut Pram) -> Vec<Option<K>> {
        if let Some(dc) = &self.incr {
            let mut out = Vec::with_capacity(path.len());
            let mut rep = QueryReport::default();
            match dc.search_path_into(path, y, &mut out, &mut rep) {
                Ok(()) => {
                    pram.seq(1 + (rep.slots_walked + rep.bridge_hops) as usize);
                    return out;
                }
                Err(_) => {
                    // Degraded read: per-node scan over the flat arenas.
                    return path
                        .iter()
                        .map(|&n| dc.live_native_catalog(n).into_iter().find(|&k| k >= y))
                        .collect();
                }
            }
        }
        let out = coop_search_explicit(&self.st, path, y, pram);
        path.iter()
            .zip(&out.finds)
            .map(|(&node, find)| {
                // Static candidate: skip past deleted entries.
                let cat = self.st.tree().catalog(node);
                let mut idx = find.native_idx as usize;
                let mut skips = 0usize;
                while idx < cat.len() && self.del[node.idx()].contains(&cat[idx]) {
                    idx += 1;
                    skips += 1;
                }
                let static_cand = cat.get(idx).copied();
                // Buffered candidate.
                let ins_cand = self.ins[node.idx()].range(y..).next().copied();
                let buf_len = self.ins[node.idx()].len();
                pram.seq(1 + skips + (usize::BITS - buf_len.leading_zeros()) as usize);
                match (static_cand, ins_cand) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .collect()
    }

    /// Incremental-mode search that surfaces the cascade's typed error
    /// instead of degrading: callers distinguishing "fast-path answer"
    /// from "corruption detected" (the fault-injection gates) use this.
    /// In buffered mode it never errs.
    pub fn search_checked(
        &self,
        path: &[NodeId],
        y: K,
        pram: &mut Pram,
    ) -> Result<Vec<Option<K>>, DynError> {
        if let Some(dc) = &self.incr {
            let mut out = Vec::with_capacity(path.len());
            let mut rep = QueryReport::default();
            dc.search_path_into(path, y, &mut out, &mut rep)?;
            pram.seq(1 + (rep.slots_walked + rep.bridge_hops) as usize);
            return Ok(out);
        }
        Ok(self.search(path, y, pram))
    }

    fn maybe_rebuild(&mut self, pram: &mut Pram) -> bool {
        let n = self.st.tree().total_catalog_size();
        let threshold = self.rebuild_min.max((n as f64 * self.frac) as usize);
        if self.changes <= threshold {
            return false;
        }
        self.force_rebuild(pram);
        true
    }

    /// Rebuild the static structure from the logical catalogs now,
    /// regardless of the buffered-change threshold: drain the insert/delete
    /// buffers into the catalogs **atomically** (the buffers are read once,
    /// under exclusive access, so no half-applied state is observable), then
    /// re-assert structural cleanliness of the rebuilt cascade. The serving
    /// layer calls this to cut a fresh generation on demand.
    pub fn force_rebuild(&mut self, pram: &mut Pram) {
        let drained = self.changes;
        // Rebuild from the logical catalogs.
        let tree = self.st.tree();
        let parents: Vec<Option<u32>> = tree.ids().map(|id| tree.parent(id).map(|p| p.0)).collect();
        let catalogs: Vec<Vec<K>> = tree.ids().map(|id| self.logical_catalog(id)).collect();
        let new_tree = CatalogTree::from_parents(parents, catalogs);
        // Charge the parallel preprocessing cost (level-synchronous).
        let mut cost = pram.fork();
        self.st = CoopStructure::preprocess_cost(new_tree, self.mode, &mut cost);
        pram.join_max([cost]);
        // Incremental mode: the rebuild doubles as compaction — a fresh
        // tombstone-free cascade over the just-drained catalogs.
        if let Some(dc) = self.incr.take() {
            self.incr = Some(DynCascade::build(self.st.tree(), dc.config()));
        }
        for s in self.ins.iter_mut().chain(self.del.iter_mut()) {
            s.clear();
        }
        self.changes = 0;
        self.rebuilds += 1;
        self.gen.generation += 1;
        self.gen.rebuilds = self.rebuilds;
        self.gen.last_drained = drained;
        self.gen.total_drained += drained;
        // Post-rebuild self-audit: the freshly built cascade must satisfy
        // every fractional-cascading invariant. A failure here is a builder
        // bug, not user corruption — it is counted, never panicked on, so
        // the serving layer can refuse to publish the bad generation.
        if invariants::validate(&invariants::check_all(self.st.cascade())).is_err() {
            self.gen.audit_failures += 1;
        }
    }

    /// Rebuild/generation counters (see [`GenStats`]).
    pub fn gen_stats(&self) -> GenStats {
        let mut gs = GenStats {
            pending: self.changes,
            ..self.gen
        };
        if let Some(dc) = &self.incr {
            let c = dc.counters();
            gs.live_entries = c.live_native;
            gs.tombstones = c.tombstones;
        }
        gs
    }

    /// Check the buffer invariants the update path maintains by
    /// construction (see [`BufferBlame`]). A clean result is `Ok(())`; any
    /// violation means the buffers were corrupted behind the API (fault
    /// injection, memory error) and the next rebuild would bake the
    /// corruption into the catalogs.
    pub fn audit_buffers(&self) -> Result<(), Vec<BufferBlame>> {
        // Incremental mode: the cascade, not the buffers, is the
        // authoritative dynamic state — audit it instead.
        if let Some(dc) = &self.incr {
            return match dc.audit() {
                Ok(()) => Ok(()),
                Err(e) => Err(vec![BufferBlame::IncrementalDirty { node: e.node() }]),
            };
        }
        let mut blames = Vec::new();
        let mut buffered = 0usize;
        for id in self.st.tree().ids() {
            let i = id.idx();
            let native = self.st.tree().catalog(id);
            buffered += self.ins[i].len() + self.del[i].len();
            if self.ins[i].iter().any(|k| native.binary_search(k).is_ok()) {
                blames.push(BufferBlame::InsDuplicatesStatic { node: id.0 });
            }
            if self.del[i].iter().any(|k| native.binary_search(k).is_err()) {
                blames.push(BufferBlame::DelPhantom { node: id.0 });
            }
            if self.ins[i].intersection(&self.del[i]).next().is_some() {
                blames.push(BufferBlame::InsDelOverlap { node: id.0 });
            }
        }
        if self.changes < buffered || !(self.changes - buffered).is_multiple_of(2) {
            blames.push(BufferBlame::CounterMismatch {
                changes: self.changes,
                buffered,
            });
        }
        if blames.is_empty() {
            Ok(())
        } else {
            Err(blames)
        }
    }

    /// Mutable insert/delete buffers and change counter — a fault-injection
    /// hook for `fc-resilience` (buffer corruptions must be *detected* by
    /// [`DynamicCoop::audit_buffers`], never silently baked into a rebuild).
    /// Not part of the stable API.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn buffers_mut_for_fault_injection(
        &mut self,
    ) -> (&mut Vec<BTreeSet<K>>, &mut Vec<BTreeSet<K>>, &mut usize) {
        (&mut self.ins, &mut self.del, &mut self.changes)
    }

    /// Mutable static structure — repair hook for the serving layer's
    /// auditor (quarantine → repair → republish). Not part of the stable
    /// API.
    #[doc(hidden)]
    pub fn structure_mut_for_repair(&mut self) -> &mut CoopStructure<K> {
        &mut self.st
    }

    /// Mutable incremental cascade — fault-injection hook (corruptions
    /// must surface as typed errors/audit dirt, never wrong answers).
    /// Not part of the stable API.
    #[doc(hidden)]
    pub fn incremental_mut_for_fault_injection(&mut self) -> Option<&mut DynCascade<K>> {
        self.incr.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute(dy: &DynamicCoop<i64>, path: &[NodeId], y: i64) -> Vec<Option<i64>> {
        path.iter()
            .map(|&node| dy.logical_catalog(node).into_iter().find(|&k| k >= y))
            .collect()
    }

    #[test]
    fn dynamic_search_matches_brute_force_through_updates() {
        let mut rng = SmallRng::seed_from_u64(801);
        let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 14, Model::Crew);
        let node_count = dy.structure().tree().len();
        for step in 0..3000 {
            let node = NodeId(rng.gen_range(0..node_count as u32));
            let key = rng.gen_range(0..64_000i64);
            if rng.gen_bool(0.6) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
            if step % 150 == 0 {
                let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
                let path = dy.structure().tree().path_from_root(leaf);
                let y = rng.gen_range(-5..64_005i64);
                let got = dy.search(&path, y, &mut pram);
                assert_eq!(got, brute(&dy, &path, y), "step {step}");
            }
        }
        assert!(dy.rebuilds > 0, "enough churn must trigger rebuilds");
    }

    #[test]
    fn delete_then_search_skips_deleted_entries() {
        let mut rng = SmallRng::seed_from_u64(803);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 10.0); // never rebuild
        let mut pram = Pram::new(64, Model::Crew);
        let leaf = dy.structure().tree().leaves()[0];
        let path = dy.structure().tree().path_from_root(leaf);
        // Delete the first few entries of the root catalog and search below
        // them.
        let root = path[0];
        let first: Vec<i64> = dy
            .structure()
            .tree()
            .catalog(root)
            .iter()
            .take(3)
            .copied()
            .collect();
        for &k in &first {
            dy.remove(root, k, &mut pram);
        }
        let got = dy.search(&path, i64::MIN, &mut pram);
        let expect = dy.logical_catalog(root).first().copied();
        assert_eq!(got[0], expect);
    }

    #[test]
    fn insert_visible_immediately_and_idempotent() {
        let mut rng = SmallRng::seed_from_u64(805);
        let tree = gen::balanced_binary(4, 200, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 10.0);
        let mut pram = Pram::new(64, Model::Crew);
        let leaf = dy.structure().tree().leaves()[0];
        let path = dy.structure().tree().path_from_root(leaf);
        let node = path[1];
        dy.insert(node, 7777, &mut pram);
        dy.insert(node, 7777, &mut pram); // idempotent
        let got = dy.search(&path, 7777, &mut pram);
        assert_eq!(got[1], Some(7777));
        // Remove it again: gone.
        dy.remove(node, 7777, &mut pram);
        let got = dy.search(&path, 7777, &mut pram);
        assert_ne!(got[1], Some(7777));
    }

    #[test]
    fn rebuild_amortisation_bounds_total_steps() {
        let mut rng = SmallRng::seed_from_u64(807);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let updates = 4000usize;
        for _ in 0..updates {
            let node = NodeId(rng.gen_range(0..dy.structure().tree().len() as u32));
            dy.insert(node, rng.gen_range(0..1_000_000i64), &mut pram);
        }
        assert!(dy.rebuilds >= 2);
        // Amortised steps per update stay polylogarithmic-ish: the rebuild
        // cost is O(n polylog / p) and is triggered every Theta(n) updates.
        let per_update = pram.steps() as f64 / updates as f64;
        assert!(
            per_update < 50.0,
            "amortised steps per update too high: {per_update}"
        );
    }

    #[test]
    fn batch_apply_defers_rebuild_to_the_commit_point() {
        let mut rng = SmallRng::seed_from_u64(811);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let node_count = dy.structure().tree().len() as u32;
        // A batch big enough to cross the rebuild threshold several times
        // over must still rebuild at most once — at the commit point — so a
        // generation can never observe a half-applied batch.
        let ops: Vec<UpdateOp<i64>> = (0..3000)
            .map(|_| {
                let node = NodeId(rng.gen_range(0..node_count));
                let key = rng.gen_range(0..1_000_000i64);
                if rng.gen_bool(0.7) {
                    UpdateOp::Insert(node, key)
                } else {
                    UpdateOp::Remove(node, key)
                }
            })
            .collect();
        let before = dy.rebuilds;
        let rebuilt = dy.apply_batch(&ops, &mut pram);
        assert!(rebuilt, "3000 changes must cross the threshold");
        assert_eq!(dy.rebuilds, before + 1, "exactly one rebuild, at commit");
        assert_eq!(dy.pending_changes(), 0, "commit drained the buffers");
        // The drained state matches replaying the same ops one by one.
        let mut rng2 = SmallRng::seed_from_u64(811);
        let tree2 = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng2);
        let mut dy2 = DynamicCoop::new(tree2, ParamMode::Auto, 0.25);
        let mut pram2 = Pram::new(1 << 12, Model::Crew);
        for &op in &ops {
            match op {
                UpdateOp::Insert(n, k) => dy2.insert(n, k, &mut pram2),
                UpdateOp::Remove(n, k) => dy2.remove(n, k, &mut pram2),
            }
        }
        for id in dy.structure().tree().ids() {
            assert_eq!(dy.logical_catalog(id), dy2.logical_catalog(id));
        }
    }

    #[test]
    fn every_rebuild_reaudits_clean_and_bumps_the_generation() {
        let mut rng = SmallRng::seed_from_u64(813);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.1);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let node_count = dy.structure().tree().len() as u32;
        for _ in 0..4000 {
            let node = NodeId(rng.gen_range(0..node_count));
            dy.insert(node, rng.gen_range(0..1_000_000i64), &mut pram);
        }
        let gs = dy.gen_stats();
        assert!(gs.rebuilds >= 2);
        assert_eq!(gs.generation, gs.rebuilds);
        assert_eq!(gs.audit_failures, 0, "rebuilds must re-audit clean");
        assert!(gs.total_drained > 0);
        assert!(dy.audit_buffers().is_ok());
    }

    #[test]
    fn force_rebuild_drains_pending_changes() {
        let mut rng = SmallRng::seed_from_u64(815);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 100.0); // never auto-rebuild
        let mut pram = Pram::new(64, Model::Crew);
        let root = dy.structure().tree().root();
        dy.insert(root, 123_456_789, &mut pram);
        assert_eq!(dy.pending_changes(), 1);
        dy.force_rebuild(&mut pram);
        assert_eq!(dy.pending_changes(), 0);
        assert_eq!(dy.gen_stats().last_drained, 1);
        // Drained key is now in the static catalog.
        assert!(dy
            .structure()
            .tree()
            .catalog(root)
            .binary_search(&123_456_789)
            .is_ok());
    }

    #[test]
    fn corrupted_buffers_are_blamed() {
        let mut rng = SmallRng::seed_from_u64(817);
        let tree = gen::balanced_binary(5, 800, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 100.0);
        let mut pram = Pram::new(64, Model::Crew);
        let root = dy.structure().tree().root();
        dy.insert(root, 77_777_777, &mut pram);
        assert!(dy.audit_buffers().is_ok());
        // A statically present key smuggled into the insert buffer.
        let stat = dy.structure().tree().catalog(root)[0];
        {
            let (ins, _, _) = dy.buffers_mut_for_fault_injection();
            ins[root.idx()].insert(stat);
        }
        let blames = dy.audit_buffers().unwrap_err();
        assert!(blames
            .iter()
            .any(|b| matches!(b, BufferBlame::InsDuplicatesStatic { node } if *node == root.0)));
    }

    #[test]
    fn incremental_search_matches_brute_force_through_updates() {
        let mut rng = SmallRng::seed_from_u64(821);
        let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new_incremental(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 14, Model::Crew);
        let node_count = dy.structure().tree().len();
        for step in 0..3000 {
            let node = NodeId(rng.gen_range(0..node_count as u32));
            let key = rng.gen_range(0..64_000i64);
            if rng.gen_bool(0.6) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
            if step % 150 == 0 {
                let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
                let path = dy.structure().tree().path_from_root(leaf);
                let y = rng.gen_range(-5..64_005i64);
                let got = dy.search(&path, y, &mut pram);
                assert_eq!(got, brute(&dy, &path, y), "step {step}");
                let checked = dy.search_checked(&path, y, &mut pram).expect("clean");
                assert_eq!(checked, got);
            }
        }
        let gs = dy.gen_stats();
        assert!(
            gs.incremental_applies >= 3000,
            "every op took the fast path"
        );
        assert!(gs.keys_touched > 0);
        assert!(gs.live_entries > 0);
        assert!(dy.audit_buffers().is_ok());
        // Mean per-update touched cost stays per-key, not per-structure.
        let mean = gs.keys_touched as f64 / gs.incremental_applies as f64;
        assert!(mean < 300.0, "per-update cost too high: {mean}");
    }

    #[test]
    fn incremental_updates_avoid_threshold_rebuild_storms() {
        let mut rng = SmallRng::seed_from_u64(823);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new_incremental(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let node_count = dy.structure().tree().len() as u32;
        // The same churn that forces >= 2 rebuilds in buffered mode.
        for _ in 0..4000 {
            let node = NodeId(rng.gen_range(0..node_count));
            dy.insert(node, rng.gen_range(0..1_000_000i64), &mut pram);
        }
        // Inserts never create tombstones, so no density fallback either.
        assert_eq!(dy.rebuilds, 0, "no clone-and-rebuild on the fast path");
        assert_eq!(dy.gen_stats().fallback_rebuilds, 0);
    }

    #[test]
    fn incremental_corruption_is_typed_then_heals_by_fallback() {
        let mut rng = SmallRng::seed_from_u64(825);
        let tree = gen::balanced_binary(5, 1500, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new_incremental(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let root = dy.structure().tree().root();
        // Corrupt a bridge behind the API's back.
        assert!(dy
            .incremental_mut_for_fault_injection()
            .expect("incremental")
            .corrupt_bridge_for_fault_injection(root.0));
        // The audit sees it ...
        let blames = dy.audit_buffers().unwrap_err();
        assert!(matches!(blames[0], BufferBlame::IncrementalDirty { .. }));
        // ... checked search is typed or correct, plain search degrades
        // to the correct flat scan, never a wrong answer. Sweep paths
        // into both subtrees so the corrupted bridge is exercised no
        // matter which child it sampled.
        let leaves = dy.structure().tree().leaves();
        let probes = [leaves[0], leaves[leaves.len() - 1]];
        let mut saw_typed = false;
        for &leaf in &probes {
            let path = dy.structure().tree().path_from_root(leaf);
            for y in (0..64_000i64).step_by(997) {
                match dy.search_checked(&path, y, &mut pram) {
                    Ok(ans) => assert_eq!(ans, brute(&dy, &path, y), "y={y}"),
                    Err(_) => saw_typed = true,
                }
                assert_eq!(dy.search(&path, y, &mut pram), brute(&dy, &path, y));
            }
        }
        assert!(saw_typed, "the corrupted bridge must surface typed");
        // Now corrupt a link too: the next insert's locate walk hits the
        // cycle guard, the op parks in the retry queue, and the settle
        // step performs exactly one fallback rebuild that also clears the
        // bridge corruption — and the acked op survives the round trip.
        assert!(dy
            .incremental_mut_for_fault_injection()
            .expect("incremental")
            .corrupt_link_for_fault_injection(root.0));
        let before = dy.gen_stats().fallback_rebuilds;
        for k in 0..200i64 {
            dy.insert(root, 70_000 + k, &mut pram);
        }
        let gs = dy.gen_stats();
        assert!(gs.fallback_rebuilds > before, "the fallback must fire");
        assert!(dy.audit_buffers().is_ok(), "the rebuild heals everything");
        assert_eq!(gs.audit_failures, 0, "no op may be dropped silently");
        // All 200 acked inserts are present, including the parked one.
        let cat = dy.logical_catalog(root);
        for k in 0..200i64 {
            assert!(cat.contains(&(70_000 + k)), "lost acked insert {k}");
        }
    }

    #[test]
    fn incremental_density_violation_triggers_compaction_fallback() {
        let mut rng = SmallRng::seed_from_u64(827);
        let tree = gen::balanced_binary(4, 1200, SizeDist::Uniform, &mut rng);
        let cfg = fc_dyn::DynConfig {
            min_dead: 16,
            dead_frac: 0.1,
            ..fc_dyn::DynConfig::default()
        };
        let mut dy = DynamicCoop::new_incremental_with(tree, ParamMode::Auto, 0.25, cfg);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let root = dy.structure().tree().root();
        let keys = dy.logical_catalog(root);
        for &k in &keys {
            dy.remove(root, k, &mut pram);
        }
        let gs = dy.gen_stats();
        assert!(gs.fallback_rebuilds >= 1, "density must force compaction");
        assert!(dy.audit_buffers().is_ok(), "compaction leaves it clean");
        assert!(dy.logical_catalog(root).is_empty());
    }

    #[test]
    fn supremum_key_rejected_in_debug() {
        // SUPREMUM is reserved; inserting it is a programming error guarded
        // by a debug assertion — here we just verify normal keys work at
        // the extremes.
        let mut rng = SmallRng::seed_from_u64(809);
        let tree = gen::balanced_binary(3, 100, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 10.0);
        let mut pram = Pram::new(8, Model::Crew);
        let root = dy.structure().tree().root();
        dy.insert(root, i64::MAX - 1, &mut pram);
        let path = vec![root];
        let got = dy.search(&path, i64::MAX - 1, &mut pram);
        assert_eq!(got[0], Some(i64::MAX - 1));
    }
}
