//! `fc-lint`: workspace-wide static protocol analysis for the fc stack.
//!
//! A lightweight Rust tokenizer ([`lexer`]) and brace-scoped block parser
//! ([`scope`]) feed a small set of protocol rules ([`rules`]):
//!
//! | rule | checks |
//! |---|---|
//! | `lock-discipline` | guards held across fsync / channel send / `EpochPtr` publish; inconsistent pairwise lock order |
//! | `commit-order` | temp-write→fsync→rename, WAL-append-before-apply, persist-before-manifest orderings |
//! | `panic-free` | no `unwrap`/`expect`/panicking macros in any non-test workspace code |
//! | `hot-path-strict` | the PR 2 rule: panic-free *and* index-free inside the recovery/serving hot-path scopes |
//! | `traced-cells` | no raw `.cells[...]` escapes outside `crates/pram` |
//! | `hot-alloc` | allocations inside descent/probe hot paths (the flat-arena rewrite worklist) |
//!
//! Findings can be silenced two ways, both auditable:
//!
//! * inline: `// fc-lint: allow(<rule>) -- <reason>` (the reason is
//!   required — a reason-less suppression is itself a finding);
//! * the committed baseline `lint-baseline.txt` for grandfathered
//!   workspace-sweep findings ([`baseline`]).
//!
//! Every rule ships with a canary fixture pair under
//! `crates/lint/fixtures/` (`<rule>_bad.rs` must be flagged,
//! `<rule>_good.rs` must stay clean); `tests/lint_selftest.rs` asserts
//! both, so the analyzer is itself tested the same way the PR 2 discipline
//! analyzer gates on detected canaries.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod source;

use baseline::Baseline;
use lexer::{lex, SpannedTok};
use scope::{functions, FnItem};
use source::SourceFile;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (e.g. `lock-discipline`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable diagnostic.
    pub message: String,
    /// Trimmed raw source line, used for baseline matching.
    pub content: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A preprocessed file plus its token stream and function map. Tokens are
/// lexed over non-test code only (`code_end`).
pub struct Analyzed {
    pub src: SourceFile,
    pub toks: Vec<SpannedTok>,
    pub fns: Vec<FnItem>,
}

impl Analyzed {
    fn new(src: SourceFile) -> Analyzed {
        let toks = lex(&src.code, src.code_end);
        let fns = functions(&toks);
        Analyzed { src, toks, fns }
    }

    /// The trimmed raw source at 1-based `line` (empty when out of range).
    pub fn raw_line(&self, line: usize) -> String {
        self.src
            .raw
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }
}

/// Side effects a function (transitively) performs, for the lock rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    /// Calls `sync_all`/`sync_data` (possibly through callees).
    pub fsync: bool,
    /// Sends on a channel.
    pub send: bool,
    /// Publishes through an `EpochPtr` swap.
    pub publish: bool,
}

impl Effects {
    fn any(&self) -> bool {
        self.fsync || self.send || self.publish
    }

    fn union(&mut self, other: Effects) -> bool {
        let before = *self;
        self.fsync |= other.fsync;
        self.send |= other.send;
        self.publish |= other.publish;
        *self != before
    }
}

/// The analyzed workspace: every non-test source file under `crates/`,
/// plus the transitive function-effect map the lock rule consumes.
pub struct Workspace {
    pub files: Vec<Analyzed>,
    /// Function name → transitive effects (name-based over-approximation:
    /// same-named functions merge, which errs toward reporting).
    pub effects: HashMap<String, Effects>,
    /// Fixture/selftest mode: rules apply to every file instead of their
    /// configured path scopes.
    pub force_apply: bool,
}

impl Workspace {
    /// Load every `.rs` file under `<root>/crates`, skipping `target/`
    /// and fixture corpora.
    pub fn load(root: &Path) -> Result<Workspace, Vec<String>> {
        let mut paths = Vec::new();
        collect_rs(&root.join("crates"), &mut paths);
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        let mut errors = Vec::new();
        for path in &paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            match SourceFile::load(path, &rel) {
                Ok(src) => files.push(Analyzed::new(src)),
                Err(e) => errors.push(e),
            }
        }
        if !errors.is_empty() {
            return Err(errors);
        }
        Ok(Workspace::from_files(files, false))
    }

    /// A one-file workspace for fixture selftests: rules apply regardless
    /// of their path scopes.
    pub fn single(path: &Path) -> Result<Workspace, String> {
        let rel = path.to_string_lossy().replace('\\', "/");
        let src = SourceFile::load(path, &rel)?;
        Ok(Workspace::from_files(vec![Analyzed::new(src)], true))
    }

    /// Same as [`Workspace::single`] but over in-memory source.
    pub fn single_text(rel: &str, text: &str) -> Workspace {
        Workspace::from_files(vec![Analyzed::new(SourceFile::from_text(rel, text))], true)
    }

    fn from_files(files: Vec<Analyzed>, force_apply: bool) -> Workspace {
        let effects = compute_effects(&files);
        Workspace {
            files,
            effects,
            force_apply,
        }
    }

    /// Look up a file by workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&Analyzed> {
        self.files.iter().find(|f| f.src.rel == rel)
    }
}

/// Direct + transitive effect computation: seed each function with the
/// effects its own body performs, then propagate through call tokens
/// (`name(`, `.name(`, `path::name(`) by name to a fixpoint.
fn compute_effects(files: &[Analyzed]) -> HashMap<String, Effects> {
    // Method names that must never propagate by bare name: they collide
    // with std APIs (`Vec::swap`, atomics' `swap`, io `write`) and the
    // direct patterns below already catch the real sites.
    const NO_PROPAGATE: &[&str] = &[
        "swap",
        "send",
        "lock",
        "read",
        "write",
        "sync_all",
        "sync_data",
    ];
    let mut map: HashMap<String, Effects> = HashMap::new();
    // Call lists per function, gathered once.
    let mut calls: Vec<(String, Vec<String>)> = Vec::new();
    for file in files {
        for f in &file.fns {
            let body = &file.toks[f.body_start..=f.body_end.min(file.toks.len() - 1)];
            let mut eff = Effects::default();
            let mut callees = Vec::new();
            for i in 0..body.len() {
                if let Some(name) = call_at(body, i) {
                    match name {
                        "sync_all" | "sync_data" => eff.fsync = true,
                        "send" if body.get(i.wrapping_sub(1)).is_some_and(|t| t.is('.')) => {
                            eff.send = true
                        }
                        "swap" if receiver_mentions(body, i, "epoch") => eff.publish = true,
                        _ if !NO_PROPAGATE.contains(&name) => callees.push(name.to_owned()),
                        _ => {}
                    }
                }
            }
            map.entry(f.name.clone()).or_default().union(eff);
            calls.push((f.name.clone(), callees));
        }
    }
    // Fixpoint: merge callee effects into callers until stable.
    loop {
        let mut changed = false;
        for (name, callees) in &calls {
            let mut acc = Effects::default();
            for c in callees {
                if let Some(e) = map.get(c) {
                    acc.union(*e);
                }
            }
            if acc.any() {
                if let Some(e) = map.get_mut(name) {
                    changed |= e.union(acc);
                }
            }
        }
        if !changed {
            break;
        }
    }
    map
}

/// If token `i` is an identifier immediately followed by `(` — optionally
/// through a `::<...>` turbofish — return its name.
pub(crate) fn call_at(toks: &[SpannedTok], i: usize) -> Option<&str> {
    let name = toks.get(i)?.ident()?;
    let mut j = i + 1;
    // Skip `::<...>` (turbofish) between name and call parens.
    if toks.get(j).is_some_and(|t| t.is(':')) && toks.get(j + 1).is_some_and(|t| t.is(':')) {
        if toks.get(j + 2).is_some_and(|t| t.is('<')) {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < toks.len() {
                if toks[k].is('<') {
                    depth += 1;
                } else if toks[k].is('>') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        } else {
            // `path::name(...)`: the *next* segment is the call, not this
            // identifier.
            return None;
        }
    }
    if toks.get(j).is_some_and(|t| t.is('(')) {
        Some(name)
    } else {
        None
    }
}

/// Whether the receiver chain of the method call at token `i` (an ident
/// preceded by `.`) contains an identifier containing `needle`.
pub(crate) fn receiver_mentions(toks: &[SpannedTok], i: usize, needle: &str) -> bool {
    let mut j = i;
    // Walk back over `ident . ident . ... .` before the method name.
    while j >= 1 && toks[j - 1].is('.') {
        if j < 2 {
            return false;
        }
        match toks[j - 2].ident() {
            Some(id) => {
                if id.contains(needle) {
                    return true;
                }
                j -= 2;
            }
            None => return false,
        }
    }
    false
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .is_some_and(|n| n == "target" || n == "fixtures");
            if !skip {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Outcome of a lint run, after suppression and baseline filtering.
pub struct Report {
    /// Findings that fail the run.
    pub findings: Vec<Finding>,
    /// Findings silenced by reasoned inline suppressions.
    pub suppressed: usize,
    /// Findings silenced by the committed baseline.
    pub grandfathered: usize,
    /// Baseline entries no longer matched by any finding.
    pub stale_baseline: Vec<String>,
    /// Rules that ran.
    pub rules_run: Vec<&'static str>,
}

/// Run `rule_ids` (every registered rule when empty) over the workspace at
/// `root`, applying suppressions and — for baselined rules — the baseline
/// at `baseline_path`.
pub fn run(
    root: &Path,
    rule_ids: &[String],
    baseline_path: Option<&Path>,
) -> Result<Report, Vec<String>> {
    let ws = Workspace::load(root)?;
    let rules = rules::select(rule_ids).map_err(|e| vec![e])?;
    let mut baseline = match baseline_path {
        Some(p) => Baseline::load(p).map_err(|e| vec![e])?,
        None => Baseline::default(),
    };
    let mut raw = Vec::new();
    for rule in &rules {
        rule.check(&ws, &mut raw);
    }
    rules::check_suppression_comments(&ws, &mut raw);
    let mut report = Report {
        findings: Vec::new(),
        suppressed: 0,
        grandfathered: 0,
        stale_baseline: Vec::new(),
        rules_run: rules.iter().map(|r| r.id()).collect(),
    };
    let baselined: BTreeMap<&str, bool> = rules.iter().map(|r| (r.id(), r.baselined())).collect();
    for f in raw {
        let suppressed = ws
            .file(&f.file)
            .is_some_and(|a| a.src.is_suppressed(f.rule, f.line));
        if suppressed {
            report.suppressed += 1;
        } else if baselined.get(f.rule).copied().unwrap_or(false) && baseline.consume(&f) {
            report.grandfathered += 1;
        } else {
            report.findings.push(f);
        }
    }
    report.stale_baseline = baseline.stale();
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Run every baselined rule and render a fresh baseline for the surviving
/// (post-suppression) findings.
pub fn render_baseline(root: &Path) -> Result<String, Vec<String>> {
    let report = run(root, &[], None)?;
    let baselined: Vec<&str> = rules::all()
        .iter()
        .filter(|r| r.baselined())
        .map(|r| r.id())
        .collect();
    let keep: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| baselined.contains(&f.rule))
        .collect();
    Ok(Baseline::render(&keep))
}

/// Run a single rule over one fixture file (selftest entry point):
/// path scopes are ignored, suppressions are honored, no baseline.
pub fn check_fixture(rule_id: &str, path: &Path) -> Result<Vec<Finding>, String> {
    let ws = Workspace::single(path)?;
    let rules = rules::select(std::slice::from_ref(&rule_id.to_owned()))?;
    let mut out = Vec::new();
    for rule in &rules {
        rule.check(&ws, &mut out);
    }
    rules::check_suppression_comments(&ws, &mut out);
    let file = &ws.files[0];
    out.retain(|f| !file.src.is_suppressed(f.rule, f.line));
    Ok(out)
}
