//! The rule registry and the shared scope configuration.
//!
//! Every rule implements [`Rule`] and registers in [`all`]. Rules whose
//! findings may be grandfathered via the committed baseline return `true`
//! from [`Rule::baselined`]; the strict protocol rules (`hot-path-strict`,
//! `commit-order`, `traced-cells`) are zero-tolerance — only reasoned
//! inline suppressions can silence them.

mod commit;
mod locks;
mod simple;

use crate::{Finding, Workspace};

pub use commit::CommitOrder;
pub use locks::LockDiscipline;
pub use simple::{HotAlloc, HotPathStrict, PanicFree, TracedCells};

/// A static-analysis rule.
pub trait Rule {
    /// Stable id, used in `allow(...)`, `--rule`, baseline entries, and
    /// fixture file names.
    fn id(&self) -> &'static str;
    /// One-line description for `xtask lint --list`.
    fn description(&self) -> &'static str;
    /// Whether the committed baseline may grandfather this rule's
    /// findings.
    fn baselined(&self) -> bool {
        false
    }
    /// Emit findings for the workspace.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every registered rule, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(LockDiscipline),
        Box::new(CommitOrder),
        Box::new(HotPathStrict),
        Box::new(TracedCells),
        Box::new(PanicFree),
        Box::new(HotAlloc),
    ]
}

/// Resolve rule ids to rules; empty input selects all.
pub fn select(ids: &[String]) -> Result<Vec<Box<dyn Rule>>, String> {
    let registry = all();
    if ids.is_empty() {
        return Ok(registry);
    }
    let mut out = Vec::new();
    for id in ids {
        match registry.iter().position(|r| r.id() == id) {
            Some(_) => {}
            None => {
                let known: Vec<&str> = registry.iter().map(|r| r.id()).collect();
                return Err(format!("unknown rule `{id}` (known: {})", known.join(", ")));
            }
        }
    }
    for r in all() {
        if ids.iter().any(|id| id == r.id()) {
            out.push(r);
        }
    }
    Ok(out)
}

/// The meta-rule over the suppression grammar itself: every
/// `fc-lint: allow(...)` must carry a non-empty `-- <reason>` and name
/// only known rule ids. Runs on every lint invocation.
pub fn check_suppression_comments(ws: &Workspace, out: &mut Vec<Finding>) {
    let known: Vec<&'static str> = all().iter().map(|r| r.id()).collect();
    for file in &ws.files {
        for s in &file.src.suppressions {
            if s.at_line > file.src.code_end {
                // Suppressions inside test modules are inert (rules skip
                // test code) — don't audit them.
                continue;
            }
            if !s.has_reason {
                out.push(Finding {
                    rule: "suppression",
                    file: file.src.rel.clone(),
                    line: s.at_line,
                    message: "fc-lint suppression without a required reason \
                              (grammar: `fc-lint: allow(<rule>) -- <reason>`)"
                        .into(),
                    content: file.raw_line(s.at_line),
                });
            }
            for r in &s.rules {
                if !known.contains(&r.as_str()) {
                    out.push(Finding {
                        rule: "suppression",
                        file: file.src.rel.clone(),
                        line: s.at_line,
                        message: format!(
                            "fc-lint suppression names unknown rule `{r}` (known: {})",
                            known.join(", ")
                        ),
                        content: file.raw_line(s.at_line),
                    });
                }
            }
        }
    }
}

/// Whether `rel` falls inside the crates the concurrency rules watch.
pub(crate) fn in_concurrent_crates(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
        || rel.starts_with("crates/shard/src/")
        || rel.starts_with("crates/store/src/")
        || rel.starts_with("crates/net/src/")
}

/// Whether `rel` is part of the network ingress, where the
/// socket-write-under-guard event class applies (a blocked peer must
/// never be able to extend a lock hold).
pub(crate) fn in_net_crate(rel: &str) -> bool {
    rel.starts_with("crates/net/src/")
}

/// The crate a workspace-relative path belongs to (for per-crate lock
/// identity scoping).
pub(crate) fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(rel)
}
