//! `commit-order`: syntactic commit-point ordering inside each function
//! of the durability layer.
//!
//! The durability contract has three orderings that a refactor must never
//! silently invert — each is checked *within a function body* by token
//! position, so an "ack before fsync" slip fails `xtask lint` in CI, not
//! the kill -9 crash gate three jobs later:
//!
//! 1. **temp-write → fsync → rename** — any function that both writes
//!    file bytes (`write_all`) and commits via `rename` must fsync
//!    between the last write and the first rename: renaming an unsynced
//!    temp file can commit garbage after a crash.
//! 2. **WAL-append before in-memory apply** — a function that both
//!    appends to the WAL (`append`/`append_batch`) and applies ops to a
//!    live service (`svc.update_batch(..)` / `cluster.update_batch(..)`)
//!    must append first: the acked batch must be on disk before any
//!    reader can observe its effects.
//! 3. **persist before manifest commit** — a function that persists
//!    epoch/snapshot data and commits a manifest (`write_manifest`) must
//!    persist first: the manifest rename is the commit point, and
//!    committing a manifest that points at unwritten data is a torn
//!    split.
//!
//! Scope: `crates/store/src/{snapshot,wal,manifest,frame,store}.rs` and
//! the two `durable.rs` files (serve, shard).

use super::Rule;
use crate::lexer::SpannedTok;
use crate::{call_at, Finding, Workspace};

pub struct CommitOrder;

const SCOPE: &[&str] = &[
    "crates/store/src/snapshot.rs",
    "crates/store/src/wal.rs",
    "crates/store/src/manifest.rs",
    "crates/store/src/frame.rs",
    "crates/store/src/store.rs",
    "crates/serve/src/durable.rs",
    "crates/shard/src/durable.rs",
];

impl Rule for CommitOrder {
    fn id(&self) -> &'static str {
        "commit-order"
    }

    fn description(&self) -> &'static str {
        "temp-write→fsync→rename, WAL-append-before-apply, persist-before-manifest orderings"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !ws.force_apply && !SCOPE.contains(&file.src.rel.as_str()) {
                continue;
            }
            for f in &file.fns {
                if f.body_start >= file.toks.len() || f.body_end >= file.toks.len() {
                    continue;
                }
                let body = &file.toks[f.body_start..=f.body_end];
                check_body(&file.src.rel, &f.name, body, file, out);
            }
        }
    }
}

fn check_body(
    rel: &str,
    fn_name: &str,
    body: &[SpannedTok],
    file: &crate::Analyzed,
    out: &mut Vec<Finding>,
) {
    let mut last_write: Option<usize> = None;
    let mut syncs: Vec<usize> = Vec::new();
    let mut first_rename: Option<usize> = None;
    let mut first_append: Option<usize> = None;
    let mut first_apply: Option<usize> = None;
    let mut first_persist: Option<usize> = None;
    let mut first_manifest: Option<usize> = None;

    for i in 0..body.len() {
        let Some(name) = call_at(body, i) else {
            continue;
        };
        let after_dot = i >= 1 && body[i - 1].is('.');
        match name {
            "write_all" if after_dot => last_write = Some(i),
            "sync_all" | "sync_data" if after_dot => syncs.push(i),
            "rename" => {
                first_rename.get_or_insert(i);
            }
            "append" | "append_batch" if after_dot => {
                first_append.get_or_insert(i);
            }
            "update_batch" if after_dot && receiver_is(body, i, &["svc", "cluster"]) => {
                first_apply.get_or_insert(i);
            }
            "persist_epoch" | "persist_snapshot" | "write_snapshot_file" => {
                first_persist.get_or_insert(i);
            }
            "write_manifest" => {
                first_manifest.get_or_insert(i);
            }
            _ => {}
        }
    }

    let mut report = |at: usize, msg: String| {
        out.push(Finding {
            rule: "commit-order",
            file: rel.to_owned(),
            line: body[at].line,
            message: format!("{msg} in `{fn_name}`"),
            content: file.raw_line(body[at].line),
        });
    };

    // 1. temp-write → fsync → rename.
    if let (Some(w), Some(r)) = (last_write, first_rename) {
        if w < r && !syncs.iter().any(|&s| w < s && s < r) {
            report(
                r,
                "commit point out of order: `rename` commits bytes never fsynced — \
                 the temp-write→fsync→rename protocol requires a sync between the \
                 last `write_all` and the rename"
                    .into(),
            );
        }
    }

    // 2. WAL-append before in-memory apply.
    if let (Some(a), Some(p)) = (first_append, first_apply) {
        if p < a {
            report(
                p,
                "write-ahead violated: in-memory apply precedes the WAL append — \
                 an acked batch would not survive a crash between the two"
                    .into(),
            );
        }
    } else if first_apply.is_some() && first_append.is_none() {
        report(
            first_apply.unwrap_or(0),
            "in-memory apply with no WAL append in the same function — durable \
             mutators must log before applying (or route through one that does)"
                .into(),
        );
    }

    // 3. persist before manifest commit.
    if let (Some(p), Some(m)) = (first_persist, first_manifest) {
        if m < p {
            report(
                m,
                "manifest committed before the data it points at was persisted — \
                 the manifest rename is the commit point and must come last"
                    .into(),
            );
        }
    }
}

/// Whether the receiver ident directly before `.name(` at `i` is one of
/// `wanted` (e.g. `self.svc.update_batch(..)` → `svc`).
fn receiver_is(body: &[SpannedTok], i: usize, wanted: &[&str]) -> bool {
    if i >= 2 && body[i - 1].is('.') {
        if let Some(id) = body[i - 2].ident() {
            return wanted.contains(&id);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::single_text("t.rs", src);
        let mut out = Vec::new();
        CommitOrder.check(&ws, &mut out);
        out
    }

    #[test]
    fn rename_without_intervening_fsync_is_flagged() {
        let f = findings(
            "fn bad(f: &F) {\n    f.write_all(b);\n    fs::rename(a, b);\n    f.sync_all();\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never fsynced"));
        let ok = findings(
            "fn good(f: &F) {\n    f.write_all(b);\n    f.sync_all();\n    fs::rename(a, b);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn gated_fsync_between_write_and_rename_passes() {
        // The real atomic_write gates fsync on a flag; the token still
        // sits between write and rename, which is what the rule checks.
        let ok = findings(
            "fn write(f: &F, fsync: bool) {\n    f.write_all(b);\n    if fsync { f.sync_all(); }\n    fs::rename(a, b);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn apply_before_append_is_flagged() {
        let f = findings(
            "fn bad(&self, ops: &[Op]) {\n    self.svc.update_batch(ops);\n    self.store.append_batch(ops);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("write-ahead violated"));
        let ok = findings(
            "fn good(&self, ops: &[Op]) {\n    self.store.append_batch(ops);\n    self.svc.update_batch(ops);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn apply_with_no_append_at_all_is_flagged() {
        let f = findings("fn bad(&self, ops: &[Op]) {\n    self.cluster.update_batch(ops);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no WAL append"));
    }

    #[test]
    fn manifest_before_persist_is_flagged() {
        let f = findings(
            "fn bad(&self) {\n    write_manifest::<K>(d, m, true);\n    persist_epoch(c, d, e, s);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("commit point and must come last"));
        let ok = findings(
            "fn good(&self) {\n    persist_epoch(c, d, e, s);\n    write_manifest::<K>(d, m, true);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }
}
