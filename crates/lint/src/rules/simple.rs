//! The line-lexical rules: workspace panic-freedom, the strict hot-path
//! scopes inherited from PR 2, traced-buffer escapes, and the hot-path
//! allocation worklist.

use super::Rule;
use crate::{Analyzed, Finding, Workspace};

/// `panic-free`: no `.unwrap()`, `.expect()`, or panicking macros in any
/// non-test workspace code. Pre-existing sites are grandfathered in the
/// committed baseline; new ones fail. (`.unwrap_or*` never matches — the
/// patterns require the opening paren.)
pub struct PanicFree;

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

impl Rule for PanicFree {
    fn id(&self) -> &'static str {
        "panic-free"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panicking macros in non-test workspace code (baselined)"
    }

    fn baselined(&self) -> bool {
        true
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            scan_lines(file, 0, file.src.code_end, PANIC_PATTERNS, out, |pat| {
                (
                    "panic-free",
                    format!(
                        "`{}` in non-test code — return a typed error instead \
                         (or suppress with a reason / baseline if grandfathered)",
                        pat.trim_end_matches('(')
                    ),
                )
            });
        }
    }
}

/// `hot-path-strict`: the PR 2 rule, scoped to the recovery/serving hot
/// paths — panic-free *and* free of direct slice indexing, so a corrupt
/// structure surfaces as a blamed typed error, never a panic. The scope
/// list is validated against the filesystem: a renamed path or function
/// is a finding (scope rot), not a silent un-lint.
pub struct HotPathStrict;

/// What part of a file the strict rule applies to.
#[derive(Clone, Copy)]
pub enum StrictScope {
    /// The brace-matched body of the named `fn`.
    Fn(&'static str),
    /// Everything up to the trailing `#[cfg(test)]` module.
    UntilTests,
}

/// The strict hot-path scope list (kept from PR 2, extended since).
pub const STRICT_SCOPES: &[(&str, StrictScope)] = &[
    (
        "crates/catalog/src/cascade.rs",
        StrictScope::Fn("checked_descend"),
    ),
    (
        "crates/core/src/explicit.rs",
        StrictScope::Fn("audit_locate"),
    ),
    ("crates/resilience/src/audit.rs", StrictScope::UntilTests),
    ("crates/resilience/src/repair.rs", StrictScope::UntilTests),
    ("crates/serve/src/worker.rs", StrictScope::UntilTests),
    ("crates/shard/src/partition.rs", StrictScope::UntilTests),
    ("crates/shard/src/router.rs", StrictScope::UntilTests),
    ("crates/store/src/snapshot.rs", StrictScope::UntilTests),
    ("crates/store/src/wal.rs", StrictScope::UntilTests),
    ("crates/store/src/recover.rs", StrictScope::UntilTests),
    ("crates/store/src/manifest.rs", StrictScope::UntilTests),
    // PR 9: the wire — hostile bytes reach these paths directly, so the
    // frame decode loop, accept loop, and drain path must surface every
    // anomaly as a typed error, never a panic or an unchecked index.
    ("crates/net/src/proto.rs", StrictScope::UntilTests),
    ("crates/net/src/server.rs", StrictScope::UntilTests),
    // PR 10: the incremental cascade — these walk pointer-linked slot
    // arenas that fault injection corrupts on purpose, so every torn
    // link, bad bridge, or out-of-range slot must come back as a blamed
    // `DynError`, never a panic or an unchecked index.
    (
        "crates/dyn/src/cascade.rs",
        StrictScope::Fn("search_path_into"),
    ),
    ("crates/dyn/src/cascade.rs", StrictScope::Fn("locate_ge")),
    ("crates/dyn/src/cascade.rs", StrictScope::Fn("descend_from")),
    (
        "crates/dyn/src/cascade.rs",
        StrictScope::Fn("native_successor_from"),
    ),
    ("crates/dyn/src/cascade.rs", StrictScope::Fn("apply_insert")),
    ("crates/dyn/src/cascade.rs", StrictScope::Fn("apply_remove")),
];

impl Rule for HotPathStrict {
    fn id(&self) -> &'static str {
        "hot-path-strict"
    }

    fn description(&self) -> &'static str {
        "panic-free AND index-free hot-path scopes; configured scopes must exist (no scope rot)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        if ws.force_apply {
            for file in &ws.files {
                check_strict(file, 0, file.src.code_end, out);
            }
            return;
        }
        for &(rel, scope) in STRICT_SCOPES {
            let Some(file) = ws.file(rel) else {
                // Scope rot: a rename must not silently un-lint a hot path.
                out.push(Finding {
                    rule: "hot-path-strict",
                    file: rel.to_owned(),
                    line: 1,
                    message: format!(
                        "scope rot: configured hot-path scope `{rel}` no longer exists \
                         on disk — update STRICT_SCOPES to follow the rename"
                    ),
                    content: String::new(),
                });
                continue;
            };
            match scope {
                StrictScope::UntilTests => check_strict(file, 0, file.src.code_end, out),
                StrictScope::Fn(name) => match file.fns.iter().find(|f| f.name == name) {
                    Some(f) => {
                        let start = f.line.saturating_sub(1);
                        let end = file
                            .toks
                            .get(f.body_end)
                            .map_or(file.src.code_end, |t| t.line);
                        check_strict(file, start, end, out);
                    }
                    None => out.push(Finding {
                        rule: "hot-path-strict",
                        file: rel.to_owned(),
                        line: 1,
                        message: format!(
                            "scope rot: scoped `fn {name}` not found in `{rel}` — \
                             update STRICT_SCOPES to follow the rename"
                        ),
                        content: String::new(),
                    }),
                },
            }
        }
    }
}

fn check_strict(file: &Analyzed, start: usize, end: usize, out: &mut Vec<Finding>) {
    scan_lines(file, start, end, PANIC_PATTERNS, out, |pat| {
        (
            "hot-path-strict",
            format!(
                "`{}` in a panic-free hot-path scope — return a blamed error instead",
                pat.trim_end_matches('(')
            ),
        )
    });
    for (i, line) in file.src.code.iter().enumerate().take(end).skip(start) {
        if let Some(col) = find_direct_index(line) {
            out.push(Finding {
                rule: "hot-path-strict",
                file: file.src.rel.clone(),
                line: i + 1,
                message: format!(
                    "direct slice indexing (col {}) in a bounds-blamed region — \
                     use `.get(..)` and blame the entry",
                    col + 1
                ),
                content: file.raw_line(i + 1),
            });
        }
    }
}

/// `traced-cells`: outside `crates/pram`, no raw `.cells[...]` access —
/// all shadow-memory traffic must go through the traced read/write API so
/// the discipline analyzer sees it. The accessor method `.cells()` stays
/// legal.
pub struct TracedCells;

impl Rule for TracedCells {
    fn id(&self) -> &'static str {
        "traced-cells"
    }

    fn description(&self) -> &'static str {
        "no raw `.cells[...]` escapes outside crates/pram"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !ws.force_apply && file.src.rel.starts_with("crates/pram/") {
                continue;
            }
            // Whole file, tests included: even test code must not bypass
            // the traced API (it would mask discipline violations).
            let end = file.src.code.len();
            scan_lines(file, 0, end, &[".cells["], out, |_| {
                (
                    "traced-cells",
                    "raw `.cells[...]` access outside crates/pram — use the traced \
                     read/write API"
                        .to_owned(),
                )
            });
        }
    }
}

/// `hot-alloc`: allocations inside the descent/probe hot paths. These are
/// exactly the sites ROADMAP item 1's flat-arena rewrite will remove;
/// the baseline file is the worklist, and any *new* allocation in a hot
/// path fails immediately.
pub struct HotAlloc;

const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "with_capacity(",
    ".to_vec(",
    ".clone(",
    ".collect(",
    "Box::new(",
    "Arc::new(",
    "String::new(",
    ".to_string(",
    ".to_owned(",
    "format!(",
];

/// Descent/probe functions whose allocations feed the flat-arena
/// worklist. Validated for scope rot like the strict scopes.
pub const HOT_FNS: &[(&str, &[&str])] = &[
    (
        "crates/catalog/src/cascade.rs",
        &["descend", "checked_descend"],
    ),
    ("crates/catalog/src/search.rs", &["search_path_fc"]),
    ("crates/core/src/explicit.rs", &["search_explicit_inner"]),
    ("crates/serve/src/worker.rs", &["execute", "attempt"]),
    // PR 10: the per-key incremental update path — its whole point is
    // per-key-touched cost, so an allocation here is a design regression,
    // not a worklist item.
    (
        "crates/dyn/src/cascade.rs",
        &[
            "search_path_into",
            "locate_ge",
            "descend_from",
            "native_successor_from",
            "apply_insert",
            "apply_remove",
        ],
    ),
];

impl Rule for HotAlloc {
    fn id(&self) -> &'static str {
        "hot-alloc"
    }

    fn description(&self) -> &'static str {
        "allocations in descent/probe hot paths (flat-arena rewrite worklist; baselined)"
    }

    fn baselined(&self) -> bool {
        true
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        if ws.force_apply {
            for file in &ws.files {
                for f in &file.fns {
                    check_alloc(file, f.line, body_end_line(file, f), out);
                }
            }
            return;
        }
        for &(rel, fn_names) in HOT_FNS {
            let Some(file) = ws.file(rel) else {
                out.push(scope_rot("hot-alloc", rel, "file"));
                continue;
            };
            for name in fn_names {
                match file.fns.iter().find(|f| f.name == *name) {
                    Some(f) => check_alloc(file, f.line, body_end_line(file, f), out),
                    None => out.push(scope_rot("hot-alloc", rel, name)),
                }
            }
        }
    }
}

fn body_end_line(file: &Analyzed, f: &crate::scope::FnItem) -> usize {
    file.toks
        .get(f.body_end)
        .map_or(file.src.code_end, |t| t.line)
}

fn scope_rot(rule: &'static str, rel: &str, what: &str) -> Finding {
    Finding {
        rule,
        file: rel.to_owned(),
        line: 1,
        message: format!(
            "scope rot: configured hot-path entry `{what}` missing from `{rel}` — \
             update the scope list to follow the rename"
        ),
        content: String::new(),
    }
}

fn check_alloc(file: &Analyzed, start_line: usize, end_line: usize, out: &mut Vec<Finding>) {
    scan_lines(
        file,
        start_line.saturating_sub(1),
        end_line,
        ALLOC_PATTERNS,
        out,
        |pat| {
            (
                "hot-alloc",
                format!(
                    "allocation `{}` in a descent/probe hot path — flat-arena \
                     rewrite worklist (ROADMAP item 1)",
                    pat.trim_end_matches('(')
                ),
            )
        },
    );
}

/// Scan stripped lines `[start, end)` for any of `patterns`, producing one
/// finding per (line, pattern) via `describe`.
fn scan_lines(
    file: &Analyzed,
    start: usize,
    end: usize,
    patterns: &[&str],
    out: &mut Vec<Finding>,
    describe: impl Fn(&str) -> (&'static str, String),
) {
    for (i, line) in file.src.code.iter().enumerate().take(end).skip(start) {
        for pat in patterns {
            if line.contains(pat) {
                let (rule, message) = describe(pat);
                out.push(Finding {
                    rule,
                    file: file.src.rel.clone(),
                    line: i + 1,
                    message,
                    content: file.raw_line(i + 1),
                });
            }
        }
    }
}

/// Column of the first direct-indexing site: a `[` whose previous
/// non-space character is an identifier char, `)`, or `]`. Array/slice
/// type syntax and attributes never match — whether preceded by a
/// punctuation token (`&`, `:`, `#`, `<`, ...), a lifetime (`&'a [u8]`),
/// or the `mut` keyword (`&mut [u8]`) — and `vec![..]` / other macro
/// brackets are skipped because `!` precedes the bracket.
pub fn find_direct_index(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some(j) = bytes[..i].iter().rposition(|&c| c != b' ') else {
            continue;
        };
        let p = bytes[j];
        if p == b')' || p == b']' {
            return Some(i);
        }
        if !(p.is_ascii_alphanumeric() || p == b'_') {
            continue;
        }
        // Walk back over the identifier: a lifetime or the `mut`
        // keyword precedes a slice *type*, not an index expression.
        let mut s = j;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        let is_lifetime = s > 0 && bytes[s - 1] == b'\'';
        if !is_lifetime && &line[s..=j] != "mut" {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    fn run(rule: &dyn Rule, src: &str) -> Vec<Finding> {
        let ws = Workspace::single_text("t.rs", src);
        let mut out = Vec::new();
        rule.check(&ws, &mut out);
        out
    }

    #[test]
    fn panic_free_catches_macros_and_methods_outside_tests() {
        let f = run(
            &PanicFree,
            "fn f() { x.unwrap(); panic!(\"no\"); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let f = run(
            &PanicFree,
            "fn f() { x.unwrap_or_else(|p| p.into_inner()); y.unwrap_or(0); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn direct_indexing_is_caught_and_types_are_not() {
        assert!(find_direct_index("let y = keys[i];").is_some());
        assert!(find_direct_index("bridges[0][5] += 1;").is_some());
        assert!(find_direct_index("f(x)[0]").is_some());
        assert!(find_direct_index("fn f(keys: &[K]) -> [u32; 4] {").is_none());
        assert!(find_direct_index("fn take(&mut self) -> Result<&'a [u8], E> {").is_none());
        assert!(find_direct_index("fn read(r: &mut R, buf: &mut [u8]) {").is_none());
        assert!(find_direct_index("let x = is_mut[0];").is_some());
        assert!(find_direct_index("#[cfg(test)]").is_none());
        assert!(find_direct_index("vec![1, 2]").is_none());
    }

    #[test]
    fn strict_flags_indexing_in_fixture_mode() {
        let f = run(&HotPathStrict, "fn hot() { let x = v[0].unwrap(); }\n");
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn traced_cells_catches_escapes_but_not_accessor() {
        let f = run(
            &TracedCells,
            "fn f(m: &M) { m.cells[0] = 1; let _ = m.cells(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn hot_alloc_flags_allocations_in_fixture_mode() {
        let f = run(
            &HotAlloc,
            "fn descend(v: &[u32]) -> Vec<u32> { v.to_vec() }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("flat-arena"));
    }
}
