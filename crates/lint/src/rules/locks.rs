//! `lock-discipline`: the static guard-scope graph.
//!
//! For every `Mutex`/`RwLock` acquisition in the serving, sharding, and
//! durability crates (`.lock()`, `.read()`, `.write()` with empty
//! argument lists) the rule computes the guard's static scope:
//!
//! * `let g = ...lock()...;` pins the guard until its enclosing block
//!   closes or an explicit `drop(g)`;
//! * an un-bound acquisition (`self.lock().wal.append(..)`) is a
//!   statement-temporary, live to the end of its statement.
//!
//! Inside a live guard scope the rule reports:
//!
//! * **fsync under guard** — a call that (transitively, via the
//!   name-propagated effect map) reaches `sync_all`/`sync_data`: holding
//!   a lock across a disk flush serializes every peer behind hardware
//!   latency;
//! * **channel send under guard** — `.send(..)` can park the sender on a
//!   bounded channel while peers spin on the lock;
//! * **`EpochPtr` publish under guard** — `.swap(..)` on an epoch
//!   pointer (or a call reaching one): publishing while holding an
//!   unrelated lock extends the window in which readers can pin a
//!   generation the writer still mutates elsewhere;
//! * **socket write under guard** (`crates/net` only) — `.write_all(..)`
//!   or `.flush(..)` while a guard is live: a slow or stalled peer's TCP
//!   backpressure would extend the hold for as long as the kernel buffer
//!   stays full, turning one bad client into a server-wide stall;
//! * **inconsistent lock order** — if two named locks of one crate are
//!   ever acquired in both `A→B` and `B→A` nested order anywhere in that
//!   crate, both sites are reported (the classic deadlock shape).
//!
//! Identity is lexical (the receiver's field name), scoped per crate so
//! same-named fields in different crates cannot alias. Acquisitions whose
//! receiver is just `self` participate in held-across checks but not in
//! order checks (no stable identity).
//!
//! Some of these holds are *intentional* (a WAL whose append order must
//! equal the apply order serializes by design); those sites carry
//! `// fc-lint: allow(lock-discipline) -- <reason>` so the decision is
//! written down next to the code.

use super::{crate_of, in_concurrent_crates, in_net_crate, Rule};
use crate::lexer::SpannedTok;
use crate::scope::FnItem;
use crate::{call_at, receiver_mentions, Analyzed, Effects, Finding, Workspace};
use std::collections::BTreeMap;

pub struct LockDiscipline;

/// How long a guard lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardEnd {
    /// Until the brace depth drops below this binding depth.
    Block(i32),
    /// Until the next `;` at this depth (statement temporary).
    Stmt(i32),
}

#[derive(Debug, Clone)]
struct Guard {
    /// Lock identity: receiver field name, or `None` for bare `self`.
    name: Option<String>,
    /// Bound variable (`let g = ...`), for `drop(g)` tracking.
    bound: Option<String>,
    end: GuardEnd,
    line: usize,
}

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "no guard held across fsync/send/EpochPtr publish/socket write; \
         consistent pairwise lock order"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // (crate, outer, inner) -> first site, for the order graph.
        let mut edges: BTreeMap<(String, String, String), (String, usize, String)> =
            BTreeMap::new();
        for file in &ws.files {
            if !ws.force_apply && !in_concurrent_crates(&file.src.rel) {
                continue;
            }
            for f in &file.fns {
                scan_fn(ws, file, f, out, &mut edges);
            }
        }
        // Inconsistent pairwise order: both A→B and B→A observed within
        // one crate.
        for ((krate, a, b), (file, line, fn_name)) in &edges {
            if a < b {
                if let Some((file2, line2, fn2)) = edges.get(&(krate.clone(), b.clone(), a.clone()))
                {
                    for (fi, li, fun, first, second) in
                        [(file, line, fn_name, a, b), (file2, line2, fn2, b, a)]
                    {
                        out.push(Finding {
                            rule: "lock-discipline",
                            file: fi.clone(),
                            line: *li,
                            message: format!(
                                "inconsistent lock order: `{first}` then `{second}` in `{fun}` \
                                 but the reverse order also occurs in crate `{krate}` — \
                                 pick one global order or merge the locks"
                            ),
                            content: String::new(),
                        });
                    }
                }
            }
        }
        // Baseline-style content for order findings: fill from files.
        for f in out.iter_mut().filter(|f| f.content.is_empty()) {
            if let Some(a) = ws.file(&f.file) {
                f.content = a.raw_line(f.line);
            }
        }
    }
}

/// Walk one function body tracking guard scopes and events.
fn scan_fn(
    ws: &Workspace,
    file: &Analyzed,
    f: &FnItem,
    out: &mut Vec<Finding>,
    edges: &mut BTreeMap<(String, String, String), (String, usize, String)>,
) {
    let toks = &file.toks;
    if f.body_start >= toks.len() || f.body_end >= toks.len() {
        return;
    }
    // The socket-write event class applies to the ingress crate (and to
    // fixture mode, so the canary corpus exercises it).
    let net_scope = ws.force_apply || in_net_crate(&file.src.rel);
    let mut guards: Vec<Guard> = Vec::new();
    let mut reported: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut depth = 0i32;
    let mut i = f.body_start;
    while i <= f.body_end {
        let t = &toks[i];
        if t.is('{') {
            depth += 1;
        } else if t.is('}') {
            depth -= 1;
            guards.retain(|g| match g.end {
                GuardEnd::Block(d) | GuardEnd::Stmt(d) => depth >= d,
            });
        } else if t.is(';') {
            guards.retain(|g| !matches!(g.end, GuardEnd::Stmt(d) if d == depth));
        }

        // Explicit early drop: `drop(g)`.
        if call_at(toks, i) == Some("drop") {
            if let Some(arg) = toks.get(i + 2).and_then(|t| t.ident()) {
                guards.retain(|g| g.bound.as_deref() != Some(arg));
            }
        }

        // New acquisition: `. lock ( )` / `. read ( )` / `. write ( )`.
        if let Some(mut acq) = acquisition_at(toks, i) {
            // Guard ends are depth-relative to the acquisition site.
            acq.end = match acq.end {
                GuardEnd::Block(_) => GuardEnd::Block(depth),
                GuardEnd::Stmt(_) => GuardEnd::Stmt(depth),
            };
            for g in guards.iter().filter(|g| g.name.is_some()) {
                if let (Some(outer), Some(inner)) = (&g.name, &acq.name) {
                    if outer != inner {
                        edges
                            .entry((
                                crate_of(&file.src.rel).to_owned(),
                                outer.clone(),
                                inner.clone(),
                            ))
                            .or_insert_with(|| {
                                (file.src.rel.clone(), toks[i].line, f.name.clone())
                            });
                    }
                }
            }
            guards.push(acq);
            i += 1;
            continue;
        }

        // Events under a live guard (one finding per line keeps
        // diagnostics readable; structural tokens still get processed).
        if !guards.is_empty() && !reported.contains(&toks[i].line) {
            if let Some((what, via)) = event_at(ws, toks, i, net_scope) {
                let holder = guards
                    .last()
                    .map(|g| match &g.name {
                        Some(n) => format!("`{n}` (line {})", g.line),
                        None => format!("self-lock (line {})", g.line),
                    })
                    .unwrap_or_default();
                out.push(Finding {
                    rule: "lock-discipline",
                    file: file.src.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "guard {holder} held across {what}{via} in `{}` — \
                         shrink the guard scope or record why with \
                         `fc-lint: allow(lock-discipline) -- <reason>`",
                        f.name
                    ),
                    content: file.raw_line(toks[i].line),
                });
                reported.insert(toks[i].line);
            }
        }
        i += 1;
    }
}

/// Detect a lock acquisition at token `i` (the `.` of `.lock()` etc.).
fn acquisition_at(toks: &[SpannedTok], i: usize) -> Option<Guard> {
    if !toks[i].is('.') {
        return None;
    }
    let m = toks.get(i + 1)?.ident()?;
    if !matches!(m, "lock" | "read" | "write") {
        return None;
    }
    // Empty argument list only: `.read(buf)` is io, `.read()` is RwLock.
    if !(toks.get(i + 2).is_some_and(|t| t.is('(')) && toks.get(i + 3).is_some_and(|t| t.is(')'))) {
        return None;
    }
    // Receiver chain: `a.b.c` walking back from the `.`; identity is the
    // last field name (first non-`self` ident walking back).
    let mut j = i;
    let mut name: Option<String> = None;
    let mut chain_start = i;
    while j >= 1 {
        let Some(id) = toks.get(j - 1).and_then(|t| t.ident()) else {
            break;
        };
        if name.is_none() && id != "self" {
            name = Some(id.to_owned());
        }
        chain_start = j - 1;
        if j >= 3 && toks[j - 2].is('.') {
            j -= 2;
        } else {
            break;
        }
    }
    if chain_start == i {
        // Receiver is not a simple ident chain (e.g. a call result):
        // treat as an anonymous statement-temporary guard.
        return Some(Guard {
            name: None,
            bound: None,
            end: GuardEnd::Stmt(0), // depth fixed up by caller? — use current depth below
            line: toks[i].line,
        });
    }
    // Binding: `let [mut] g = <chain>...`.
    let mut bound = None;
    let mut end = GuardEnd::Stmt(0);
    if chain_start >= 3 && toks[chain_start - 1].is('=') && toks[chain_start - 2].ident().is_some()
    {
        let var = toks[chain_start - 2].ident().unwrap_or_default().to_owned();
        let let_at = if toks[chain_start - 3].ident() == Some("let") {
            true
        } else {
            toks[chain_start - 3].ident() == Some("mut")
                && chain_start >= 4
                && toks[chain_start - 4].ident() == Some("let")
        };
        if let_at {
            bound = Some(var);
            end = GuardEnd::Block(0);
        }
    }
    Some(Guard {
        name,
        bound,
        end,
        line: toks[i].line,
    })
}

/// Detect an effectful event at token `i`, returning a description and
/// the propagation note. `net_scope` enables the socket-write class
/// (ingress crate + fixture mode only: the store's WAL writes under its
/// append lock are that layer's documented serialization point).
fn event_at(
    ws: &Workspace,
    toks: &[SpannedTok],
    i: usize,
    net_scope: bool,
) -> Option<(String, String)> {
    let after_dot = i >= 1 && toks[i - 1].is('.');
    let name = call_at(toks, i)?;
    match name {
        "sync_all" | "sync_data" if after_dot => {
            Some(("a disk fsync".into(), format!(" (`{name}`)")))
        }
        "send" if after_dot => Some(("a channel send".into(), String::new())),
        "swap" if after_dot && receiver_mentions(toks, i, "epoch") => {
            Some(("an EpochPtr publish".into(), String::new()))
        }
        "write_all" | "flush" if after_dot && net_scope => {
            Some(("a socket write".into(), format!(" (`{name}`)")))
        }
        // `.lock()`/`.read()`/`.write()` are acquisitions, not events.
        "lock" | "read" | "write" | "swap" | "send" | "sync_all" | "sync_data" | "write_all"
        | "flush" => None,
        _ => {
            let eff: Effects = *ws.effects.get(name)?;
            if eff.fsync {
                Some(("a disk fsync".into(), format!(" (via call to `{name}`)")))
            } else if eff.publish {
                Some((
                    "an EpochPtr publish".into(),
                    format!(" (via call to `{name}`)"),
                ))
            } else if eff.send {
                Some(("a channel send".into(), format!(" (via call to `{name}`)")))
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::single_text("t.rs", src);
        let mut out = Vec::new();
        LockDiscipline.check(&ws, &mut out);
        out
    }

    #[test]
    fn direct_fsync_under_bound_guard_is_flagged() {
        let f = findings("fn f(s: &S) {\n    let _g = s.m.lock();\n    s.file.sync_all();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("disk fsync"), "{}", f[0].message);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn scoped_guard_does_not_leak_past_its_block() {
        let f = findings(
            "fn f(s: &S) {\n    {\n        let _g = s.m.lock();\n    }\n    s.file.sync_all();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let f = findings(
            "fn f(s: &S) {\n    let g = s.m.lock();\n    drop(g);\n    s.file.sync_all();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn transitive_fsync_through_local_fn_is_flagged() {
        let f = findings(
            "fn helper(f: &F) { f.sync_data(); }\n\
             fn g(s: &S, f: &F) {\n    let _g = s.m.lock();\n    helper(f);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("via call to `helper`"));
    }

    #[test]
    fn statement_temporary_guard_covers_its_own_statement_only() {
        let f = findings(
            "fn f(s: &S) {\n    s.inner.lock().wal.sync_all();\n    s.file.sync_all();\n}\n",
        );
        assert_eq!(f.len(), 1, "temporary ends at `;`: {f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn epoch_publish_under_guard_is_flagged() {
        let f = findings("fn f(s: &S) {\n    let _g = s.m.lock();\n    s.epoch.swap(x);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("EpochPtr publish"));
    }

    #[test]
    fn atomic_swap_without_epoch_receiver_is_not_publish() {
        let f = findings("fn f(s: &S) {\n    let _g = s.m.lock();\n    s.state.swap(1);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn socket_write_under_guard_is_flagged() {
        let f = findings(
            "fn f(s: &S, frame: &[u8]) {\n    let _g = s.conns.lock();\n    \
             s.stream.write_all(frame);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("socket write"), "{}", f[0].message);
    }

    #[test]
    fn socket_write_after_release_is_clean() {
        let f = findings(
            "fn f(s: &S, frame: &[u8]) {\n    {\n        let _g = s.conns.lock();\n    }\n    \
             s.stream.write_all(frame);\n    s.stream.flush();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inconsistent_order_is_reported_at_both_sites() {
        let f = findings(
            "fn ab(s: &S) { let _a = s.m.lock(); let _b = s.n.lock(); }\n\
             fn ba(s: &S) { let _a = s.n.lock(); let _b = s.m.lock(); }\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .all(|x| x.message.contains("inconsistent lock order")));
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = findings(
            "fn ab(s: &S) { let _a = s.m.lock(); let _b = s.n.lock(); }\n\
             fn ab2(s: &S) { let _a = s.m.lock(); let _b = s.n.lock(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rwlock_read_counts_but_io_read_does_not() {
        let f = findings(
            "fn f(s: &S, buf: &mut [u8]) {\n    let _g = s.nodes.read();\n    s.file.sync_all();\n}\n\
             fn g(s: &S, buf: &mut [u8]) {\n    s.file.read(buf);\n    s.file.sync_all();\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }
}
