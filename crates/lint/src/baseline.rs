//! The committed-baseline workflow for grandfathered findings.
//!
//! Rules that sweep the whole workspace (`panic-free`, `hot-alloc`) land
//! with pre-existing findings; instead of suppressing hundreds of lines
//! inline, those are recorded in `lint-baseline.txt` at the repo root. A
//! finding is *grandfathered* when its `(rule, file, trimmed source line)`
//! triple matches an unconsumed baseline entry — line-content matching
//! keeps the baseline stable across unrelated edits that shift line
//! numbers. New findings (not in the baseline) fail the run; stale entries
//! (in the baseline but no longer found) are reported so the file gets
//! regenerated with `xtask lint --all --update-baseline` as the worklist
//! burns down.
//!
//! Format: one entry per line, tab-separated: `rule<TAB>file<TAB>content`.
//! Lines starting with `#` are comments.

use crate::Finding;
use std::collections::HashMap;
use std::fs;
use std::path::Path;

/// An in-memory baseline: a multiset of `(rule, file, content)` entries.
#[derive(Default)]
pub struct Baseline {
    entries: HashMap<(String, String, String), usize>,
}

impl Baseline {
    /// Load from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let mut bl = Baseline::default();
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(bl),
            Err(e) => return Err(format!("baseline {}: {e}", path.display())),
        };
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(file), Some(content)) => {
                    *bl.entries
                        .entry((rule.to_owned(), file.to_owned(), content.to_owned()))
                        .or_insert(0) += 1;
                }
                _ => {
                    return Err(format!(
                        "baseline {}:{}: expected rule<TAB>file<TAB>content",
                        path.display(),
                        i + 1
                    ))
                }
            }
        }
        Ok(bl)
    }

    /// Consume one entry matching the finding; returns whether it was
    /// grandfathered.
    pub fn consume(&mut self, f: &Finding) -> bool {
        let key = (f.rule.to_owned(), f.file.clone(), f.content.clone());
        match self.entries.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// Entries never consumed: the stale part of the baseline.
    pub fn stale(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|((rule, file, content), n)| format!("{rule}\t{file}\t{content} (x{n})"))
            .collect();
        out.sort();
        out
    }

    /// Serialize `findings` (already filtered to baselined rules) as a
    /// fresh baseline file.
    pub fn render(findings: &[&Finding]) -> String {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| format!("{}\t{}\t{}", f.rule, f.file, f.content))
            .collect();
        lines.sort();
        let mut out = String::from(
            "# fc-lint baseline: grandfathered findings, one per line\n\
             # (rule<TAB>file<TAB>trimmed source line). Regenerate with\n\
             #   cargo run -p xtask -- lint --all --update-baseline\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, content: &str) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line: 1,
            message: String::new(),
            content: content.to_owned(),
        }
    }

    #[test]
    fn consume_matches_by_content_multiset() {
        let f1 = finding("panic-free", "a.rs", "x.unwrap();");
        let f2 = finding("panic-free", "a.rs", "x.unwrap();");
        let rendered = Baseline::render(&[&f1]);
        let dir = std::env::temp_dir().join(format!("fc-lint-bl-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.txt");
        fs::write(&path, rendered).unwrap();
        let mut bl = Baseline::load(&path).unwrap();
        assert!(bl.consume(&f1), "first occurrence grandfathered");
        assert!(!bl.consume(&f2), "second identical line is a new finding");
        assert!(bl.stale().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_entries_are_reported() {
        let f = finding("hot-alloc", "b.rs", "v.to_vec()");
        let dir = std::env::temp_dir().join(format!("fc-lint-bl2-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.txt");
        fs::write(&path, Baseline::render(&[&f])).unwrap();
        let bl = Baseline::load(&path).unwrap();
        assert_eq!(bl.stale().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty() {
        let bl = Baseline::load(Path::new("/nonexistent/fc-lint-baseline")).unwrap();
        assert!(bl.stale().is_empty());
    }
}
