//! Source loading: comment/string stripping, test-module truncation, and
//! the `// fc-lint: allow(<rule>) -- <reason>` suppression grammar.
//!
//! Every rule sees the same preprocessed view of a file:
//!
//! * `raw` — the file exactly as read (suppression comments live here);
//! * `code` — one stripped line per raw line, comments and string/char
//!   literal *contents* replaced by spaces so lexical checks only ever
//!   match real code;
//! * `code_end` — the first line of the trailing `#[cfg(test)]` module
//!   (workspace convention: test modules close every file), so rules skip
//!   test code without parsing `cfg` attributes.

use std::fs;
use std::path::Path;

/// One suppression comment, parsed from the raw source.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules named inside `allow(...)`.
    pub rules: Vec<String>,
    /// The line the suppression *applies to* (1-based): its own line for a
    /// trailing comment, the next code line for a standalone comment line.
    pub target_line: usize,
    /// Line the comment itself sits on (1-based), for diagnostics.
    pub at_line: usize,
    /// Whether a non-empty `-- <reason>` was given. Reason-less
    /// suppressions are themselves findings: the grammar requires a why.
    pub has_reason: bool,
}

/// A loaded, preprocessed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Raw lines as read.
    pub raw: Vec<String>,
    /// Stripped lines: comments gone, literal contents blanked.
    pub code: Vec<String>,
    /// Exclusive end of non-test code (index into `raw`/`code`).
    pub code_end: usize,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Load and preprocess `path`, reported under the name `rel`.
    pub fn load(path: &Path, rel: &str) -> Result<SourceFile, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{rel}: unreadable ({e})"))?;
        Ok(SourceFile::from_text(rel, &text))
    }

    /// Preprocess in-memory source (used by the fixture selftests too).
    pub fn from_text(rel: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let mut code = Vec::with_capacity(raw.len());
        let mut in_block = false;
        for line in &raw {
            code.push(strip_noncode(line, &mut in_block));
        }
        let code_end = raw
            .iter()
            .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
            .unwrap_or(raw.len());
        let suppressions = parse_suppressions(&raw, &code);
        SourceFile {
            rel: rel.to_owned(),
            raw,
            code,
            code_end,
            suppressions,
        }
    }

    /// Whether `rule` is suppressed on `line` (1-based), honoring both
    /// trailing and standalone suppression comments.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.target_line == line && s.has_reason && s.rules.iter().any(|r| r == rule))
    }
}

/// Parse every `fc-lint: allow(...)` comment. A standalone comment line
/// targets the next line that contains code; a trailing comment targets
/// its own line.
///
/// The marker must *lead* a real `//` comment: mentions inside string
/// literals, doc prose, or mid-comment text are documentation, not
/// suppressions. The comment boundary comes from the stripped `code`
/// line — `strip_noncode` stops at a code-level `//`, and every consumed
/// raw byte yields exactly one output char, so the comment starts at
/// byte offset `code.chars().count()`.
fn parse_suppressions(raw: &[String], code: &[String]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, line) in raw.iter().enumerate() {
        let cut = code.get(i).map_or(0, |c| c.chars().count());
        let comment = line.get(cut..).unwrap_or("");
        if !comment.starts_with("//") {
            continue;
        }
        let text = comment.trim_start_matches('/').trim_start();
        let Some(rest) = text.strip_prefix("fc-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            // Malformed marker: surface it as a reason-less suppression so
            // the meta-rule reports it instead of silently ignoring it.
            out.push(Suppression {
                rules: Vec::new(),
                target_line: i + 1,
                at_line: i + 1,
                has_reason: false,
            });
            continue;
        };
        let (rules_str, tail) = inner;
        let rules: Vec<String> = rules_str
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let has_reason = tail
            .trim_start()
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        let standalone = line.trim_start().starts_with("//");
        let target_line = if standalone {
            // Next line containing any code (skip blanks and comments).
            raw.iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, l)| {
                    let t = l.trim();
                    !t.is_empty() && !t.starts_with("//")
                })
                .map(|(j, _)| j + 1)
                .unwrap_or(i + 1)
        } else {
            i + 1
        };
        out.push(Suppression {
            rules,
            target_line,
            at_line: i + 1,
            has_reason,
        });
    }
    out
}

/// Replace comments and string/char-literal contents with spaces so the
/// lexical checks only see code. Tracks `/* ... */` across lines via
/// `in_block`. Escape-aware for `\"` inside strings; raw strings with `#`
/// guards are treated as plain strings (good enough for this codebase).
pub fn strip_noncode(line: &str, in_block: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                *in_block = false;
                out.push_str("  ");
                i += 2;
            } else {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => break, // line comment
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                *in_block = true;
                out.push_str("  ");
                i += 2;
            }
            b'"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.push_str("  ");
                            i += 2;
                        }
                        b'"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            b'\'' if bytes.get(i + 2) == Some(&b'\'') || bytes.get(i + 1) == Some(&b'\\') => {
                // char literal ('x' or '\n'); lifetimes ('a) fall through
                let close = bytes[i + 1..].iter().position(|&b| b == b'\'');
                let len = close.map_or(1, |c| c + 2);
                for _ in 0..len {
                    out.push(' ');
                }
                i += len;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_invisible() {
        let mut b = false;
        assert_eq!(
            strip_noncode("let x = 1; // keys[3]", &mut b),
            "let x = 1; "
        );
        assert!(!strip_noncode(r#"format!("{}[{}]", a, b)"#, &mut b).contains("[{"));
    }

    #[test]
    fn block_comments_span_lines() {
        let mut in_block = false;
        let a = strip_noncode("code(); /* v[0]", &mut in_block);
        assert!(in_block && !a.contains("v[0]"));
        let b = strip_noncode("still v[1] */ after()", &mut in_block);
        assert!(!in_block && b.contains("after()") && !b.contains("v[1]"));
    }

    #[test]
    fn suppression_grammar_round_trips() {
        let src = "\
fn f() {
    let x = v.first().unwrap(); // fc-lint: allow(panic-free) -- v checked non-empty above
    // fc-lint: allow(lock-discipline, commit-order) -- intentional: WAL order = apply order
    let g = m.lock();
    let y = w.unwrap(); // fc-lint: allow(panic-free)
}
";
        let sf = SourceFile::from_text("t.rs", src);
        assert!(sf.is_suppressed("panic-free", 2));
        assert!(
            sf.is_suppressed("lock-discipline", 4),
            "standalone targets next code line"
        );
        assert!(sf.is_suppressed("commit-order", 4));
        assert!(
            !sf.is_suppressed("panic-free", 5),
            "reason-less suppression is inert"
        );
        let missing: Vec<_> = sf.suppressions.iter().filter(|s| !s.has_reason).collect();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].at_line, 5);
    }

    #[test]
    fn code_end_stops_at_test_module() {
        let sf = SourceFile::from_text("t.rs", "fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(sf.code_end, 1);
    }
}
