//! Brace-scoped block parsing: locate every `fn` item and its
//! brace-matched body in a token stream.
//!
//! The parser is deliberately shallow — it does not build an AST. A
//! function is `fn <name> ... {` where the opening brace is the first `{`
//! at zero paren/bracket depth after the name (so closures, generics, and
//! where-clauses in the signature do not confuse it), and the body is the
//! matching brace range. Nested functions are reported both standalone and
//! inside their parent's range; rules that walk bodies tolerate that.

use crate::lexer::SpannedTok;

/// One function item found in a token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based source line of the `fn` keyword.
    pub line: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the body's closing `}` (inclusive range end).
    pub body_end: usize,
}

/// Extract every `fn` item (including nested ones) from `toks`.
pub fn functions(toks: &[SpannedTok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() == Some("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    if let Some((start, end)) = body_range(toks, i + 2) {
                        out.push(FnItem {
                            name: name.to_owned(),
                            line: toks[i].line,
                            body_start: start,
                            body_end: end,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// From `from`, find the first `{` at zero paren/bracket depth, then its
/// matching `}`. Returns token indices `(open, close)`.
fn body_range(toks: &[SpannedTok], from: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut open = None;
    for (i, t) in toks.iter().enumerate().skip(from) {
        match t {
            t if t.is('(') => paren += 1,
            t if t.is(')') => paren -= 1,
            t if t.is('[') => bracket += 1,
            t if t.is(']') => bracket -= 1,
            t if t.is('{') && paren == 0 && bracket == 0 => {
                open = Some(i);
                break;
            }
            t if t.is(';') && paren == 0 && bracket == 0 => {
                // Trait method / extern declaration without a body.
                return None;
            }
            _ => {}
        }
    }
    let open = open?;
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is('{') {
            depth += 1;
        } else if t.is('}') {
            depth -= 1;
            if depth == 0 {
                return Some((open, i));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let n = lines.len();
        functions(&lex(&lines, n))
    }

    #[test]
    fn finds_functions_with_tricky_signatures() {
        let src = "\
fn plain() { body(); }
fn generic<K: Key>(xs: &[K]) -> [u32; 4] where K: Ord {
    inner();
}
trait T { fn declared_only(&self); }
fn with_closure() { let f = |x: u32| { x + 1 }; f(2); }
";
        let items = fns(src);
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["plain", "generic", "with_closure"]);
        assert_eq!(items[1].line, 2);
    }

    #[test]
    fn body_ranges_are_brace_matched() {
        let src = "fn a() { if x { y(); } else { z(); } }\nfn b() { c(); }";
        let items = fns(src);
        assert_eq!(items.len(), 2);
        // `a`'s body must not swallow `b`.
        assert!(items[0].body_end < items[1].body_start);
    }

    #[test]
    fn nested_fns_are_reported() {
        let items = fns("fn outer() { fn inner() { q(); } inner(); }");
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }
}
