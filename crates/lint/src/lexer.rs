//! A lightweight Rust tokenizer over stripped source lines.
//!
//! Produces just enough structure for the protocol rules: identifiers and
//! single-character punctuation, each tagged with its 1-based source line.
//! Numbers are skipped (no rule matches on them); string/char literals and
//! comments were already blanked by [`crate::source::strip_noncode`].

/// One token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`{ } ( ) [ ] . ; , = & ...`).
    Punct(char),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

impl SpannedTok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Punct(_) => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Tokenize stripped lines (`code` from a
/// [`SourceFile`](crate::source::SourceFile)), truncated at `end` lines.
pub fn lex(code: &[String], end: usize) -> Vec<SpannedTok> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate().take(end) {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
            } else if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(line[start..i].to_owned()),
                    line: idx + 1,
                });
            } else if b.is_ascii_digit() {
                // Skip numeric literals (including suffixed ones like 1u64
                // and floats; the trailing ident chars are part of them).
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop before a range operator `..` so `0..n` still
                    // lexes the second bound.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
            } else {
                out.push(SpannedTok {
                    tok: Tok::Punct(b as char),
                    line: idx + 1,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_str(s: &str) -> Vec<SpannedTok> {
        let lines: Vec<String> = s.lines().map(str::to_owned).collect();
        let n = lines.len();
        lex(&lines, n)
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex_str("let _g = self.write_lock.lock();");
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, ["let", "_g", "self", "write_lock", "lock"]);
        assert!(toks.iter().any(|t| t.is(';')));
    }

    #[test]
    fn numbers_are_skipped_but_ranges_lex() {
        let toks = lex_str("for i in 0..count { x += 1u64; }");
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, ["for", "i", "in", "count", "x"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex_str("a\nb\nc");
        assert_eq!(
            toks.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }
}
