// Canary: `commit-order` must flag each inverted durability ordering.

fn rename_before_fsync(f: &std::fs::File, tmp: &Path, dst: &Path) -> std::io::Result<()> {
    f.write_all(b"snapshot bytes")?;
    std::fs::rename(tmp, dst)?;
    f.sync_all()
}

fn apply_before_append(&self, ops: &[Op]) -> std::io::Result<()> {
    self.svc.update_batch(ops);
    self.store.append_batch(ops)
}

fn manifest_before_persist(&self, dir: &Path) -> std::io::Result<()> {
    write_manifest(dir, &self.manifest, true)?;
    persist_epoch(&self.cluster, dir, self.epoch, true)
}
