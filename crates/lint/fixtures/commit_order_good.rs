// Canary twin: the three orderings done right, including the gated-fsync
// shape the real `atomic_write` uses.

fn write_then_sync_then_rename(
    f: &std::fs::File,
    tmp: &Path,
    dst: &Path,
    fsync: bool,
) -> std::io::Result<()> {
    f.write_all(b"snapshot bytes")?;
    if fsync {
        f.sync_all()?;
    }
    std::fs::rename(tmp, dst)
}

fn append_then_apply(&self, ops: &[Op]) -> std::io::Result<()> {
    self.store.append_batch(ops)?;
    self.svc.update_batch(ops);
    Ok(())
}

fn persist_then_manifest(&self, dir: &Path) -> std::io::Result<()> {
    persist_epoch(&self.cluster, dir, self.epoch, true)?;
    write_manifest(dir, &self.manifest, true)
}
