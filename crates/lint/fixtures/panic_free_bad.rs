// Canary: `panic-free` must flag every panicking construct in non-test
// code. This file is data for tests/lint_selftest.rs, never compiled.

fn config_port(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn parse(s: &str) -> u32 {
    s.parse().expect("caller validated")
}

fn route(kind: u8) -> &'static str {
    match kind {
        0 => "read",
        1 => "write",
        _ => unreachable!(),
    }
}
