// Canary twin: a reasoned suppression silences exactly its rule on its
// target line.

fn config_port(v: Option<u32>) -> u32 {
    v.unwrap() // fc-lint: allow(panic-free) -- fixture: validated by caller, reasoned suppression is legal
}
