// Canary twin: the same shapes written panic-free, plus the places the
// rule must NOT fire — `unwrap_or*` helpers, strings, comments, tests.

fn config_port(v: Option<u32>) -> u32 {
    v.unwrap_or(8080)
}

fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

fn describe() -> &'static str {
    // A comment saying .unwrap() must not trip the lint.
    "calling .unwrap() here would panic!"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(1u32).unwrap();
    }
}
