// Canary: `lock-discipline` must flag guards held across blocking effects
// (fsync, channel send, epoch publish, socket write) and inconsistent
// pairwise lock order.

fn fsync_under_guard(&self) -> std::io::Result<()> {
    let inner = self.inner.lock();
    inner.file.sync_all()
}

fn send_under_guard(&self, job: Job) {
    let queue = self.queue.lock();
    self.tx.send(job);
    drop(queue);
}

fn publish_under_guard(&self, gen: u64) {
    let writer = self.writer.lock();
    self.epoch.swap(gen);
    drop(writer);
}

fn socket_write_under_guard(&self, frame: &[u8]) {
    let conns = self.conns.lock();
    self.stream.write_all(frame);
    drop(conns);
}

fn order_ab(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
}

fn order_ba(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
}
