// Canary: the PR 10 incremental-cascade scopes. `hot-path-strict` must
// flag the unchecked slot indexing and the panicking walk; `hot-alloc`
// must flag the per-update allocations — the incremental path's whole
// claim is per-key-touched cost, so an allocation per apply is a design
// regression, not a worklist item.

struct Slot {
    key: u32,
    next: u32,
    live: bool,
}

fn locate_ge(slots: &[Slot], head: u32, key: u32) -> u32 {
    let mut cur = head;
    loop {
        // BAD: direct indexing on a pointer-linked arena — a torn link
        // walks out of bounds and panics instead of blaming the node.
        let slot = &slots[cur as usize];
        if slot.key >= key {
            return cur;
        }
        cur = slot.next;
    }
}

fn apply_insert(slots: &mut Vec<Slot>, head: u32, key: u32) -> u32 {
    // BAD: allocating a scratch list of live keys on every apply — the
    // per-key-touched cost just became per-structure.
    let live: Vec<u32> = slots.iter().filter(|s| s.live).map(|s| s.key).collect();
    let at = live.partition_point(|k| *k < key);
    // BAD: panicking on a corrupt arena instead of returning a DynError.
    let anchor = live.get(at).copied().unwrap();
    let _ = locate_ge(slots, head, anchor);
    slots.push(Slot {
        key,
        next: head,
        live: true,
    });
    (slots.len() - 1) as u32
}
