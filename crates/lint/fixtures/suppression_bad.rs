// Canary: a suppression without the required `-- <reason>` is inert AND
// is itself a finding, so the original violation still fails the run.

fn config_port(v: Option<u32>) -> u32 {
    v.unwrap() // fc-lint: allow(panic-free)
}
