// Canary twin: the same work written against caller-provided buffers —
// no heap traffic on the hot path.

fn descend(starts: &[u32], path: &mut [u32]) -> usize {
    let n = starts.len().min(path.len());
    path[..n].copy_from_slice(&starts[..n]);
    n
}

fn probe(keys: &[u32], out: &mut [u32]) -> usize {
    let n = keys.len().min(out.len());
    out[..n].copy_from_slice(&keys[..n]);
    n
}
