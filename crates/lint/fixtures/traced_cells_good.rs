// Canary twin: the traced API and the legal accessor method.

fn poke(m: &mut Memory) {
    m.write(0, 1);
}

fn peek(m: &Memory, i: usize) -> u64 {
    m.read(i)
}

fn snapshot(m: &Memory) -> usize {
    m.cells().len()
}
