// Canary twin: the same lookups via `.get(..)` with typed blame, plus
// bracket shapes the indexing check must NOT fire on (types, attributes,
// macros).

#[derive(Debug)]
enum Blame {
    Bridge(usize),
}

fn checked_descend(keys: &[u32], i: usize) -> Result<u32, Blame> {
    keys.get(i).copied().ok_or(Blame::Bridge(i))
}

fn audit_locate(bridges: &[Vec<usize>], level: usize) -> Result<usize, Blame> {
    bridges
        .get(level)
        .and_then(|b| b.first())
        .copied()
        .ok_or(Blame::Bridge(level))
}

fn shapes(keys: &[u32]) -> [u32; 2] {
    let v = vec![1u32, 2];
    [keys.first().copied().unwrap_or(0), v.len() as u32]
}
