// Canary: `traced-cells` must flag raw shadow-memory access that bypasses
// the traced read/write API.

fn poke(m: &mut Memory) {
    m.cells[0] = 1;
}

fn peek(m: &Memory, i: usize) -> u64 {
    m.cells[i]
}
