// Canary: `hot-path-strict` must flag both direct slice indexing and
// panicking constructs inside a hot-path scope.

fn checked_descend(keys: &[u32], i: usize) -> u32 {
    let k = keys[i];
    k
}

fn audit_locate(bridges: &[Vec<usize>], level: usize) -> usize {
    bridges[level].first().copied().unwrap()
}
