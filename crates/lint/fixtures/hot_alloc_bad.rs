// Canary: `hot-alloc` must flag heap allocation inside descent/probe hot
// paths — the flat-arena rewrite worklist.

fn descend(starts: &[u32]) -> Vec<u32> {
    let mut path = Vec::new();
    for s in starts {
        path.push(*s);
    }
    path
}

fn probe(keys: &[u32]) -> Vec<u32> {
    keys.to_vec()
}

fn trace(level: usize) -> String {
    format!("level {level}")
}
