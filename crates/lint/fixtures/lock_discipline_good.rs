// Canary twin: the same effects with the guard released first, and a
// consistent pairwise lock order.

fn fsync_after_release(&self) -> std::io::Result<()> {
    let file = {
        let inner = self.inner.lock();
        inner.file.try_clone()?
    };
    file.sync_all()
}

fn send_after_release(&self, job: Job) {
    let seq = {
        let queue = self.queue.lock();
        queue.next_seq()
    };
    self.tx.send((seq, job));
}

fn publish_after_release(&self, gen: u64) {
    {
        let writer = self.writer.lock();
        writer.prepare(gen);
    }
    self.epoch.swap(gen);
}

fn socket_write_after_release(&self, frame: &[u8]) {
    {
        let conns = self.conns.lock();
        conns.note_write(frame.len());
    }
    self.stream.write_all(frame);
    self.stream.flush();
}

fn order_ab(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
}

fn order_ab_again(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
}
