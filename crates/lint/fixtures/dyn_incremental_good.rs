// Canary twin: the same incremental-cascade shapes done right — every
// arena access through `.get(..)` with a blamed typed error, a cycle
// guard instead of an unbounded walk, and no allocation anywhere on the
// apply path.

struct Slot {
    key: u32,
    next: u32,
    live: bool,
}

#[derive(Debug)]
enum DynError {
    SlotOutOfRange { slot: u32 },
    CorruptLink { steps: u32 },
}

fn locate_ge(slots: &[Slot], head: u32, key: u32) -> Result<u32, DynError> {
    let mut cur = head;
    let mut steps = 0u32;
    loop {
        if steps > slots.len() as u32 + 2 {
            return Err(DynError::CorruptLink { steps });
        }
        let slot = slots
            .get(cur as usize)
            .ok_or(DynError::SlotOutOfRange { slot: cur })?;
        if slot.key >= key {
            return Ok(cur);
        }
        cur = slot.next;
        steps += 1;
    }
}

fn apply_insert(slots: &mut Vec<Slot>, head: u32, key: u32) -> Result<u32, DynError> {
    // The only walk is along the node's own list, bounded by the cycle
    // guard; the one allocation is the arena slot itself.
    let at = locate_ge(slots, head, key)?;
    let live = slots
        .get(at as usize)
        .map(|s| s.live)
        .ok_or(DynError::SlotOutOfRange { slot: at })?;
    if live {
        return Ok(at);
    }
    slots.push(Slot {
        key,
        next: head,
        live: true,
    });
    Ok((slots.len() - 1) as u32)
}
