//! # fc-resilience — fault injection, self-audit, and localized repair
//!
//! The paper's cooperative search is only as good as the structure it runs
//! on: a single flipped bridge can silently return a wrong leaf, because
//! the search *trusts* the fan-out property instead of verifying it. This
//! crate makes the workspace's structures defensible against memory
//! corruption and processor failure:
//!
//! * [`fault`] — a deterministic, seedable [`FaultPlan`] injector covering
//!   bridge perturbation/crossing, skeleton-sample deletion, catalog entry
//!   corruption (swaps, native-key clobbers, lost terminals), `native_succ`
//!   perturbation, and killing virtual processors at chosen PRAM rounds.
//!   Every structural fault is **detectable by construction** — each kind
//!   provably violates an audited invariant.
//! * [`audit`](crate::audit::audit) — a linear-time self-check that
//!   re-derives every redundant field (rows, bridges, skeleton keys) from
//!   its defining equation and returns a localized [`BlameReport`], never a
//!   panic.
//! * [`repair`](crate::repair::repair) — a blame-driven fixpoint that
//!   restores validity by rewriting only the flagged catalogs, rows, and
//!   skeleton units, falling back to a full rebuild only when localized
//!   information cannot decide (and reporting the cost of both).
//!
//! Together with `fc-coop`'s `coop_search_explicit_checked` (which verifies
//! windows and bridge crossings per query) and the `Pram` failure schedule
//! (degraded-mode re-scheduling onto survivors), this closes the loop:
//! **inject → detect → repair → re-validate**, exercised end to end by
//! `tests/resilience.rs` and the `E-fault` bench experiment.
//!
//! ```
//! use fc_catalog::gen::{self, SizeDist};
//! use fc_coop::{CoopStructure, ParamMode};
//! use fc_resilience::{audit, repair, FaultPlan, FaultSpec};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(5);
//! let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
//! let mut st = CoopStructure::preprocess(tree, ParamMode::Auto);
//!
//! let plan = FaultPlan::generate(&st, &FaultSpec::one_of_each(), 42);
//! plan.apply(&mut st);                 // inject
//! let report = audit(&st);             // detect
//! assert!(!report.is_clean());
//! let stats = repair(&mut st, &report); // repair
//! assert!(audit(&st).is_clean());      // re-validate
//! assert!(stats.repair_ops < stats.full_rebuild_ops);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod fault;
pub mod repair;

pub use audit::{audit, Blame, BlameReport};
pub use fault::{shard_seed, Fault, FaultPlan, FaultSpec};
pub use repair::{audit_and_repair, repair, RepairStats};
