//! Blame-driven localized repair.
//!
//! [`repair`] consumes a [`BlameReport`] and restores the structure to a
//! *valid* state (every [`crate::audit`] check passes, hence
//! `fc_catalog::invariants::validate` passes) touching only the flagged
//! regions — much cheaper than the full rebuild `fc_coop::dynamic` falls
//! back to. The fix order exploits the dependency chain of the structure:
//!
//! 1. **Catalogs** (the only non-derivable state): sort the flagged node's
//!    keys (a value swap is undone exactly), restore the terminal supremum,
//!    and re-insert missing native keys into order-compatible suspect slots
//!    (a clobbered native-valued entry is restored exactly — the missing
//!    value fits precisely where the duplicate it left behind sits).
//! 2. **Rows**: `native_succ` and bridge arrays of every flagged or
//!    catalog-touched node (and of its parent, whose bridges point into it)
//!    are recomputed from scratch by the builder's exact two-pointer walk.
//! 3. **Skeleton units**: every flagged unit, and every unit whose key
//!    matrix reads a touched node, is rebuilt in place via
//!    [`fc_coop::skeleton::Substructure::rebuild_unit_at`].
//!
//! Because a corrupt catalog can cast blame on innocent neighbors, the pass
//! runs as a fixpoint: repair, re-audit, repeat (bounded). If the audit is
//! still dirty after [`MAX_ROUNDS`] — possible when corruption destroyed
//! non-derivable sampled values — the pass falls back to a full rebuild
//! from the (authoritative) native catalogs, and says so in the stats.

use crate::audit::{audit, Blame, BlameReport};
use fc_catalog::{CascadedTree, CatalogKey};
use fc_coop::CoopStructure;
use std::collections::BTreeSet;

/// Fixpoint bound before the full-rebuild fallback.
pub const MAX_ROUNDS: usize = 3;

/// What a [`repair`] pass did and what it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Fixpoint rounds executed (audit passes not counted).
    pub rounds: usize,
    /// Catalog entries rewritten (sorted entries count once per node fix).
    pub catalog_entries_fixed: usize,
    /// `native_succ`/bridge rows recomputed.
    pub rows_recomputed: usize,
    /// Skeleton units rebuilt in place.
    pub units_rebuilt: usize,
    /// Words written by the localized repair.
    pub repair_ops: usize,
    /// Words a full rebuild would write (the structure's total size) — the
    /// cost `fc_coop::dynamic`'s rebuild fallback pays.
    pub full_rebuild_ops: usize,
    /// Whether the fixpoint failed to converge and the full rebuild ran.
    pub fell_back_to_full_rebuild: bool,
}

/// Repair `st` in place, guided by `report` (normally the output of
/// [`audit`]). Returns what was done; after return,
/// [`audit`] of `st` is clean — via localized fixes when possible, via the
/// full-rebuild fallback otherwise.
pub fn repair<K: CatalogKey>(st: &mut CoopStructure<K>, report: &BlameReport) -> RepairStats {
    let mut stats = RepairStats {
        full_rebuild_ops: st.total_space_words(),
        ..RepairStats::default()
    };
    if report.is_clean() {
        return stats;
    }

    let mut current = report.clone();
    for _ in 0..MAX_ROUNDS {
        stats.rounds += 1;
        repair_round(st, &current, &mut stats);
        current = audit(st);
        if current.is_clean() {
            return stats;
        }
    }

    // Fixpoint did not converge: rebuild everything from the native
    // catalogs, which the fault model treats as authoritative.
    let fc = st.cascade();
    let rebuilt = CascadedTree::build_bidir(fc.tree().clone(), fc.sample_factor());
    let mode = st.params().mode;
    let b = st.params().b;
    *st = CoopStructure::from_cascade_with_b(rebuilt, mode, b);
    stats.repair_ops += stats.full_rebuild_ops;
    stats.fell_back_to_full_rebuild = true;
    stats
}

/// Convenience round trip: audit, then repair if dirty. Returns the initial
/// report and the repair stats.
pub fn audit_and_repair<K: CatalogKey>(st: &mut CoopStructure<K>) -> (BlameReport, RepairStats) {
    let report = audit(st);
    let stats = repair(st, &report);
    (report, stats)
}

fn repair_round<K: CatalogKey>(
    st: &mut CoopStructure<K>,
    report: &BlameReport,
    stats: &mut RepairStats,
) {
    // Partition the blame.
    let mut catalog_nodes: BTreeSet<u32> = BTreeSet::new();
    let mut row_nodes: BTreeSet<u32> = BTreeSet::new();
    let mut bad_units: BTreeSet<(usize, usize)> = BTreeSet::new();
    for b in &report.findings {
        match *b {
            Blame::Catalog { node, .. } => {
                catalog_nodes.insert(node);
            }
            Blame::NativeSucc { node, .. } | Blame::Bridge { node, .. } => {
                row_nodes.insert(node);
            }
            Blame::Skeleton { sub, unit } => {
                bad_units.insert((sub, unit));
            }
        }
    }

    // Phase 1: catalogs.
    let node_ids: Vec<fc_catalog::NodeId> = st.tree().ids().collect();
    for &nid in &catalog_nodes {
        let Some(&id) = node_ids.get(nid as usize) else {
            continue;
        };
        let native: Vec<K> = st.tree().catalog(id).to_vec();
        let fc = st.cascade_mut_for_fault_injection();
        let keys = &mut fc.aug_mut_for_fault_injection(id).keys;
        let mut touched = 0usize;

        // 1a. Sort: a value transposition is undone exactly; otherwise a
        //     no-op on already-ordered keys.
        if keys.iter().zip(keys.iter().skip(1)).any(|(a, b)| a > b) {
            keys.sort_unstable();
            touched += keys.len();
        }
        // 1b. Terminal supremum.
        if let Some(last) = keys.last_mut() {
            if *last != K::SUPREMUM {
                *last = K::SUPREMUM;
                touched += 1;
            }
        }
        // 1c. Missing native keys: place each into the order-compatible
        //     suspect slot (prefer a duplicate — the footprint a clobbered
        //     entry leaves behind).
        for &nv in &native {
            if keys.binary_search(&nv).is_ok() {
                continue;
            }
            let i = keys.partition_point(|k| *k < nv);
            if i + 1 >= keys.len() {
                continue; // would clobber the terminal: not repairable locally
            }
            // Overwriting the insertion slot always preserves strict order
            // (keys[i-1] < nv < keys[i] <= keys[i+1]), and when the entry
            // was clobbered to a copy of its successor, this restores the
            // original value exactly.
            if let Some(slot) = keys.get_mut(i) {
                *slot = nv;
                touched += 1;
            }
        }
        if touched > 0 {
            stats.catalog_entries_fixed += touched;
            stats.repair_ops += touched;
        }
        row_nodes.insert(nid); // rows of a touched catalog must be redone
        if let Some(p) = st.tree().parent(id) {
            row_nodes.insert(p.0); // parent bridges point into this catalog
        }
    }

    // Phase 2: rows — recompute native_succ and all bridge rows of every
    // flagged/touched node with the builder's exact walks.
    for &nid in &row_nodes {
        let Some(&id) = node_ids.get(nid as usize) else {
            continue;
        };
        let tree_keys: Vec<K> = {
            let fc = st.cascade();
            fc.keys(id).to_vec()
        };
        let native: Vec<K> = st.tree().catalog(id).to_vec();
        let children: Vec<fc_catalog::NodeId> = st.tree().children(id).to_vec();
        let child_key_lists: Vec<Vec<K>> = children
            .iter()
            .map(|&c| st.cascade().keys(c).to_vec())
            .collect();

        let n = tree_keys.len();
        let mut native_succ = Vec::with_capacity(n);
        let mut j = 0usize;
        for &k in &tree_keys {
            while native.get(j).is_some_and(|&x| x < k) {
                j += 1;
            }
            native_succ.push(j as u32);
        }
        let mut bridges = Vec::with_capacity(children.len());
        for child_keys in &child_key_lists {
            let mut bj = 0usize;
            let mut bv = Vec::with_capacity(n);
            for &k in &tree_keys {
                while child_keys.get(bj).is_some_and(|&x| x < k) {
                    bj += 1;
                }
                bv.push((bj as u32).min(child_keys.len().saturating_sub(1) as u32));
            }
            bridges.push(bv);
        }

        let fc = st.cascade_mut_for_fault_injection();
        let mut aug = fc.aug_mut_for_fault_injection(id);
        let words = native_succ.len() + bridges.iter().map(Vec::len).sum::<usize>();
        // Arena spans are fixed-length, so a repair rewrites cells in place;
        // phase 1 never changes catalog lengths, so the shapes always match.
        for (dst, src) in aug.native_succ.iter_mut().zip(&native_succ) {
            *dst = *src;
        }
        for (slot, bv) in bridges.iter().enumerate() {
            if let Some(row) = aug.bridges.get_mut(slot) {
                for (dst, src) in row.iter_mut().zip(bv) {
                    *dst = *src;
                }
            }
        }
        stats.rows_recomputed += 1;
        stats.repair_ops += words;
    }

    // Phase 3: skeleton units — flagged units plus any unit reading a
    // touched node's catalog or bridges.
    let mut touched_nodes: BTreeSet<u32> = catalog_nodes;
    touched_nodes.extend(row_nodes.iter().copied());
    let (fc, subs) = st.cascade_and_subs_mut_for_repair();
    for (si, sub) in subs.iter_mut().enumerate() {
        let roots: Vec<(usize, fc_catalog::NodeId)> = sub
            .units
            .iter()
            .enumerate()
            .filter(|(ui, unit)| {
                bad_units.contains(&(si, *ui))
                    || unit.nodes.iter().any(|nd| touched_nodes.contains(&nd.0))
            })
            .map(|(ui, unit)| (ui, unit.root))
            .collect();
        for (_ui, root) in roots {
            if let Some(words) = sub.rebuild_unit_at(fc, root) {
                stats.units_rebuilt += 1;
                stats.repair_ops += words;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_catalog::invariants;
    use fc_coop::ParamMode;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(seed: u64) -> CoopStructure<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
        CoopStructure::preprocess(tree, ParamMode::Auto)
    }

    #[test]
    fn clean_repair_is_a_noop() {
        let mut st = build(23);
        let (report, stats) = audit_and_repair(&mut st);
        assert!(report.is_clean());
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.repair_ops, 0);
    }

    #[test]
    fn bridge_tamper_round_trip() {
        let mut st = build(29);
        let root = st.tree().root();
        {
            let fc = st.cascade_mut_for_fault_injection();
            fc.aug_mut_for_fault_injection(root).bridges[0][5] += 1;
        }
        let (report, stats) = audit_and_repair(&mut st);
        assert!(!report.is_clean());
        assert!(!stats.fell_back_to_full_rebuild);
        assert!(stats.repair_ops < stats.full_rebuild_ops);
        assert!(audit(&st).is_clean());
        invariants::validate(&invariants::check_all(st.cascade())).unwrap();
    }

    #[test]
    fn key_swap_round_trip_restores_exact_values() {
        let mut st = build(31);
        let root = st.tree().root();
        let before = st.cascade().keys(root).to_vec();
        {
            let fc = st.cascade_mut_for_fault_injection();
            let keys = &mut fc.aug_mut_for_fault_injection(root).keys;
            keys.swap(2, 3);
        }
        let (_, stats) = audit_and_repair(&mut st);
        assert!(!stats.fell_back_to_full_rebuild);
        assert_eq!(st.cascade().keys(root), &before[..]);
        assert!(audit(&st).is_clean());
    }
}
