//! Deterministic, seedable fault injection.
//!
//! A [`FaultPlan`] is a concrete list of [`Fault`]s — every coordinate and
//! replacement value fixed at generation time — so a plan can be printed,
//! replayed, and shrunk. Generation ([`FaultPlan::generate`]) picks sites
//! with a seeded `SmallRng` and is **detectable by construction**: each
//! fault kind is built so that it provably violates an invariant the
//! [`crate::audit`] checks:
//!
//! * [`Fault::KeySwap`] transposes two adjacent (hence distinct) augmented
//!   keys — breaks strict order.
//! * [`Fault::KeyClobber`] overwrites a native-valued entry with a copy of
//!   its successor — breaks completeness (the native key vanishes) and
//!   strictness (a duplicate appears).
//! * [`Fault::SupremumClobber`] replaces the terminal `+∞` — breaks the
//!   terminal check.
//! * [`Fault::BridgePerturb`] / [`Fault::NativeSuccPerturb`] move a pointer
//!   to a *different* in-range value — breaks row exactness (the builder's
//!   value is the unique exact partition point, so any change is visible).
//!   Undershooting perturbations are the ones a plain search silently
//!   mis-answers on; the audit and the checked search both catch them.
//! * [`Fault::SkeletonPerturb`] moves one skeleton key — breaks the
//!   root-key formula or the bridge induction of its unit.
//! * [`Fault::KillProcessors`] schedules processor deaths on the [`Pram`]
//!   at a chosen round ([`FaultPlan::arm`]); it corrupts no memory and is
//!   exercised by the degraded-mode search instead of the audit.
//! * [`Fault::InsBufferCorrupt`] / [`Fault::DelBufferCorrupt`] /
//!   [`Fault::CounterBump`] corrupt the *dynamic* path — `DynamicCoop`'s
//!   insert/delete buffers and rebuild-threshold counter — and each
//!   provably violates a buffer invariant that
//!   `DynamicCoop::audit_buffers` checks ([`FaultPlan::generate_dynamic`] /
//!   [`FaultPlan::apply_dynamic`]).

use fc_catalog::{CatalogKey, NodeId};
use fc_coop::dynamic::DynamicCoop;
use fc_coop::CoopStructure;
use fc_pram::cost::Pram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One concrete injected fault (all coordinates and values resolved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Swap augmented keys `entry` and `entry + 1` of `node`.
    KeySwap {
        /// Arena index of the node.
        node: u32,
        /// Left index of the swapped pair.
        entry: usize,
    },
    /// Overwrite the native-valued augmented entry `entry` of `node` with a
    /// copy of its successor entry.
    KeyClobber {
        /// Arena index of the node.
        node: u32,
        /// Entry holding a native key.
        entry: usize,
    },
    /// Overwrite the terminal `+∞` of `node` with its predecessor's value.
    SupremumClobber {
        /// Arena index of the node.
        node: u32,
    },
    /// Set `bridges[slot][entry] = new` at `node` (in-range, `!=` old).
    BridgePerturb {
        /// Arena index of the parent node.
        node: u32,
        /// Child slot.
        slot: usize,
        /// Bridge entry.
        entry: usize,
        /// Replacement target index.
        new: u32,
    },
    /// Set `native_succ[entry] = new` at `node` (in-range, `!=` old).
    NativeSuccPerturb {
        /// Arena index of the node.
        node: u32,
        /// Entry.
        entry: usize,
        /// Replacement rank.
        new: u32,
    },
    /// Set skeleton key `(j, z)` of unit `unit` in substructure `sub` to
    /// `new` (in-range for node `z`'s catalog, `!=` old) — the
    /// "skeleton-sample deletion" of the fault model: the sampled pointer
    /// is lost and replaced by garbage.
    SkeletonPerturb {
        /// Substructure index.
        sub: usize,
        /// Unit index.
        unit: usize,
        /// Skeleton tree index.
        j: usize,
        /// Unit-local node index.
        z: usize,
        /// Replacement key (augmented-catalog index).
        new: u32,
    },
    /// Kill `count` virtual processors just before PRAM round `at_round`.
    KillProcessors {
        /// Round number (0-based, in charge order).
        at_round: u64,
        /// Processors to kill.
        count: usize,
    },
    /// Dynamic path: smuggle the static catalog key of rank `rank` at
    /// `node` into the insert buffer — violates the buffer invariant that
    /// `ins` never duplicates static content, so
    /// `DynamicCoop::audit_buffers` blames `InsDuplicatesStatic`.
    InsBufferCorrupt {
        /// Arena index of the node.
        node: u32,
        /// Rank of the duplicated key in the node's static catalog.
        rank: u32,
    },
    /// Dynamic path: copy the `ins_rank`-th buffered insert of `node` into
    /// the delete buffer — the key is not statically present, violating
    /// both the `DelPhantom` and `InsDelOverlap` buffer invariants.
    DelBufferCorrupt {
        /// Arena index of the node.
        node: u32,
        /// Rank of the copied key in the node's insert buffer.
        ins_rank: u32,
    },
    /// Dynamic path: bump the buffered-change counter by 1 — the counter's
    /// parity no longer matches the buffer sizes (`CounterMismatch`), and
    /// the rebuild threshold fires early or late.
    CounterBump,
}

/// How many faults of each kind [`FaultPlan::generate`] should place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Adjacent-key transpositions.
    pub key_swaps: usize,
    /// Native-key clobbers.
    pub key_clobbers: usize,
    /// Terminal-supremum clobbers.
    pub supremum_clobbers: usize,
    /// Bridge pointer perturbations.
    pub bridge_perturbs: usize,
    /// `native_succ` perturbations.
    pub native_succ_perturbs: usize,
    /// Skeleton key perturbations.
    pub skeleton_perturbs: usize,
    /// Insert-buffer corruptions (dynamic path;
    /// [`FaultPlan::generate_dynamic`] only).
    pub ins_buffer_corrupts: usize,
    /// Delete-buffer corruptions (dynamic path;
    /// [`FaultPlan::generate_dynamic`] only).
    pub del_buffer_corrupts: usize,
    /// Change-counter bumps (dynamic path;
    /// [`FaultPlan::generate_dynamic`] only).
    pub counter_bumps: usize,
    /// Processor-kill schedule: `(at_round, count)` pairs.
    pub kills: Vec<(u64, usize)>,
}

impl FaultSpec {
    /// A spec with one fault of every structural kind (no kills, no
    /// dynamic-path faults).
    pub fn one_of_each() -> Self {
        FaultSpec {
            key_swaps: 1,
            key_clobbers: 1,
            supremum_clobbers: 1,
            bridge_perturbs: 1,
            native_succ_perturbs: 1,
            skeleton_perturbs: 1,
            ..FaultSpec::default()
        }
    }

    /// A spec with one fault of every dynamic-path kind (buffer and
    /// counter corruption; no static-structure faults).
    pub fn one_of_each_dynamic() -> Self {
        FaultSpec {
            ins_buffer_corrupts: 1,
            del_buffer_corrupts: 1,
            counter_bumps: 1,
            ..FaultSpec::default()
        }
    }

    /// Total number of memory-corrupting faults requested (static
    /// structure only; dynamic-path faults are counted separately by
    /// [`FaultSpec::dynamic_total`]).
    pub fn structural_total(&self) -> usize {
        self.key_swaps
            + self.key_clobbers
            + self.supremum_clobbers
            + self.bridge_perturbs
            + self.native_succ_perturbs
            + self.skeleton_perturbs
    }

    /// Total number of dynamic-path (buffer/counter) faults requested.
    pub fn dynamic_total(&self) -> usize {
        self.ins_buffer_corrupts + self.del_buffer_corrupts + self.counter_bumps
    }
}

/// A deterministic, replayable list of faults for one structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the sites were drawn with.
    pub seed: u64,
    /// The resolved faults, in injection order.
    pub faults: Vec<Fault>,
}

/// Bounded site-search attempts per requested fault (sites can be
/// infeasible on degenerate structures, e.g. single-entry catalogs).
const SITE_ATTEMPTS: usize = 256;

impl FaultPlan {
    /// Resolve `spec` against `st` into concrete faults, drawing sites with
    /// a `SmallRng` seeded by `seed`. Infeasible requests (no valid site
    /// found after a bounded search) are silently dropped, so the returned
    /// plan may hold fewer faults than requested; every returned structural
    /// fault is guaranteed detectable by [`crate::audit`].
    pub fn generate<K: CatalogKey>(st: &CoopStructure<K>, spec: &FaultSpec, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let fc = st.cascade();
        let tree = st.tree();
        let ids: Vec<NodeId> = tree.ids().collect();
        let mut faults = Vec::new();

        let pick_node = |rng: &mut SmallRng| ids[rng.gen_range(0..ids.len())];

        for _ in 0..spec.key_swaps {
            for _ in 0..SITE_ATTEMPTS {
                let v = pick_node(&mut rng);
                let n = fc.keys(v).len();
                if n < 3 {
                    continue; // need two non-terminal entries
                }
                let entry = rng.gen_range(0..n - 2);
                faults.push(Fault::KeySwap { node: v.0, entry });
                break;
            }
        }

        for _ in 0..spec.key_clobbers {
            for _ in 0..SITE_ATTEMPTS {
                let v = pick_node(&mut rng);
                let native = tree.catalog(v);
                if native.is_empty() {
                    continue;
                }
                let nv = native[rng.gen_range(0..native.len())];
                if nv == K::SUPREMUM {
                    continue;
                }
                let keys = fc.keys(v);
                let entry = keys.partition_point(|k| *k < nv);
                // Completeness of a clean structure guarantees a hit; the
                // guards below keep generation safe on an already-dirty one.
                if entry + 1 >= keys.len() || keys[entry] != nv {
                    continue;
                }
                faults.push(Fault::KeyClobber { node: v.0, entry });
                break;
            }
        }

        for _ in 0..spec.supremum_clobbers {
            for _ in 0..SITE_ATTEMPTS {
                let v = pick_node(&mut rng);
                let keys = fc.keys(v);
                let n = keys.len();
                if n < 2 || keys[n - 2] == K::SUPREMUM {
                    continue;
                }
                faults.push(Fault::SupremumClobber { node: v.0 });
                break;
            }
        }

        for _ in 0..spec.bridge_perturbs {
            for _ in 0..SITE_ATTEMPTS {
                let v = pick_node(&mut rng);
                let children = tree.children(v);
                if children.is_empty() {
                    continue;
                }
                let slot = rng.gen_range(0..children.len());
                let child_len = fc.keys(children[slot]).len();
                if child_len < 2 {
                    continue; // no second value to move to
                }
                let row = &fc.aug(v).bridges[slot];
                let entry = rng.gen_range(0..row.len());
                let old = row[entry];
                let new = (old as usize + 1 + rng.gen_range(0..child_len - 1)) % child_len;
                faults.push(Fault::BridgePerturb {
                    node: v.0,
                    slot,
                    entry,
                    new: new as u32,
                });
                break;
            }
        }

        for _ in 0..spec.native_succ_perturbs {
            for _ in 0..SITE_ATTEMPTS {
                let v = pick_node(&mut rng);
                let nl = tree.catalog(v).len();
                if nl == 0 {
                    continue; // only rank 0 exists: no different value
                }
                let succ = &fc.aug(v).native_succ;
                let entry = rng.gen_range(0..succ.len());
                let old = succ[entry];
                let new = (old as usize + 1 + rng.gen_range(0..nl)) % (nl + 1);
                faults.push(Fault::NativeSuccPerturb {
                    node: v.0,
                    entry,
                    new: new as u32,
                });
                break;
            }
        }

        for _ in 0..spec.skeleton_perturbs {
            let subs = st.substructures();
            for _ in 0..SITE_ATTEMPTS {
                if subs.is_empty() {
                    break;
                }
                let si = rng.gen_range(0..subs.len());
                if subs[si].units.is_empty() {
                    continue;
                }
                let ui = rng.gen_range(0..subs[si].units.len());
                let unit = &subs[si].units[ui];
                let zn = unit.nodes.len();
                let j = rng.gen_range(0..unit.m as usize);
                let z = rng.gen_range(0..zn);
                let t_z = fc.keys(unit.nodes[z]).len();
                if t_z < 2 {
                    continue;
                }
                let old = unit.key(j, z);
                let new = (old as usize + 1 + rng.gen_range(0..t_z - 1)) % t_z;
                faults.push(Fault::SkeletonPerturb {
                    sub: si,
                    unit: ui,
                    j,
                    z,
                    new: new as u32,
                });
                break;
            }
        }

        for &(at_round, count) in &spec.kills {
            faults.push(Fault::KillProcessors { at_round, count });
        }

        FaultPlan { seed, faults }
    }

    /// Resolve `spec` against a *dynamic* structure: the static fault kinds
    /// are drawn against the wrapped [`CoopStructure`] exactly as
    /// [`FaultPlan::generate`] does, and the dynamic-path kinds
    /// (`ins_buffer_corrupts` / `del_buffer_corrupts` / `counter_bumps`)
    /// are drawn against the current insert/delete buffers. As with the
    /// static generator, infeasible sites (e.g. a delete-buffer corruption
    /// when no inserts are buffered anywhere) are dropped, and every
    /// returned dynamic fault is guaranteed detectable by
    /// [`DynamicCoop::audit_buffers`].
    pub fn generate_dynamic<K: CatalogKey>(
        dy: &DynamicCoop<K>,
        spec: &FaultSpec,
        seed: u64,
    ) -> Self {
        let mut plan = Self::generate(dy.structure(), spec, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1AA_0001);
        let tree = dy.structure().tree();
        let ids: Vec<NodeId> = tree.ids().collect();

        for _ in 0..spec.ins_buffer_corrupts {
            for _ in 0..SITE_ATTEMPTS {
                let v = ids[rng.gen_range(0..ids.len())];
                let native = tree.catalog(v);
                if native.is_empty() {
                    continue;
                }
                let rank = rng.gen_range(0..native.len());
                plan.faults.push(Fault::InsBufferCorrupt {
                    node: v.0,
                    rank: rank as u32,
                });
                break;
            }
        }

        for _ in 0..spec.del_buffer_corrupts {
            // Needs a node with at least one buffered insert.
            let candidates: Vec<NodeId> = ids
                .iter()
                .copied()
                .filter(|&v| !dy.buffered_inserts(v).is_empty())
                .collect();
            if candidates.is_empty() {
                break;
            }
            let v = candidates[rng.gen_range(0..candidates.len())];
            let n = dy.buffered_inserts(v).len();
            plan.faults.push(Fault::DelBufferCorrupt {
                node: v.0,
                ins_rank: rng.gen_range(0..n) as u32,
            });
        }

        for _ in 0..spec.counter_bumps {
            plan.faults.push(Fault::CounterBump);
        }

        plan
    }

    /// Apply the plan to a dynamic structure: static faults go to the
    /// wrapped [`CoopStructure`], dynamic faults to the buffers and change
    /// counter. Out-of-date coordinates are skipped, as in
    /// [`FaultPlan::apply`].
    pub fn apply_dynamic<K: CatalogKey>(&self, dy: &mut DynamicCoop<K>) {
        // Stale-coordinate lookups need the tree before the buffers are
        // mutably borrowed.
        let ids: Vec<NodeId> = dy.structure().tree().ids().collect();
        let static_keys: Vec<Vec<K>> = ids
            .iter()
            .map(|&id| dy.structure().tree().catalog(id).to_vec())
            .collect();
        self.apply(dy.structure_mut_for_repair());
        let (ins, del, changes) = dy.buffers_mut_for_fault_injection();
        for &fault in &self.faults {
            match fault {
                Fault::InsBufferCorrupt { node, rank } => {
                    let (Some(&id), Some(cat)) =
                        (ids.get(node as usize), static_keys.get(node as usize))
                    else {
                        continue;
                    };
                    if let Some(&k) = cat.get(rank as usize) {
                        ins[id.idx()].insert(k);
                    }
                }
                Fault::DelBufferCorrupt { node, ins_rank } => {
                    let Some(&id) = ids.get(node as usize) else {
                        continue;
                    };
                    let key = ins[id.idx()].iter().nth(ins_rank as usize).copied();
                    if let Some(k) = key {
                        del[id.idx()].insert(k);
                    }
                }
                Fault::CounterBump => {
                    *changes += 1;
                }
                _ => {}
            }
        }
    }

    /// Apply every structural fault to `st` (processor kills are armed with
    /// [`FaultPlan::arm`] instead). Out-of-date coordinates (e.g. a plan
    /// replayed against a different structure) are skipped rather than
    /// panicking.
    pub fn apply<K: CatalogKey>(&self, st: &mut CoopStructure<K>) {
        let ids: Vec<NodeId> = st.tree().ids().collect();
        for &fault in &self.faults {
            match fault {
                Fault::KeySwap { node, entry } => {
                    let Some(&id) = ids.get(node as usize) else {
                        continue;
                    };
                    let keys = &mut st
                        .cascade_mut_for_fault_injection()
                        .aug_mut_for_fault_injection(id)
                        .keys;
                    if entry + 1 < keys.len() {
                        keys.swap(entry, entry + 1);
                    }
                }
                Fault::KeyClobber { node, entry } => {
                    let Some(&id) = ids.get(node as usize) else {
                        continue;
                    };
                    let keys = &mut st
                        .cascade_mut_for_fault_injection()
                        .aug_mut_for_fault_injection(id)
                        .keys;
                    if entry + 1 < keys.len() {
                        keys[entry] = keys[entry + 1];
                    }
                }
                Fault::SupremumClobber { node } => {
                    let Some(&id) = ids.get(node as usize) else {
                        continue;
                    };
                    let keys = &mut st
                        .cascade_mut_for_fault_injection()
                        .aug_mut_for_fault_injection(id)
                        .keys;
                    let n = keys.len();
                    if n >= 2 {
                        keys[n - 1] = keys[n - 2];
                    }
                }
                Fault::BridgePerturb {
                    node,
                    slot,
                    entry,
                    new,
                } => {
                    let Some(&id) = ids.get(node as usize) else {
                        continue;
                    };
                    let mut aug = st
                        .cascade_mut_for_fault_injection()
                        .aug_mut_for_fault_injection(id);
                    if let Some(cell) = aug.bridges.get_mut(slot).and_then(|r| r.get_mut(entry)) {
                        *cell = new;
                    }
                }
                Fault::NativeSuccPerturb { node, entry, new } => {
                    let Some(&id) = ids.get(node as usize) else {
                        continue;
                    };
                    let aug = st
                        .cascade_mut_for_fault_injection()
                        .aug_mut_for_fault_injection(id);
                    if let Some(cell) = aug.native_succ.get_mut(entry) {
                        *cell = new;
                    }
                }
                Fault::SkeletonPerturb {
                    sub,
                    unit,
                    j,
                    z,
                    new,
                } => {
                    let subs = st.substructures_mut_for_fault_injection();
                    let Some(u) = subs.get_mut(sub).and_then(|s| s.units.get_mut(unit)) else {
                        continue;
                    };
                    let zn = u.nodes.len();
                    if let Some(cell) = u.keys.get_mut(j * zn + z) {
                        *cell = new;
                    }
                }
                Fault::KillProcessors { .. }
                | Fault::InsBufferCorrupt { .. }
                | Fault::DelBufferCorrupt { .. }
                | Fault::CounterBump => {}
            }
        }
    }

    /// Arm every [`Fault::KillProcessors`] on `pram` (structural faults are
    /// applied with [`FaultPlan::apply`] instead).
    pub fn arm(&self, pram: &mut Pram) {
        for &fault in &self.faults {
            if let Fault::KillProcessors { at_round, count } = fault {
                pram.schedule_failure(at_round, count);
            }
        }
    }

    /// Number of static-structure memory-corrupting faults in the plan.
    pub fn structural_len(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| {
                !matches!(
                    f,
                    Fault::KillProcessors { .. }
                        | Fault::InsBufferCorrupt { .. }
                        | Fault::DelBufferCorrupt { .. }
                        | Fault::CounterBump
                )
            })
            .count()
    }

    /// Number of dynamic-path (buffer/counter) faults in the plan.
    pub fn dynamic_len(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    Fault::InsBufferCorrupt { .. }
                        | Fault::DelBufferCorrupt { .. }
                        | Fault::CounterBump
                )
            })
            .count()
    }
}

/// Derive an independent fault-injection seed for one `(shard, replica)`
/// cell of a cluster from a single base seed.
///
/// Chaos harnesses that drive many replicas from one configured seed must
/// not hand adjacent cells adjacent seeds: `SmallRng` streams seeded with
/// `base + i` are decorrelated, but the *plans* would still pick sites in
/// suspiciously similar orders for small bases. This mixes the coordinates
/// through a splitmix64 finalizer so every cell gets a well-spread 64-bit
/// seed, deterministically per `(base, shard, replica)`.
pub fn shard_seed(base: u64, shard: usize, replica: usize) -> u64 {
    let mut z = base
        .wrapping_add((shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add((replica as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::audit;
    use fc_catalog::gen::{self, SizeDist};
    use fc_coop::ParamMode;

    fn build(seed: u64) -> CoopStructure<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
        CoopStructure::preprocess(tree, ParamMode::Auto)
    }

    #[test]
    fn shard_seeds_are_deterministic_and_well_spread() {
        assert_eq!(shard_seed(1, 2, 3), shard_seed(1, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for base in 0..4u64 {
            for shard in 0..8 {
                for replica in 0..4 {
                    assert!(
                        seen.insert(shard_seed(base, shard, replica)),
                        "collision at base={base} shard={shard} replica={replica}"
                    );
                }
            }
        }
        // Adjacent cells must not yield adjacent seeds.
        let d = shard_seed(0, 0, 0).abs_diff(shard_seed(0, 0, 1));
        assert!(d > 1 << 20, "adjacent replicas too close: {d}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let st = build(41);
        let spec = FaultSpec::one_of_each();
        let a = FaultPlan::generate(&st, &spec, 7);
        let b = FaultPlan::generate(&st, &spec, 7);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&st, &spec, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn every_structural_fault_is_detected() {
        let st = build(43);
        let spec = FaultSpec::one_of_each();
        for seed in 0..20 {
            let plan = FaultPlan::generate(&st, &spec, seed);
            assert_eq!(plan.structural_len(), spec.structural_total());
            let mut tampered = st.clone();
            plan.apply(&mut tampered);
            let report = audit(&tampered);
            assert!(
                !report.is_clean(),
                "seed {seed}: plan {plan:?} escaped the audit"
            );
        }
    }

    #[test]
    fn every_dynamic_fault_is_detected_by_the_buffer_audit() {
        use fc_coop::ParamMode;
        use fc_pram::{Model, Pram};
        let mut rng = SmallRng::seed_from_u64(47);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 100.0); // no auto-rebuild
        let mut pram = Pram::new(64, Model::Crew);
        // Buffer some real churn so delete-buffer corruption has sites.
        let node_count = dy.structure().tree().len() as u32;
        for _ in 0..200 {
            let node = fc_catalog::NodeId(rng.gen_range(0..node_count));
            dy.insert(node, rng.gen_range(2_000_000..3_000_000i64), &mut pram);
        }
        assert!(dy.audit_buffers().is_ok());
        for seed in 0..10u64 {
            let spec = FaultSpec::one_of_each_dynamic();
            let plan = FaultPlan::generate_dynamic(&dy, &spec, seed);
            assert_eq!(plan.dynamic_len(), spec.dynamic_total(), "seed {seed}");
            assert_eq!(plan.structural_len(), 0);
            // Apply to a fresh copy of the buffers by replaying churn.
            let mut rng2 = SmallRng::seed_from_u64(47);
            let tree2 = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng2);
            let mut dy2 = DynamicCoop::new(tree2, ParamMode::Auto, 100.0);
            for _ in 0..200 {
                let node = fc_catalog::NodeId(rng2.gen_range(0..node_count));
                dy2.insert(node, rng2.gen_range(2_000_000..3_000_000i64), &mut pram);
            }
            plan.apply_dynamic(&mut dy2);
            assert!(
                dy2.audit_buffers().is_err(),
                "seed {seed}: dynamic plan {plan:?} escaped the buffer audit"
            );
        }
    }

    #[test]
    fn dynamic_generation_also_places_static_faults() {
        use fc_coop::ParamMode;
        let mut rng = SmallRng::seed_from_u64(53);
        let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 100.0);
        let spec = FaultSpec {
            bridge_perturbs: 1,
            counter_bumps: 1,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate_dynamic(&dy, &spec, 9);
        assert_eq!(plan.structural_len(), 1);
        assert_eq!(plan.dynamic_len(), 1);
        plan.apply_dynamic(&mut dy);
        assert!(!audit(dy.structure()).is_clean());
        assert!(dy.audit_buffers().is_err());
    }

    #[test]
    fn kills_arm_the_pram() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![Fault::KillProcessors {
                at_round: 0,
                count: 3,
            }],
        };
        let mut pram = Pram::new(8, fc_pram::Model::Crew);
        plan.arm(&mut pram);
        pram.round(8);
        assert_eq!(pram.processors(), 5);
    }
}
