//! Localized structural self-audit of a [`CoopStructure`].
//!
//! [`crate::audit`] re-derives every redundant field of the structure from
//! its defining equation and reports each mismatch as a [`Blame`] coordinate
//! at the granularity the repair pass acts on: a catalog entry, a
//! `native_succ` entry, a bridge cell, or a whole skeleton unit.
//!
//! The checks, per node `v` with augmented catalog `A_v`:
//!
//! 1. **Order** — `A_v` is strictly increasing (builders dedup).
//! 2. **Terminal** — the last entry is `K::SUPREMUM`.
//! 3. **Completeness** — every native key of `v` appears in `A_v`
//!    (`A_v ⊇ C_v` by construction; a corrupted entry that *removes* a
//!    native key would make searches legitimately-looking but wrong).
//! 4. **Provenance** — every non-terminal entry of `A_v` appears in
//!    `C_v ∪ A_children ∪ A_parent` (all augmented values are native values
//!    or samples of a neighbor's augmented catalog).
//! 5. **`native_succ` exactness** — each entry equals the recomputed
//!    two-pointer rank of the key in the native catalog.
//! 6. **Bridge exactness** — each bridge cell equals the recomputed
//!    `partition_point` of the key in the child's augmented catalog (the
//!    builders use exact walks, so *any* deviation is corruption; in
//!    particular an **undershoot** — which the unaudited search would turn
//!    into a silently wrong answer — is caught here).
//!
//! And per skeleton unit: the root keys obey the sampling formula
//! (`(j+1)·s − 1`, last tree `t − 1`), the tree count is `⌈t/s⌉`, and every
//! child key equals the bridge-induced value of its parent key.
//!
//! Blame is *localized*, not forensic: a corrupt child catalog can make an
//! innocent parent's (correct) bridges look inexact. The repair fixpoint
//! tolerates this — it fixes catalogs first, recomputes the flagged rows
//! from the fixed catalogs, and re-audits.

use fc_catalog::{CatalogKey, FcError};
use fc_coop::CoopStructure;

/// One localized audit finding, at repair granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blame {
    /// The augmented catalog of `node` is wrong at (or around) `entry`:
    /// order violation, lost terminal, missing native key (`entry` is the
    /// insertion position), or unprovenanced value.
    Catalog {
        /// Arena index of the node.
        node: u32,
        /// Offending entry (or insertion position for a missing native).
        entry: usize,
    },
    /// `native_succ[entry]` of `node` differs from its recomputed value.
    NativeSucc {
        /// Arena index of the node.
        node: u32,
        /// Offending entry.
        entry: usize,
    },
    /// `bridges[slot][entry]` of `node` differs from its recomputed value.
    Bridge {
        /// Arena index of the parent node owning the bridge.
        node: u32,
        /// Child slot.
        slot: usize,
        /// Offending entry.
        entry: usize,
    },
    /// Skeleton unit `unit` of substructure `sub` violates the root-key
    /// formula or the bridge induction (flagged once per unit — the repair
    /// granularity is a whole unit rebuild).
    Skeleton {
        /// Substructure index (position in `CoopStructure::substructures`).
        sub: usize,
        /// Unit index within the substructure.
        unit: usize,
    },
}

impl Blame {
    /// The typed error this finding corresponds to, for interop with the
    /// checked search paths.
    pub fn to_error(self) -> FcError {
        match self {
            Blame::Catalog { node, entry } => FcError::CorruptCatalog { node, entry },
            Blame::NativeSucc { node, entry } => FcError::CorruptCatalog { node, entry },
            Blame::Bridge { node, slot, entry } => FcError::CorruptBridge { node, slot, entry },
            Blame::Skeleton { sub, unit } => FcError::WindowOverrun {
                node: unit as u32,
                level: sub as u32,
                got: 0,
                lo: 0,
                hi: 0,
            },
        }
    }
}

/// Aggregated audit result: all findings plus the scan cost (in examined
/// words), used by the `E-fault` experiment to price detection.
#[derive(Debug, Clone, Default)]
pub struct BlameReport {
    /// Every localized finding, in scan order.
    pub findings: Vec<Blame>,
    /// Words examined by the audit (catalog entries + rows + skeleton keys).
    pub words_scanned: usize,
}

impl BlameReport {
    /// `true` when the structure passed every check.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The first finding as a typed error, if any.
    pub fn first_error(&self) -> Option<FcError> {
        self.findings.first().map(|b| b.to_error())
    }

    /// Arena indices of all catalog/row-blamed nodes (deduplicated,
    /// unordered).
    pub fn blamed_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .findings
            .iter()
            .filter_map(|b| match *b {
                Blame::Catalog { node, .. }
                | Blame::NativeSucc { node, .. }
                | Blame::Bridge { node, .. } => Some(node),
                Blame::Skeleton { .. } => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Audit every redundant field of `st` (see the module docs for the check
/// list). Runs in time linear in the structure size; never panics on
/// corrupted input.
pub fn audit<K: CatalogKey>(st: &CoopStructure<K>) -> BlameReport {
    let fc = st.cascade();
    let tree = st.tree();
    let mut findings = Vec::new();
    let mut words = 0usize;

    for v in tree.ids() {
        let aug = fc.aug(v);
        let keys = &aug.keys;
        let n = keys.len();
        let native = tree.catalog(v);
        words += n;
        if n == 0 {
            findings.push(Blame::Catalog {
                node: v.0,
                entry: 0,
            });
            continue;
        }

        // 1. Strict order.
        let mut sorted = true;
        for (i, (a, b)) in keys.iter().zip(keys.iter().skip(1)).enumerate() {
            if a >= b {
                findings.push(Blame::Catalog {
                    node: v.0,
                    entry: i + 1,
                });
                sorted = false;
            }
        }
        // 2. Terminal supremum.
        if keys.last() != Some(&K::SUPREMUM) {
            findings.push(Blame::Catalog {
                node: v.0,
                entry: n - 1,
            });
        }
        // 3. Completeness: every native key present.
        for &nv in native {
            let present = if sorted {
                keys.binary_search(&nv).is_ok()
            } else {
                keys.contains(&nv)
            };
            if !present {
                let entry = keys.partition_point(|k| *k < nv).min(n - 1);
                findings.push(Blame::Catalog { node: v.0, entry });
            }
        }
        // 4. Provenance: every non-terminal value is native or a neighbor
        //    sample. Neighbor catalogs may themselves be corrupt/unsorted,
        //    so fall back to linear scans when binary search is unsafe.
        let parent_keys = tree.parent(v).map(|p| fc.keys(p));
        for (i, &k) in keys.iter().take(n - 1).enumerate() {
            let mut found = native.binary_search(&k).is_ok();
            if !found {
                for &c in tree.children(v) {
                    if fc.keys(c).contains(&k) {
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                if let Some(pk) = parent_keys {
                    found = pk.contains(&k);
                }
            }
            if !found {
                findings.push(Blame::Catalog {
                    node: v.0,
                    entry: i,
                });
            }
        }
        // 5. native_succ exactness.
        words += aug.native_succ.len();
        if aug.native_succ.len() != n {
            findings.push(Blame::NativeSucc {
                node: v.0,
                entry: 0,
            });
        } else {
            for (i, (&stored, &key)) in aug.native_succ.iter().zip(keys.iter()).enumerate() {
                let expect = native.partition_point(|x| *x < key) as u32;
                if stored != expect {
                    findings.push(Blame::NativeSucc {
                        node: v.0,
                        entry: i,
                    });
                }
            }
        }
        // 6. Bridge exactness (covers undershoot, overshoot, and crossing:
        //    the builder's value is the unique exact partition point).
        for (slot, &c) in tree.children(v).iter().enumerate() {
            let child_keys = fc.keys(c);
            let Some(row) = aug.bridges.get(slot) else {
                findings.push(Blame::Bridge {
                    node: v.0,
                    slot,
                    entry: 0,
                });
                continue;
            };
            words += row.len();
            if row.len() != n {
                findings.push(Blame::Bridge {
                    node: v.0,
                    slot,
                    entry: 0,
                });
                continue;
            }
            for (i, (&stored, &key)) in row.iter().zip(keys.iter()).enumerate() {
                let expect = child_keys.partition_point(|x| *x < key) as u32;
                if stored != expect {
                    findings.push(Blame::Bridge {
                        node: v.0,
                        slot,
                        entry: i,
                    });
                }
            }
        }
    }

    // Skeleton forests: root-key formula + bridge induction, one blame per
    // bad unit (unit rebuild is the repair granularity).
    for (si, sub) in st.substructures().iter().enumerate() {
        'units: for (ui, unit) in sub.units.iter().enumerate() {
            let zn = unit.nodes.len();
            words += unit.keys.len();
            let t = fc.keys(unit.root).len();
            let m = unit.m as usize;
            if m != t.div_ceil(sub.sp.s).max(1) || unit.keys.len() != m * zn {
                findings.push(Blame::Skeleton { sub: si, unit: ui });
                continue;
            }
            for j in 0..m {
                let expect_root = if j + 1 == m {
                    t - 1
                } else {
                    (j + 1) * sub.sp.s - 1
                };
                if unit.key(j, 0) as usize != expect_root {
                    findings.push(Blame::Skeleton { sub: si, unit: ui });
                    continue 'units;
                }
                for (z, (cps, &wz)) in unit.children_pos.iter().zip(unit.nodes.iter()).enumerate() {
                    let kz = unit.key(j, z) as usize;
                    for (slot, &cpos) in cps.iter().enumerate() {
                        if cpos == fc_coop::skeleton::NO_CHILD {
                            continue;
                        }
                        let induced = fc
                            .aug(wz)
                            .bridges
                            .get(slot)
                            .and_then(|row| row.get(kz))
                            .copied();
                        if induced != Some(unit.key(j, cpos as usize)) {
                            findings.push(Blame::Skeleton { sub: si, unit: ui });
                            continue 'units;
                        }
                    }
                }
            }
        }
    }

    BlameReport {
        findings,
        words_scanned: words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_catalog::gen::{self, SizeDist};
    use fc_coop::ParamMode;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(seed: u64) -> CoopStructure<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
        CoopStructure::preprocess(tree, ParamMode::Auto)
    }

    #[test]
    fn clean_structure_audits_clean() {
        let st = build(11);
        let report = audit(&st);
        assert!(report.is_clean(), "false positives: {:?}", report.findings);
        assert!(report.words_scanned > 0);
    }

    #[test]
    fn bridge_tamper_is_blamed_at_the_cell() {
        let mut st = build(13);
        let root = st.tree().root();
        {
            let fc = st.cascade_mut_for_fault_injection();
            let mut aug = fc.aug_mut_for_fault_injection(root);
            aug.bridges[0][3] += 2;
        }
        let report = audit(&st);
        assert!(report
            .findings
            .iter()
            .any(|b| matches!(*b, Blame::Bridge { node, slot: 0, entry: 3 } if node == root.0)));
    }

    #[test]
    fn lost_supremum_is_blamed() {
        let mut st = build(17);
        let root = st.tree().root();
        {
            let fc = st.cascade_mut_for_fault_injection();
            let aug = fc.aug_mut_for_fault_injection(root);
            let n = aug.keys.len();
            aug.keys[n - 1] = aug.keys[n - 2];
        }
        let report = audit(&st);
        assert!(report
            .findings
            .iter()
            .any(|b| matches!(*b, Blame::Catalog { node, .. } if node == root.0)));
    }

    #[test]
    fn skeleton_tamper_is_blamed_at_the_unit() {
        let mut st = build(19);
        assert!(!st.substructures().is_empty());
        {
            let subs = st.substructures_mut_for_fault_injection();
            let unit = &mut subs[0].units[0];
            unit.keys[0] = unit.keys[0].wrapping_add(1);
        }
        let report = audit(&st);
        assert!(report
            .findings
            .iter()
            .any(|b| matches!(*b, Blame::Skeleton { sub: 0, unit: 0 })));
    }
}
