//! # fc-retrieval — cooperative geometric retrieval (Section 4)
//!
//! Theorem 6 applies the cooperative-search machinery to three reporting
//! problems, all built on balanced binary trees with catalogs of total size
//! `O(n log n)`:
//!
//! * **Orthogonal segment intersection** ([`segint`]) — a segment tree on
//!   the y-coordinates; the query descends to the leaf of the query
//!   segment's height and runs **two explicit cooperative searches** (for
//!   the two x-extremes) along that path, which identifies a contiguous
//!   catalog range to report at every path node.
//! * **Orthogonal range search** ([`range2d`]) — a range tree on x with
//!   y-sorted catalogs; two boundary paths, cooperative y-searches along
//!   them, canonical children reached through a single bridge step.
//! * **Point enclosure** ([`enclosure`]) — a segment tree on x whose nodes
//!   carry *interval trees* (themselves trees with catalogs) for the 1D
//!   y-stabbing subproblem; the paper gives no construction ("similar
//!   approach"), this is the standard O(n log n) realisation.
//!
//! Two retrieval modes, as in the paper: **direct** (mark/collect every
//! reported item; costs an extra `O(log log n)` prefix sum plus `k/p`) and
//! **indirect** (return a linked list of catalog ranges; `O(1)` extra on a
//! CRCW PRAM with enough processors). [`report`] implements both with the
//! matching cost accounting.
//!
//! [`range3d`] extends range search to `d = 3` (Corollary 2): an x-tree
//! whose nodes own 2D structures, searched by recursive processor
//! splitting.

#![warn(missing_docs)]
// Interval-tree node payloads are internal tuples, not public API.
#![allow(clippy::type_complexity)]

pub mod enclosure;
pub mod range2d;
pub mod range3d;
pub mod ranged;
pub mod report;
pub mod segint;

pub use range2d::RangeTree2D;
pub use report::{
    charge_direct, charge_indirect, merge_shard_reports, MergedReport, RangeList, ReportRange,
    ShardRange,
};
pub use segint::SegmentIntersection;
