//! Orthogonal segment intersection (the problem Theorem 6 details).
//!
//! Input: `n` vertical segments. Query: a horizontal segment `h`; report
//! every vertical segment crossing it.
//!
//! Structure: a **segment tree** on the segments' y-extents — each segment
//! is allocated to `O(log n)` canonical nodes; each node's catalog holds
//! its allocated segments **sorted by x**. A query descends to the leaf of
//! the query's height `y` (every allocated segment on that path spans `y`),
//! then runs two *explicit cooperative searches* along the path — one for
//! each x-extreme of `h` — which identifies a contiguous catalog range to
//! report per node (Theorem 1 gives the `O((log n)/log p)` bound).

use crate::report::{charge_direct, charge_indirect, RangeList, ReportRange};
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::explicit::coop_search_explicit;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::cost::Pram;
use rand::prelude::*;

/// A vertical segment: `x` from `y_lo` to `y_hi` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VSegment {
    /// x-coordinate (distinct across the input — general position).
    pub x: i64,
    /// Lower y endpoint.
    pub y_lo: i64,
    /// Upper y endpoint.
    pub y_hi: i64,
}

/// A horizontal query segment at height `y` from `x_lo` to `x_hi`.
#[derive(Debug, Clone, Copy)]
pub struct HQuery {
    /// Height.
    pub y: i64,
    /// Left x end.
    pub x_lo: i64,
    /// Right x end.
    pub x_hi: i64,
}

/// The preprocessed segment-intersection structure.
pub struct SegmentIntersection {
    /// The segments, by id.
    pub segments: Vec<VSegment>,
    /// Cooperative structure over the segment tree.
    pub st: CoopStructure<i64>,
    /// Segment ids per node, aligned with the (x-sorted) catalogs.
    pub ids: Vec<Vec<u32>>,
    /// Sorted distinct y endpoints (elementary interval boundaries).
    endpoints: Vec<i64>,
    /// Number of segment-tree leaves (power of two).
    leaves: usize,
}

impl SegmentIntersection {
    /// Build the structure: segment tree over the y-endpoints, catalogs
    /// sorted by x, fractional cascading + cooperative preprocessing.
    ///
    /// # Panics
    /// Panics if two segments share an x-coordinate (the catalogs need
    /// distinct keys; the paper's standard general-position assumption).
    pub fn build(segments: Vec<VSegment>, mode: ParamMode) -> Self {
        assert!(!segments.is_empty());
        for s in &segments {
            assert!(s.y_lo <= s.y_hi, "degenerate segment");
        }
        // Elementary intervals with closed endpoints handled by doubling:
        // slab 2r+1 = the point endpoints[r]; slab 2r = the open interval
        // below it (slab 0 extends to −∞, slab 2m to +∞).
        let mut endpoints: Vec<i64> = segments.iter().flat_map(|s| [s.y_lo, s.y_hi]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let slabs = 2 * endpoints.len() + 1;
        let leaves = slabs.next_power_of_two();

        // Complete binary tree in BFS order: node i children 2i+1, 2i+2.
        let internal = leaves - 1;
        let total_nodes = internal + leaves;
        let mut alloc: Vec<Vec<u32>> = vec![Vec::new(); total_nodes];

        // Allocate each segment to canonical nodes covering its slab range.
        for (id, s) in segments.iter().enumerate() {
            let lo = 2 * endpoints.binary_search(&s.y_lo).unwrap() + 1;
            let hi = 2 * endpoints.binary_search(&s.y_hi).unwrap() + 1;
            insert(&mut alloc, 0, 0, leaves, lo, hi, id as u32);
        }

        // Catalogs: allocated segments sorted by x.
        let mut parents: Vec<Option<u32>> = Vec::with_capacity(total_nodes);
        let mut catalogs: Vec<Vec<i64>> = Vec::with_capacity(total_nodes);
        let mut ids: Vec<Vec<u32>> = Vec::with_capacity(total_nodes);
        for (i, list) in alloc.iter_mut().enumerate() {
            parents.push(if i == 0 {
                None
            } else {
                Some(((i - 1) / 2) as u32)
            });
            list.sort_by_key(|&id| segments[id as usize].x);
            let cat: Vec<i64> = list.iter().map(|&id| segments[id as usize].x).collect();
            assert!(
                cat.windows(2).all(|w| w[0] < w[1]),
                "segment x-coordinates must be distinct"
            );
            catalogs.push(cat);
            ids.push(std::mem::take(list));
        }

        let tree = CatalogTree::from_parents(parents, catalogs);
        let st = CoopStructure::preprocess(tree, mode);
        SegmentIntersection {
            segments,
            st,
            ids,
            endpoints,
            leaves,
        }
    }

    /// The slab index of height `y`: `2r + 1` when `y` equals an endpoint,
    /// the open slab `2r` below the `r`-th endpoint otherwise.
    fn slab_of(&self, y: i64) -> usize {
        match self.endpoints.binary_search(&y) {
            Ok(r) => 2 * r + 1,
            Err(r) => 2 * r,
        }
        .min(self.leaves - 1)
    }

    /// The root-to-leaf path of the slab containing `y`.
    pub fn path_of(&self, y: i64) -> Vec<NodeId> {
        let mut idx = self.slab_of(y) + self.leaves - 1; // leaf arena index
        let mut path = vec![NodeId(idx as u32)];
        while idx > 0 {
            idx = (idx - 1) / 2;
            path.push(NodeId(idx as u32));
        }
        path.reverse();
        path
    }

    /// Cooperative query: the catalog ranges of segments crossing `q`,
    /// found with two explicit cooperative searches; reporting cost charged
    /// per `direct`. Returns the range list (and implicitly `k`).
    pub fn query_coop(&self, q: HQuery, direct: bool, pram: &mut Pram) -> RangeList {
        let path = self.path_of(q.y);
        // Two explicit searches: first x >= x_lo, and first x > x_hi.
        let lo = coop_search_explicit(&self.st, &path, q.x_lo, pram);
        let hi_key = q.x_hi.saturating_add(1);
        let hi = coop_search_explicit(&self.st, &path, hi_key, pram);
        let tree = self.st.tree();
        let list = RangeList::from_ranges(path.iter().enumerate().map(|(i, &node)| {
            let a = lo.finds[i].native_idx;
            let b = hi.finds[i].native_idx;
            debug_assert!(a <= b, "catalog ranges are ordered");
            debug_assert!(b as usize <= tree.catalog(node).len());
            ReportRange {
                node_idx: node.0,
                start: a,
                count: b - a,
            }
        }));
        if direct {
            charge_direct(pram, path.len(), list.total);
        } else {
            charge_indirect(pram, path.len());
        }
        list
    }

    /// Materialise the reported segment ids from a range list.
    pub fn collect_ids(&self, list: &RangeList) -> Vec<u32> {
        let mut out = Vec::with_capacity(list.total as usize);
        for r in &list.ranges {
            let ids = &self.ids[r.node_idx as usize];
            out.extend_from_slice(&ids[r.start as usize..(r.start + r.count) as usize]);
        }
        out.sort_unstable();
        out
    }

    /// Brute-force ground truth.
    pub fn query_brute(&self, q: HQuery) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.x >= q.x_lo && s.x <= q.x_hi && s.y_lo <= q.y && q.y <= s.y_hi)
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total catalog entries (`O(n log n)`, each segment in `O(log n)`
    /// nodes).
    pub fn catalog_size(&self) -> usize {
        self.st.tree().total_catalog_size()
    }
}

/// Standard segment-tree insertion of slab range `[lo, hi]` under `node`
/// covering `[node_lo, node_lo + width)`.
fn insert(
    alloc: &mut [Vec<u32>],
    node: usize,
    node_lo: usize,
    width: usize,
    lo: usize,
    hi: usize,
    id: u32,
) {
    let node_hi = node_lo + width - 1;
    if hi < node_lo || lo > node_hi {
        return;
    }
    if lo <= node_lo && node_hi <= hi {
        alloc[node].push(id);
        return;
    }
    let half = width / 2;
    insert(alloc, 2 * node + 1, node_lo, half, lo, hi, id);
    insert(alloc, 2 * node + 2, node_lo + half, half, lo, hi, id);
}

/// Random segment workload: distinct x, y-extents drawn over a `range`
/// sized domain.
pub fn random_segments(n: usize, range: i64, rng: &mut impl Rng) -> Vec<VSegment> {
    let xs = fc_catalog::gen::distinct_sorted_keys(n, range.max(n as i64 * 4), rng);
    xs.into_iter()
        .map(|x| {
            let a = rng.gen_range(0..range);
            let b = rng.gen_range(0..range);
            VSegment {
                x,
                y_lo: a.min(b),
                y_hi: a.max(b),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_pram::Model;
    use rand::rngs::SmallRng;

    fn build(n: usize, seed: u64) -> SegmentIntersection {
        let mut rng = SmallRng::seed_from_u64(seed);
        let segs = random_segments(n, 1000, &mut rng);
        SegmentIntersection::build(segs, ParamMode::Auto)
    }

    #[test]
    fn coop_query_matches_brute_force() {
        let s = build(500, 301);
        let mut rng = SmallRng::seed_from_u64(302);
        for p in [1usize, 64, 1 << 14] {
            for _ in 0..60 {
                let a = rng.gen_range(-10..5000);
                let b = rng.gen_range(-10..5000);
                let q = HQuery {
                    y: rng.gen_range(-10..1010),
                    x_lo: a.min(b),
                    x_hi: a.max(b),
                };
                let mut pram = Pram::new(p, Model::Crew);
                let list = s.query_coop(q, true, &mut pram);
                assert_eq!(s.collect_ids(&list), s.query_brute(q), "p {p} q {q:?}");
            }
        }
    }

    #[test]
    fn endpoint_queries_are_inclusive() {
        let s = SegmentIntersection::build(
            vec![
                VSegment {
                    x: 10,
                    y_lo: 0,
                    y_hi: 5,
                },
                VSegment {
                    x: 20,
                    y_lo: 5,
                    y_hi: 9,
                },
                VSegment {
                    x: 30,
                    y_lo: 6,
                    y_hi: 8,
                },
            ],
            ParamMode::Auto,
        );
        let mut pram = Pram::new(4, Model::Crew);
        // y = 5 touches the first two segments.
        let list = s.query_coop(
            HQuery {
                y: 5,
                x_lo: 0,
                x_hi: 100,
            },
            true,
            &mut pram,
        );
        assert_eq!(s.collect_ids(&list), vec![0, 1]);
        // x-range boundary inclusivity.
        let list = s.query_coop(
            HQuery {
                y: 5,
                x_lo: 10,
                x_hi: 20,
            },
            true,
            &mut pram,
        );
        assert_eq!(s.collect_ids(&list), vec![0, 1]);
        let list = s.query_coop(
            HQuery {
                y: 5,
                x_lo: 11,
                x_hi: 19,
            },
            true,
            &mut pram,
        );
        assert!(s.collect_ids(&list).is_empty());
    }

    #[test]
    fn catalog_size_is_n_log_n() {
        let s = build(2000, 303);
        let n = 2000f64;
        let bound = (n * n.log2() * 2.5) as usize;
        assert!(
            s.catalog_size() <= bound,
            "catalog {} vs n log n bound {bound}",
            s.catalog_size()
        );
        assert!(s.catalog_size() >= 2000, "every segment stored somewhere");
    }

    #[test]
    fn indirect_is_cheaper_than_direct_for_large_k() {
        let s = build(3000, 307);
        let q = HQuery {
            y: 500,
            x_lo: i64::MIN / 2,
            x_hi: i64::MAX / 2,
        };
        let mut d = Pram::new(64, Model::Crew);
        let dl = s.query_coop(q, true, &mut d);
        let mut i = Pram::new(64, Model::Crcw);
        let il = s.query_coop(q, false, &mut i);
        assert_eq!(dl.total, il.total);
        assert!(dl.total > 100, "query must report many items");
        assert!(
            i.steps() < d.steps(),
            "indirect {} direct {}",
            i.steps(),
            d.steps()
        );
    }

    #[test]
    fn empty_result_queries() {
        let s = build(200, 311);
        let mut pram = Pram::new(64, Model::Crew);
        let list = s.query_coop(
            HQuery {
                y: -1000,
                x_lo: 0,
                x_hi: 10,
            },
            true,
            &mut pram,
        );
        assert_eq!(list.total, 0);
        assert!(list.ranges.is_empty());
    }

    #[test]
    fn steps_shrink_with_processors() {
        let s = build(20_000, 313);
        let mut rng = SmallRng::seed_from_u64(314);
        let mut steps = Vec::new();
        for p in [1usize, 1 << 30] {
            let mut total = 0u64;
            let mut rng2 = SmallRng::seed_from_u64(rng.gen());
            for _ in 0..20 {
                let q = HQuery {
                    y: rng2.gen_range(0..1000),
                    x_lo: 100,
                    x_hi: 120, // narrow: tiny k, search dominates
                };
                let mut pram = Pram::new(p, Model::Crew);
                s.query_coop(q, false, &mut pram);
                total += pram.steps();
            }
            steps.push(total);
        }
        assert!(steps[1] < steps[0], "steps {steps:?}");
    }
}
