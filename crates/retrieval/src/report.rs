//! Direct and indirect retrieval (the two reporting models of Theorem 6).
//!
//! After the cooperative searches have identified, at each node of the
//! search path, a contiguous catalog range of items to report, the two
//! models differ in how the output is materialised:
//!
//! * **direct** — every reported item is marked/collected by its own
//!   processor. Allocating processors to ranges of unequal sizes needs an
//!   exclusive prefix sum over the per-node counts — `O(log log n)` time
//!   with enough CREW processors — after which the `k` items cost
//!   `ceil(k/p)` steps.
//! * **indirect** — the answer is a linked list of the non-empty ranges.
//!   With `p = Ω(log² n)` processors a CRCW PRAM links out the empty
//!   ranges in `O(1)`; otherwise a prefix computation in
//!   `O((log n)/log p)` does it.

use fc_pram::cost::{Model, Pram};

/// A reported catalog range: `count` items starting at `start` in the
/// catalog of search-path node `node_idx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportRange {
    /// Arena index of the tree node owning the catalog.
    pub node_idx: u32,
    /// First reported catalog position.
    pub start: u32,
    /// Number of reported items.
    pub count: u32,
}

/// The indirect-retrieval answer: the linked list of non-empty ranges
/// (materialised as a vector; the PRAM cost of the linking is charged
/// separately by [`charge_indirect`]).
#[derive(Debug, Clone, Default)]
pub struct RangeList {
    /// Non-empty ranges in path order.
    pub ranges: Vec<ReportRange>,
    /// Total number of items (`k`).
    pub total: u64,
}

impl RangeList {
    /// Build the list from per-node ranges, dropping empties.
    pub fn from_ranges(iter: impl IntoIterator<Item = ReportRange>) -> Self {
        let mut ranges = Vec::new();
        let mut total = 0u64;
        for r in iter {
            if r.count > 0 {
                total += r.count as u64;
                ranges.push(r);
            }
        }
        RangeList { ranges, total }
    }
}

/// A reported range tagged with the shard it came from — the unit of the
/// scatter/gather merge (`fc-shard` splits a range query into per-shard
/// sub-queries; each shard answers with a [`RangeList`] over *its own*
/// structure, so the shard id is needed to dereference `node_idx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// The shard whose structure `range` indexes into.
    pub shard: u32,
    /// The reported catalog range within that shard.
    pub range: ReportRange,
}

/// The gathered cluster-level answer to a scattered range query: every
/// shard's non-empty ranges, in ascending shard order (which is ascending
/// key order, since shards partition the key universe contiguously).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergedReport {
    /// Non-empty ranges in (shard, path) order.
    pub ranges: Vec<ShardRange>,
    /// Total reported items across all shards (`k`).
    pub total: u64,
    /// How many shard partials were merged (including empty ones).
    pub parts: usize,
}

/// Merge per-shard partial results into one cluster-level report.
///
/// `parts` are `(shard, partial)` pairs; they are sorted by shard id so
/// the merged range list is in global key order regardless of gather
/// completion order. Empty partials still count toward
/// [`MergedReport::parts`] (a shard that answered "nothing in range" is a
/// completed leg, distinct from a shard that was never asked).
pub fn merge_shard_reports(parts: impl IntoIterator<Item = (u32, RangeList)>) -> MergedReport {
    let mut collected: Vec<(u32, RangeList)> = parts.into_iter().collect();
    collected.sort_by_key(|&(shard, _)| shard);
    let mut out = MergedReport {
        parts: collected.len(),
        ..MergedReport::default()
    };
    for (shard, list) in collected {
        out.total += list.total;
        out.ranges.extend(
            list.ranges
                .into_iter()
                .map(|range| ShardRange { shard, range }),
        );
    }
    out
}

/// Charge the direct-retrieval cost for reporting `k` items spread over
/// `path_len` ranges: the prefix sum over the counts plus `ceil(k/p)`
/// marking steps. Matches Theorem 6 part 1:
/// `O((log n)/log p + log log n + k/p)`.
pub fn charge_direct(pram: &mut Pram, path_len: usize, k: u64) {
    // Prefix sum over path_len counts: doubly-logarithmic with enough
    // processors (accelerated valiant-style prefix); log-depth otherwise.
    let p = pram.processors();
    let lg = (usize::BITS - path_len.max(1).leading_zeros()) as usize;
    let lglg = (usize::BITS - lg.max(1).leading_zeros()) as usize;
    if p >= path_len {
        for _ in 0..lglg.max(1) {
            pram.round(path_len);
        }
    } else {
        let (_, _) = fc_pram::primitives::prefix_sum_cost(&vec![1u64; path_len], pram);
    }
    // One processor per reported item.
    let mut remaining = k;
    while remaining > 0 {
        let batch = remaining.min(p as u64);
        pram.round(batch as usize);
        remaining -= batch;
    }
}

/// Charge the indirect-retrieval cost for linking `path_len` ranges:
/// `O(1)` with a CRCW PRAM and `p = Ω(log² n)` processors, a prefix
/// computation otherwise. Matches Theorem 6 part 2: `O((log n)/log p)`.
pub fn charge_indirect(pram: &mut Pram, path_len: usize) {
    let p = pram.processors();
    if pram.model() == Model::Crcw && p >= path_len * path_len {
        // Every range writes its successor candidates concurrently.
        pram.round(path_len * path_len);
    } else {
        let (_, _) = fc_pram::primitives::prefix_sum_cost(&vec![1u64; path_len], pram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_list_drops_empties_and_totals() {
        let list = RangeList::from_ranges([
            ReportRange {
                node_idx: 0,
                start: 2,
                count: 3,
            },
            ReportRange {
                node_idx: 1,
                start: 0,
                count: 0,
            },
            ReportRange {
                node_idx: 2,
                start: 5,
                count: 7,
            },
        ]);
        assert_eq!(list.ranges.len(), 2);
        assert_eq!(list.total, 10);
    }

    #[test]
    fn shard_merge_orders_by_shard_and_sums_totals() {
        let part = |node_idx, count| RangeList {
            ranges: vec![ReportRange {
                node_idx,
                start: 0,
                count,
            }],
            total: count as u64,
        };
        // Gather completion order is arbitrary — merge must re-sort.
        let merged =
            merge_shard_reports([(2, part(7, 4)), (0, part(3, 5)), (1, RangeList::default())]);
        assert_eq!(merged.parts, 3, "empty partials still count as legs");
        assert_eq!(merged.total, 9);
        let order: Vec<u32> = merged.ranges.iter().map(|sr| sr.shard).collect();
        assert_eq!(order, vec![0, 2], "global key order = ascending shard");
        assert_eq!(merged.ranges[0].range.node_idx, 3);
    }

    #[test]
    fn direct_cost_has_k_over_p_term() {
        let mut small_p = Pram::new(4, Model::Crew);
        charge_direct(&mut small_p, 16, 1000);
        let mut big_p = Pram::new(1024, Model::Crew);
        charge_direct(&mut big_p, 16, 1000);
        assert!(big_p.steps() * 8 < small_p.steps());
    }

    #[test]
    fn direct_cost_zero_items_is_cheap() {
        let mut pram = Pram::new(64, Model::Crew);
        charge_direct(&mut pram, 16, 0);
        assert!(pram.steps() <= 8);
    }

    #[test]
    fn indirect_is_constant_on_big_crcw() {
        let mut crcw = Pram::new(1 << 16, Model::Crcw);
        charge_indirect(&mut crcw, 20);
        assert_eq!(crcw.steps(), 1);
        let mut crew = Pram::new(1 << 16, Model::Crew);
        charge_indirect(&mut crew, 20);
        assert!(crew.steps() >= 1);
    }
}
