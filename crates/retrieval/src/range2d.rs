//! Orthogonal range search in the plane (Theorem 6).
//!
//! A range tree: a complete binary tree over the points sorted by `x`,
//! each node's catalog holding the y-coordinates of the points below it in
//! sorted order (total `O(n log n)`). A query `[x1, x2] × [y1, y2]`
//! decomposes `[x1, x2]` into `O(log n)` canonical subtrees hanging off the
//! two boundary root-to-leaf paths; cooperative searches for `y1` and
//! `y2` along those paths (Theorem 1) position the query in every path
//! catalog, and one bridge step per canonical child yields its contiguous
//! report range.

use crate::report::{charge_direct, charge_indirect, RangeList, ReportRange};
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::explicit::coop_search_explicit;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::cost::Pram;
use rand::prelude::*;

/// An axis-parallel query rectangle (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct Rect {
    /// Left x bound.
    pub x1: i64,
    /// Right x bound.
    pub x2: i64,
    /// Bottom y bound.
    pub y1: i64,
    /// Top y bound.
    pub y2: i64,
}

/// The preprocessed 2D range tree.
pub struct RangeTree2D {
    /// The points, by id.
    pub points: Vec<(i64, i64)>,
    /// Cooperative structure over the x-tree with y-catalogs.
    pub st: CoopStructure<i64>,
    /// Point ids per node, aligned with the y-sorted catalogs.
    pub ids: Vec<Vec<u32>>,
    /// Point x-coordinates in leaf order.
    xs_sorted: Vec<i64>,
    /// Number of leaves (power of two).
    leaves: usize,
}

impl RangeTree2D {
    /// Build the range tree.
    ///
    /// # Panics
    /// Panics if the points are empty or share x- or y-coordinates
    /// (general position, as usual for range trees with catalogs).
    pub fn build(points: Vec<(i64, i64)>, mode: ParamMode) -> Self {
        assert!(!points.is_empty());
        // Keep ids stable under the x-sort.
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        order.sort_by_key(|&i| points[i as usize].0);
        let by_x: Vec<(i64, i64)> = order.iter().map(|&i| points[i as usize]).collect();
        assert!(
            by_x.windows(2).all(|w| w[0].0 < w[1].0),
            "x-coordinates must be distinct"
        );

        let leaves = points.len().next_power_of_two();
        let internal = leaves - 1;
        let total = internal + leaves;
        let mut catalogs: Vec<Vec<i64>> = vec![Vec::new(); total];
        let mut ids: Vec<Vec<u32>> = vec![Vec::new(); total];
        // Leaves first, then merge upward.
        for (li, (&id, pt)) in order.iter().zip(&by_x).enumerate() {
            catalogs[internal + li] = vec![pt.1];
            ids[internal + li] = vec![id];
        }
        for i in (0..internal).rev() {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut merged: Vec<(i64, u32)> = catalogs[l]
                .iter()
                .zip(&ids[l])
                .chain(catalogs[r].iter().zip(&ids[r]))
                .map(|(&y, &id)| (y, id))
                .collect();
            merged.sort_unstable();
            assert!(
                merged.windows(2).all(|w| w[0].0 < w[1].0),
                "y-coordinates must be distinct"
            );
            catalogs[i] = merged.iter().map(|&(y, _)| y).collect();
            ids[i] = merged.iter().map(|&(_, id)| id).collect();
        }
        let parents: Vec<Option<u32>> = (0..total)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some(((i - 1) / 2) as u32)
                }
            })
            .collect();
        let xs_sorted = by_x.iter().map(|&(x, _)| x).collect();
        let tree = CatalogTree::from_parents(parents, catalogs);
        let st = CoopStructure::preprocess(tree, mode);
        // Restore id-ordered points.
        let mut pts = vec![(0i64, 0i64); order.len()];
        for (&id, &pt) in order.iter().zip(&by_x) {
            pts[id as usize] = pt;
        }
        RangeTree2D {
            points: pts,
            st,
            ids,
            xs_sorted,
            leaves,
        }
    }

    /// Root-to-leaf path to leaf slot `li`.
    fn path_to_leaf(&self, li: usize) -> Vec<NodeId> {
        let mut idx = li + self.leaves - 1;
        let mut path = vec![NodeId(idx as u32)];
        while idx > 0 {
            idx = (idx - 1) / 2;
            path.push(NodeId(idx as u32));
        }
        path.reverse();
        path
    }

    /// Canonical decomposition of leaf range `[a, b]` (inclusive): node
    /// arena indices whose subtrees exactly tile the range.
    fn canonical(&self, a: usize, b: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.canon_rec(0, 0, self.leaves, a, b, &mut out);
        out
    }

    fn canon_rec(
        &self,
        node: usize,
        lo: usize,
        width: usize,
        a: usize,
        b: usize,
        out: &mut Vec<usize>,
    ) {
        let hi = lo + width - 1;
        if b < lo || a > hi {
            return;
        }
        if a <= lo && hi <= b {
            out.push(node);
            return;
        }
        let half = width / 2;
        self.canon_rec(2 * node + 1, lo, half, a, b, out);
        self.canon_rec(2 * node + 2, lo + half, half, a, b, out);
    }

    /// Cooperative range query. Returns the report ranges (over the
    /// canonical nodes' catalogs) with Theorem 6 cost accounting.
    pub fn query_coop(&self, r: Rect, direct: bool, pram: &mut Pram) -> RangeList {
        // Leaf range of [x1, x2].
        let a = self.xs_sorted.partition_point(|&x| x < r.x1);
        let b = self.xs_sorted.partition_point(|&x| x <= r.x2);
        if a >= b {
            return RangeList::default();
        }
        let (a, b) = (a, b - 1);
        // Boundary paths + cooperative y-searches along them.
        let path_a = self.path_to_leaf(a);
        let path_b = self.path_to_leaf(b);
        let hi_key = r.y2.saturating_add(1);
        let lo_a = coop_search_explicit(&self.st, &path_a, r.y1, pram);
        let hi_a = coop_search_explicit(&self.st, &path_a, hi_key, pram);
        let (lo_b, hi_b) = if a == b {
            (None, None)
        } else {
            (
                Some(coop_search_explicit(&self.st, &path_b, r.y1, pram)),
                Some(coop_search_explicit(&self.st, &path_b, hi_key, pram)),
            )
        };

        // Position lookup: node arena idx -> position on a path.
        let pos_on = |path: &[NodeId], idx: usize| path.iter().position(|n| n.idx() == idx);
        let fc = self.st.cascade();
        let tree = self.st.tree();

        let canon = self.canonical(a, b);
        // All canonical nodes resolve in one parallel round: each is either
        // on a boundary path (answer already known) or the child of a path
        // node (one bridge step from the path's augmented position).
        let mut ranges = Vec::with_capacity(canon.len());
        let mut round_ops = 0usize;
        for c in canon {
            let (lo_native, hi_native) = if let Some(p) = pos_on(&path_a, c) {
                (lo_a.finds[p].native_idx, hi_a.finds[p].native_idx)
            } else if let (Some(p), Some(lo_b), Some(hi_b)) =
                (pos_on(&path_b, c), lo_b.as_ref(), hi_b.as_ref())
            {
                (lo_b.finds[p].native_idx, hi_b.finds[p].native_idx)
            } else {
                // Child of a path node: one bridge step per key.
                let parent = (c - 1) / 2;
                let slot = if 2 * parent + 1 == c { 0 } else { 1 };
                let (pp, lo_res, hi_res) = if let Some(p) = pos_on(&path_a, parent) {
                    (p, &lo_a, &hi_a)
                } else {
                    let p = pos_on(&path_b, parent).expect("canonical child off both paths");
                    (p, lo_b.as_ref().unwrap(), hi_b.as_ref().unwrap())
                };
                let parent_node = NodeId(parent as u32);
                let (lo_aug, w1) = fc.descend(parent_node, slot, lo_res.augs[pp], r.y1);
                let (hi_aug, w2) = fc.descend(parent_node, slot, hi_res.augs[pp], hi_key);
                round_ops += 2 + w1 + w2;
                let child = tree.children(parent_node)[slot];
                (
                    fc.native_result(child, lo_aug).native_idx,
                    fc.native_result(child, hi_aug).native_idx,
                )
            };
            debug_assert!(lo_native <= hi_native);
            ranges.push(ReportRange {
                node_idx: c as u32,
                start: lo_native,
                count: hi_native - lo_native,
            });
        }
        pram.round(round_ops);
        let list = RangeList::from_ranges(ranges);
        if direct {
            charge_direct(pram, path_a.len() * 2, list.total);
        } else {
            charge_indirect(pram, path_a.len() * 2);
        }
        list
    }

    /// Materialise reported point ids.
    pub fn collect_ids(&self, list: &RangeList) -> Vec<u32> {
        let mut out = Vec::with_capacity(list.total as usize);
        for r in &list.ranges {
            let ids = &self.ids[r.node_idx as usize];
            out.extend_from_slice(&ids[r.start as usize..(r.start + r.count) as usize]);
        }
        out.sort_unstable();
        out
    }

    /// Brute-force ground truth.
    pub fn query_brute(&self, r: Rect) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| x >= r.x1 && x <= r.x2 && y >= r.y1 && y <= r.y2)
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }
}

/// Random points with distinct x and distinct y coordinates.
pub fn random_points(n: usize, range: i64, rng: &mut impl Rng) -> Vec<(i64, i64)> {
    let xs = fc_catalog::gen::distinct_sorted_keys(n, range.max(4 * n as i64), rng);
    let mut ys = fc_catalog::gen::distinct_sorted_keys(n, range.max(4 * n as i64), rng);
    // Shuffle y against x so the point set is not a monotone staircase.
    for i in (1..ys.len()).rev() {
        ys.swap(i, rng.gen_range(0..=i));
    }
    xs.into_iter().zip(ys).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_pram::Model;
    use rand::rngs::SmallRng;

    fn build(n: usize, seed: u64) -> RangeTree2D {
        let mut rng = SmallRng::seed_from_u64(seed);
        RangeTree2D::build(random_points(n, 100_000, &mut rng), ParamMode::Auto)
    }

    fn rand_rect(rng: &mut SmallRng) -> Rect {
        let (a, b) = (rng.gen_range(-10..100_010), rng.gen_range(-10..100_010));
        let (c, d) = (rng.gen_range(-10..100_010), rng.gen_range(-10..100_010));
        Rect {
            x1: a.min(b),
            x2: a.max(b),
            y1: c.min(d),
            y2: c.max(d),
        }
    }

    #[test]
    fn coop_query_matches_brute_force() {
        let t = build(600, 401);
        let mut rng = SmallRng::seed_from_u64(402);
        for p in [1usize, 64, 1 << 16] {
            for _ in 0..50 {
                let r = rand_rect(&mut rng);
                let mut pram = Pram::new(p, Model::Crew);
                let list = t.query_coop(r, true, &mut pram);
                assert_eq!(t.collect_ids(&list), t.query_brute(r), "p {p} r {r:?}");
            }
        }
    }

    #[test]
    fn degenerate_and_empty_rectangles() {
        let t = build(100, 403);
        let mut pram = Pram::new(64, Model::Crew);
        // Empty x-range.
        let empty = t.query_coop(
            Rect {
                x1: 10,
                x2: 9,
                y1: 0,
                y2: 100_000,
            },
            true,
            &mut pram,
        );
        assert_eq!(empty.total, 0);
        // Single point: query exactly its coordinates.
        let (x, y) = t.points[0];
        let hit = t.query_coop(
            Rect {
                x1: x,
                x2: x,
                y1: y,
                y2: y,
            },
            true,
            &mut pram,
        );
        assert_eq!(t.collect_ids(&hit), vec![0]);
    }

    #[test]
    fn full_domain_reports_everything() {
        let t = build(257, 405); // non-power-of-two: padding leaves exist
        let mut pram = Pram::new(256, Model::Crew);
        let all = t.query_coop(
            Rect {
                x1: i64::MIN / 2,
                x2: i64::MAX / 2,
                y1: i64::MIN / 2,
                y2: i64::MAX / 2,
            },
            true,
            &mut pram,
        );
        assert_eq!(all.total, 257);
        assert_eq!(t.collect_ids(&all), (0..257).collect::<Vec<u32>>());
    }

    #[test]
    fn catalog_space_is_n_log_n() {
        let t = build(2048, 407);
        let n = 2048usize;
        let total = t.st.tree().total_catalog_size();
        // Exactly n per level of a complete tree: n * (log n + 1).
        assert_eq!(total, n * (n.ilog2() as usize + 1));
    }

    #[test]
    fn indirect_mode_matches_direct_counts() {
        let t = build(500, 409);
        let mut rng = SmallRng::seed_from_u64(410);
        for _ in 0..20 {
            let r = rand_rect(&mut rng);
            let mut pd = Pram::new(128, Model::Crew);
            let d = t.query_coop(r, true, &mut pd);
            let mut pi = Pram::new(128, Model::Crcw);
            let i = t.query_coop(r, false, &mut pi);
            assert_eq!(d.total, i.total);
        }
    }
}
