//! Generic `d`-dimensional orthogonal range search (Corollary 2).
//!
//! The corollary's structure, for any constant `d >= 1`: a balanced tree
//! over the first coordinate whose every node owns a `(d−1)`-dimensional
//! structure for its subtree's points; the base case is a sorted catalog.
//! Space `O(n log^(d−1) n)`; cooperative retrieval in
//! `O(((log n)/log p)^(d−1))` phases by splitting the processors among the
//! canonical subproblems at each level of the recursion.
//!
//! [`crate::range3d`] is the `d = 3` instantiation fused with the
//! fractionally-cascaded 2D structure; this module is the clean recursion
//! for arbitrary `d` (tested to `d = 4`), trading the last log factor for
//! generality, exactly as the corollary's proof sketch does.

use fc_pram::cost::Pram;
use fc_pram::primitives::coop_lower_bound;
use rand::prelude::*;

/// A `d`-dimensional range tree over points with `i64` coordinates.
pub enum RangeTreeD {
    /// Base case: points sorted by their (single remaining) coordinate.
    Catalog {
        /// Sorted coordinate values.
        keys: Vec<i64>,
        /// Point ids aligned with `keys`.
        ids: Vec<u32>,
    },
    /// Recursive case: a complete binary tree over the first coordinate.
    Tree {
        /// Points' first coordinates in leaf order.
        xs: Vec<i64>,
        /// Leaf count (power of two).
        leaves: usize,
        /// Per tree node (BFS order, `2*leaves - 1` entries): the
        /// `(d−1)`-dimensional structure over the points below, or `None`
        /// for empty padding nodes.
        inner: Vec<Option<Box<RangeTreeD>>>,
    },
}

impl RangeTreeD {
    /// Build over `points` (each of dimension `d = points[0].len()`, all
    /// equal). Ids are the positions in `points`. Coordinates must be
    /// pairwise distinct within every dimension (general position).
    pub fn build(points: &[Vec<i64>]) -> Self {
        assert!(!points.is_empty());
        let d = points[0].len();
        assert!(d >= 1);
        assert!(points.iter().all(|p| p.len() == d));
        let ids: Vec<u32> = (0..points.len() as u32).collect();
        Self::build_rec(points, &ids, 0)
    }

    fn build_rec(points: &[Vec<i64>], ids: &[u32], dim: usize) -> Self {
        let d = points[0].len();
        if dim + 1 == d {
            // Base: sorted catalog on the last coordinate.
            let mut pairs: Vec<(i64, u32)> = ids
                .iter()
                .map(|&id| (points[id as usize][dim], id))
                .collect();
            pairs.sort_unstable();
            assert!(
                pairs.windows(2).all(|w| w[0].0 < w[1].0),
                "coordinates must be distinct per dimension"
            );
            return RangeTreeD::Catalog {
                keys: pairs.iter().map(|&(k, _)| k).collect(),
                ids: pairs.iter().map(|&(_, id)| id).collect(),
            };
        }
        // Sort this level's ids by the current coordinate.
        let mut order: Vec<u32> = ids.to_vec();
        order.sort_by_key(|&id| points[id as usize][dim]);
        let leaves = order.len().next_power_of_two();
        let total = 2 * leaves - 1;
        // Ids under each node.
        let mut under: Vec<Vec<u32>> = vec![Vec::new(); total];
        for (li, &id) in order.iter().enumerate() {
            under[leaves - 1 + li] = vec![id];
        }
        for i in (0..leaves - 1).rev() {
            let mut v = under[2 * i + 1].clone();
            v.extend_from_slice(&under[2 * i + 2]);
            v.sort_by_key(|&id| points[id as usize][dim]);
            under[i] = v;
        }
        let inner = under
            .iter()
            .map(|sub_ids| {
                if sub_ids.is_empty() {
                    None
                } else {
                    Some(Box::new(Self::build_rec(points, sub_ids, dim + 1)))
                }
            })
            .collect();
        RangeTreeD::Tree {
            xs: order.iter().map(|&id| points[id as usize][dim]).collect(),
            leaves,
            inner,
        }
    }

    /// Total stored coordinates (`O(n log^(d−1) n)`).
    pub fn space(&self) -> usize {
        match self {
            RangeTreeD::Catalog { keys, .. } => keys.len(),
            RangeTreeD::Tree { inner, .. } => inner.iter().flatten().map(|t| t.space()).sum(),
        }
    }

    /// Cooperative query: report ids of points inside the box
    /// (`bounds[k] = (lo, hi)` inclusive per dimension). Processors split
    /// among the canonical subproblems at every recursion level.
    pub fn query(&self, bounds: &[(i64, i64)], pram: &mut Pram) -> Vec<u32> {
        let mut out = self.query_rec(bounds, pram);
        out.sort_unstable();
        out
    }

    fn query_rec(&self, bounds: &[(i64, i64)], pram: &mut Pram) -> Vec<u32> {
        match self {
            RangeTreeD::Catalog { keys, ids } => {
                let (lo, hi) = bounds[0];
                // Cooperative binary searches for the two ends.
                let a = coop_lower_bound(keys, &lo, pram);
                let b = coop_lower_bound(keys, &hi.saturating_add(1), pram);
                pram.round(b.saturating_sub(a)); // report
                ids[a..b].to_vec()
            }
            RangeTreeD::Tree { xs, leaves, inner } => {
                let (lo, hi) = bounds[0];
                let a = xs.partition_point(|&x| x < lo);
                let b = xs.partition_point(|&x| x <= hi);
                if a >= b {
                    return Vec::new();
                }
                let canon = canonical(*leaves, a, b - 1);
                pram.round(2 * (usize::BITS - leaves.leading_zeros()) as usize);
                let p_inner = (pram.processors() / canon.len().max(1)).max(1);
                let mut out = Vec::new();
                let mut branches = Vec::with_capacity(canon.len());
                for c in canon {
                    if let Some(t) = &inner[c] {
                        let mut bp = pram.with_processors(p_inner);
                        out.extend(t.query_rec(&bounds[1..], &mut bp));
                        branches.push(bp);
                    }
                }
                pram.join_max(branches);
                out
            }
        }
    }
}

fn canonical(leaves: usize, a: usize, b: usize) -> Vec<usize> {
    fn rec(node: usize, lo: usize, width: usize, a: usize, b: usize, out: &mut Vec<usize>) {
        let hi = lo + width - 1;
        if b < lo || a > hi {
            return;
        }
        if a <= lo && hi <= b {
            out.push(node);
            return;
        }
        let half = width / 2;
        rec(2 * node + 1, lo, half, a, b, out);
        rec(2 * node + 2, lo + half, half, a, b, out);
    }
    let mut out = Vec::new();
    rec(0, 0, leaves, a, b, &mut out);
    out
}

/// Brute-force ground truth.
pub fn brute(points: &[Vec<i64>], bounds: &[(i64, i64)]) -> Vec<u32> {
    let mut out: Vec<u32> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.iter()
                .zip(bounds)
                .all(|(&c, &(lo, hi))| c >= lo && c <= hi)
        })
        .map(|(i, _)| i as u32)
        .collect();
    out.sort_unstable();
    out
}

/// Random points in general position (distinct per dimension).
pub fn random_points_d(n: usize, d: usize, range: i64, rng: &mut impl Rng) -> Vec<Vec<i64>> {
    let mut cols: Vec<Vec<i64>> = (0..d)
        .map(|_| fc_catalog::gen::distinct_sorted_keys(n, range.max(4 * n as i64), rng))
        .collect();
    for col in cols.iter_mut().skip(1) {
        for i in (1..col.len()).rev() {
            col.swap(i, rng.gen_range(0..=i));
        }
    }
    (0..n)
        .map(|i| cols.iter().map(|c| c[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_pram::Model;
    use rand::rngs::SmallRng;

    fn rand_bounds(rng: &mut SmallRng, d: usize, range: i64) -> Vec<(i64, i64)> {
        (0..d)
            .map(|_| {
                let (a, b) = (rng.gen_range(-5..range + 5), rng.gen_range(-5..range + 5));
                (a.min(b), a.max(b))
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_for_d_1_through_4() {
        let mut rng = SmallRng::seed_from_u64(651);
        for d in 1..=4usize {
            let n = 200;
            let pts = random_points_d(n, d, 3000, &mut rng);
            let t = RangeTreeD::build(&pts);
            for p in [1usize, 256, 1 << 16] {
                for _ in 0..25 {
                    let b = rand_bounds(&mut rng, d, 3000);
                    let mut pram = Pram::new(p, Model::Crew);
                    assert_eq!(t.query(&b, &mut pram), brute(&pts, &b), "d {d} p {p}");
                }
            }
        }
    }

    #[test]
    fn space_grows_one_log_per_dimension() {
        let mut rng = SmallRng::seed_from_u64(653);
        let n = 512usize;
        let lg = n.ilog2() as usize + 1;
        let mut prev = 0usize;
        for d in 1..=4usize {
            let pts = random_points_d(n, d, 1 << 20, &mut rng);
            let t = RangeTreeD::build(&pts);
            let space = t.space();
            assert!(
                space <= n * lg.pow(d as u32 - 1),
                "d {d}: space {space} exceeds n log^(d-1) n"
            );
            assert!(space >= prev, "space must grow with d");
            prev = space;
        }
    }

    #[test]
    fn processor_splitting_cuts_steps_at_higher_d() {
        let mut rng = SmallRng::seed_from_u64(657);
        let pts = random_points_d(512, 3, 1 << 18, &mut rng);
        let t = RangeTreeD::build(&pts);
        let b = rand_bounds(&mut rng, 3, 1 << 18);
        let mut p1 = Pram::new(1, Model::Crew);
        t.query(&b, &mut p1);
        let mut pbig = Pram::new(1 << 24, Model::Crew);
        t.query(&b, &mut pbig);
        assert!(pbig.steps() < p1.steps());
    }

    #[test]
    fn degenerate_boxes() {
        let mut rng = SmallRng::seed_from_u64(659);
        let pts = random_points_d(64, 2, 1000, &mut rng);
        let t = RangeTreeD::build(&pts);
        let mut pram = Pram::new(64, Model::Crew);
        // Exact-point box.
        let p0 = &pts[0];
        let b: Vec<(i64, i64)> = p0.iter().map(|&c| (c, c)).collect();
        assert_eq!(t.query(&b, &mut pram), vec![0]);
        // Inverted (empty) box.
        let b = vec![(5i64, 4i64), (0, 1000)];
        assert!(t.query(&b, &mut pram).is_empty());
    }
}
