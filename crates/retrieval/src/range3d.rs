//! Three-dimensional orthogonal range search (Corollary 2, d = 3).
//!
//! A balanced tree over the points sorted by the first coordinate; each
//! node points to a (d−1)-dimensional structure — here a full
//! [`RangeTree2D`] — over its subtree's points projected along x. Space
//! `O(n log² n)`.
//!
//! The cooperative retrieval follows the corollary's recursion: the query
//! jumps `Θ(log p)` levels of the x-tree per phase, concurrently solving
//! the canonical nodes' 2D subproblems with split processors, giving
//! `O(((log n)/log p)^(d−1))` for indirect retrieval.

use crate::range2d::{RangeTree2D, Rect};
use crate::report::charge_direct;
use fc_coop::ParamMode;
use fc_pram::cost::Pram;
use rand::prelude::*;

/// An axis-parallel box query (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct Box3 {
    /// x bounds.
    pub x: (i64, i64),
    /// y bounds.
    pub y: (i64, i64),
    /// z bounds.
    pub z: (i64, i64),
}

/// The preprocessed 3D range tree.
pub struct RangeTree3D {
    /// The points, by id.
    pub points: Vec<(i64, i64, i64)>,
    /// x-coordinates in leaf order.
    xs_sorted: Vec<i64>,
    /// Leaf count (power of two).
    leaves: usize,
    /// Per x-node: the 2D structure over (y, z) and the id map from inner
    /// ids to global ids. Empty padding nodes hold `None`.
    inner: Vec<Option<(RangeTree2D, Vec<u32>)>>,
}

impl RangeTree3D {
    /// Build the tree. Points must have pairwise distinct coordinates in
    /// every dimension (general position).
    pub fn build(points: Vec<(i64, i64, i64)>, mode: ParamMode) -> Self {
        assert!(!points.is_empty());
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        order.sort_by_key(|&i| points[i as usize].0);
        let leaves = points.len().next_power_of_two();
        let total = 2 * leaves - 1;

        // Ids under each node, leaves upward.
        let mut under: Vec<Vec<u32>> = vec![Vec::new(); total];
        for (li, &id) in order.iter().enumerate() {
            under[leaves - 1 + li] = vec![id];
        }
        for i in (0..leaves - 1).rev() {
            let mut v = under[2 * i + 1].clone();
            v.extend_from_slice(&under[2 * i + 2]);
            under[i] = v;
        }
        let inner = under
            .iter()
            .map(|ids| {
                if ids.is_empty() {
                    None
                } else {
                    let pts: Vec<(i64, i64)> = ids
                        .iter()
                        .map(|&id| {
                            let (_, y, z) = points[id as usize];
                            (y, z)
                        })
                        .collect();
                    Some((RangeTree2D::build(pts, mode), ids.clone()))
                }
            })
            .collect();

        let xs_sorted = order.iter().map(|&i| points[i as usize].0).collect();
        RangeTree3D {
            points,
            xs_sorted,
            leaves,
            inner,
        }
    }

    fn canonical(&self, a: usize, b: usize) -> Vec<usize> {
        fn rec(node: usize, lo: usize, width: usize, a: usize, b: usize, out: &mut Vec<usize>) {
            let hi = lo + width - 1;
            if b < lo || a > hi {
                return;
            }
            if a <= lo && hi <= b {
                out.push(node);
                return;
            }
            let half = width / 2;
            rec(2 * node + 1, lo, half, a, b, out);
            rec(2 * node + 2, lo + half, half, a, b, out);
        }
        let mut out = Vec::new();
        rec(0, 0, self.leaves, a, b, &mut out);
        out
    }

    /// Cooperative box query: 2D subqueries at the canonical x-nodes run
    /// concurrently with split processors. Returns sorted global ids.
    pub fn query_coop(&self, q: Box3, pram: &mut Pram) -> Vec<u32> {
        let a = self.xs_sorted.partition_point(|&x| x < q.x.0);
        let b = self.xs_sorted.partition_point(|&x| x <= q.x.1);
        if a >= b {
            return Vec::new();
        }
        let canon = self.canonical(a, b - 1);
        // Identifying the canonical set: O(log n) comparisons, done by
        // log n processors in O(1) rounds on a CREW PRAM.
        pram.round(2 * (usize::BITS - self.leaves.leading_zeros()) as usize);

        let p_inner = (pram.processors() / canon.len().max(1)).max(1);
        let rect = Rect {
            x1: q.y.0,
            x2: q.y.1,
            y1: q.z.0,
            y2: q.z.1,
        };
        let mut out = Vec::new();
        let mut k = 0u64;
        let mut branch_prams = Vec::with_capacity(canon.len());
        for c in canon {
            let Some((t2, ids)) = &self.inner[c] else {
                continue;
            };
            let mut bp = pram.with_processors(p_inner);
            let list = t2.query_coop(rect, false, &mut bp);
            k += list.total;
            for inner_id in t2.collect_ids(&list) {
                out.push(ids[inner_id as usize]);
            }
            branch_prams.push(bp);
        }
        pram.join_max(branch_prams);
        charge_direct(
            pram,
            2 * (usize::BITS - self.leaves.leading_zeros()) as usize,
            k,
        );
        out.sort_unstable();
        out
    }

    /// Brute-force ground truth.
    pub fn query_brute(&self, q: Box3) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, &(x, y, z))| {
                x >= q.x.0 && x <= q.x.1 && y >= q.y.0 && y <= q.y.1 && z >= q.z.0 && z <= q.z.1
            })
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total catalog entries over all inner structures (`O(n log² n)`).
    pub fn total_space(&self) -> usize {
        self.inner
            .iter()
            .flatten()
            .map(|(t, _)| t.st.tree().total_catalog_size())
            .sum()
    }
}

/// Random points with pairwise distinct coordinates per dimension.
pub fn random_points3(n: usize, range: i64, rng: &mut impl Rng) -> Vec<(i64, i64, i64)> {
    let xs = fc_catalog::gen::distinct_sorted_keys(n, range.max(4 * n as i64), rng);
    let mut ys = fc_catalog::gen::distinct_sorted_keys(n, range.max(4 * n as i64), rng);
    let mut zs = fc_catalog::gen::distinct_sorted_keys(n, range.max(4 * n as i64), rng);
    for i in (1..n).rev() {
        ys.swap(i, rng.gen_range(0..=i));
        zs.swap(i, rng.gen_range(0..=i));
    }
    xs.into_iter()
        .zip(ys)
        .zip(zs)
        .map(|((x, y), z)| (x, y, z))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_pram::Model;
    use rand::rngs::SmallRng;

    fn rand_box(rng: &mut SmallRng, range: i64) -> Box3 {
        let mut dim = || {
            let (a, b) = (rng.gen_range(-5..range + 5), rng.gen_range(-5..range + 5));
            (a.min(b), a.max(b))
        };
        Box3 {
            x: dim(),
            y: dim(),
            z: dim(),
        }
    }

    #[test]
    fn coop_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(601);
        let t = RangeTree3D::build(random_points3(300, 5000, &mut rng), ParamMode::Auto);
        for p in [1usize, 256, 1 << 16] {
            for _ in 0..30 {
                let q = rand_box(&mut rng, 5000);
                let mut pram = Pram::new(p, Model::Crew);
                assert_eq!(
                    t.query_coop(q, &mut pram),
                    t.query_brute(q),
                    "p {p} q {q:?}"
                );
            }
        }
    }

    #[test]
    fn full_box_reports_all() {
        let mut rng = SmallRng::seed_from_u64(603);
        let t = RangeTree3D::build(random_points3(100, 5000, &mut rng), ParamMode::Auto);
        let q = Box3 {
            x: (i64::MIN / 2, i64::MAX / 2),
            y: (i64::MIN / 2, i64::MAX / 2),
            z: (i64::MIN / 2, i64::MAX / 2),
        };
        let mut pram = Pram::new(64, Model::Crew);
        assert_eq!(t.query_coop(q, &mut pram).len(), 100);
    }

    #[test]
    fn space_is_n_log_squared() {
        let mut rng = SmallRng::seed_from_u64(607);
        let n = 512usize;
        let t = RangeTree3D::build(random_points3(n, 50_000, &mut rng), ParamMode::Auto);
        let lg = n.ilog2() as usize + 1;
        assert!(
            t.total_space() <= n * lg * lg,
            "space {} vs n log^2 n = {}",
            t.total_space(),
            n * lg * lg
        );
    }

    #[test]
    fn empty_and_point_queries() {
        let mut rng = SmallRng::seed_from_u64(609);
        let pts = random_points3(50, 2000, &mut rng);
        let (x, y, z) = pts[7];
        let t = RangeTree3D::build(pts, ParamMode::Auto);
        let mut pram = Pram::new(64, Model::Crew);
        let exact = Box3 {
            x: (x, x),
            y: (y, y),
            z: (z, z),
        };
        assert_eq!(t.query_coop(exact, &mut pram), vec![7]);
        let empty = Box3 {
            x: (x + 1, x),
            y: (y, y),
            z: (z, z),
        };
        assert!(t.query_coop(empty, &mut pram).is_empty());
    }
}
