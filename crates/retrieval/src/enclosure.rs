//! Point enclosure (Theorem 6): report the rectangles containing a query
//! point.
//!
//! The paper only says the structure is "constructed with a similar
//! approach" — the standard `O(n log n)` realisation inside the
//! trees-with-catalogs framework is a **segment tree on x** (each rectangle
//! allocated to `O(log n)` canonical nodes by its x-extent) whose nodes
//! carry **interval trees** on the allocated rectangles' y-extents. A
//! query descends the x-path of `q_x`; at each path node the 1D y-stabbing
//! query reports contiguous *prefixes* of the interval tree's `by-lower` /
//! `by-upper` catalogs — so every reported item still comes from a catalog
//! range, as Theorem 6's retrieval models require.
//!
//! The cooperative version runs all path-node stabbings concurrently with
//! `p / O(log n)` processors each (processor splitting, charged by
//! `join_max`), each stabbing using cooperative binary searches per level.
//! This yields `O((log n / log p)²)`-shaped query time rather than the
//! flat `O(log n / log p)` the theorem states — the paper's unspecified
//! single-level structure is an open gap documented in EXPERIMENTS.md.

use crate::report::charge_direct;
use fc_pram::cost::Pram;
use fc_pram::primitives::coop_lower_bound;
use rand::prelude::*;

/// An axis-parallel rectangle (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rectangle {
    /// Left x.
    pub x1: i64,
    /// Right x.
    pub x2: i64,
    /// Bottom y.
    pub y1: i64,
    /// Top y.
    pub y2: i64,
}

/// Interval-tree node: the intervals containing `center`, sorted by lower
/// end (ascending) and upper end (descending).
#[derive(Debug, Clone)]
struct INode {
    center: i64,
    left: u32,
    right: u32,
    by_lo: Vec<(i64, u32)>,
    by_hi: Vec<(i64, u32)>, // negated upper ends, ascending == upper desc
}

const NONE: u32 = u32::MAX;

/// A 1D interval tree with catalogs (per x-segment-tree node).
#[derive(Debug, Clone, Default)]
struct IntervalTree {
    nodes: Vec<INode>,
}

impl IntervalTree {
    fn build(items: Vec<(i64, i64, u32)>) -> Self {
        let mut tree = IntervalTree { nodes: Vec::new() };
        if !items.is_empty() {
            tree.build_rec(&items);
        }
        tree
    }

    fn build_rec(&mut self, items: &[(i64, i64, u32)]) -> u32 {
        if items.is_empty() {
            return NONE;
        }
        // Median of all endpoints as the center.
        let mut ends: Vec<i64> = items.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        ends.sort_unstable();
        let center = ends[ends.len() / 2];
        let mut here = Vec::new();
        let mut left_items = Vec::new();
        let mut right_items = Vec::new();
        for &(a, b, id) in items.iter() {
            if b < center {
                left_items.push((a, b, id));
            } else if a > center {
                right_items.push((a, b, id));
            } else {
                here.push((a, b, id));
            }
        }
        debug_assert!(!here.is_empty(), "median endpoint always covers itself");
        let idx = self.nodes.len() as u32;
        let mut by_lo: Vec<(i64, u32)> = here.iter().map(|&(a, _, id)| (a, id)).collect();
        by_lo.sort_unstable();
        let mut by_hi: Vec<(i64, u32)> = here.iter().map(|&(_, b, id)| (-b, id)).collect();
        by_hi.sort_unstable();
        self.nodes.push(INode {
            center,
            left: NONE,
            right: NONE,
            by_lo,
            by_hi,
        });
        let l = self.build_rec(&left_items);
        let r = self.build_rec(&right_items);
        self.nodes[idx as usize].left = l;
        self.nodes[idx as usize].right = r;
        idx
    }

    /// Stab at `y`: push every containing interval's id; cooperative
    /// binary searches charged against `pram`.
    fn stab(&self, y: i64, out: &mut Vec<u32>, pram: &mut Pram) -> u64 {
        let mut reported = 0u64;
        if self.nodes.is_empty() {
            return 0;
        }
        let mut idx = 0u32;
        while idx != NONE {
            let node = &self.nodes[idx as usize];
            if y <= node.center {
                // Intervals with lower end <= y (their upper end >= center
                // >= y automatically).
                let keys: Vec<i64> = node.by_lo.iter().map(|&(a, _)| a).collect();
                let cnt = coop_lower_bound(&keys, &(y + 1), pram);
                for &(_, id) in &node.by_lo[..cnt] {
                    out.push(id);
                }
                reported += cnt as u64;
                if y == node.center {
                    break;
                }
                idx = node.left;
            } else {
                let keys: Vec<i64> = node.by_hi.iter().map(|&(nb, _)| nb).collect();
                let cnt = coop_lower_bound(&keys, &(-y + 1), pram);
                for &(_, id) in &node.by_hi[..cnt] {
                    out.push(id);
                }
                reported += cnt as u64;
                idx = node.right;
            }
        }
        reported
    }
}

/// The preprocessed point-enclosure structure.
pub struct PointEnclosure {
    /// The rectangles, by id.
    pub rects: Vec<Rectangle>,
    /// Sorted distinct x endpoints.
    endpoints: Vec<i64>,
    /// Segment-tree leaf count (power of two).
    leaves: usize,
    /// Per x-node interval tree on the allocated rectangles' y-extents.
    itrees: Vec<IntervalTree>,
}

impl PointEnclosure {
    /// Build the structure.
    pub fn build(rects: Vec<Rectangle>) -> Self {
        assert!(!rects.is_empty());
        let mut endpoints: Vec<i64> = rects.iter().flat_map(|r| [r.x1, r.x2]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let slabs = 2 * endpoints.len() + 1;
        let leaves = slabs.next_power_of_two();
        let total = 2 * leaves - 1;
        let mut alloc: Vec<Vec<(i64, i64, u32)>> = vec![Vec::new(); total];
        for (id, r) in rects.iter().enumerate() {
            assert!(r.x1 <= r.x2 && r.y1 <= r.y2, "degenerate rectangle");
            let lo = 2 * endpoints.binary_search(&r.x1).unwrap() + 1;
            let hi = 2 * endpoints.binary_search(&r.x2).unwrap() + 1;
            insert(&mut alloc, 0, 0, leaves, lo, hi, (r.y1, r.y2, id as u32));
        }
        let itrees = alloc.into_iter().map(IntervalTree::build).collect();
        PointEnclosure {
            rects,
            endpoints,
            leaves,
            itrees,
        }
    }

    fn slab_of(&self, x: i64) -> usize {
        match self.endpoints.binary_search(&x) {
            Ok(r) => 2 * r + 1,
            Err(r) => 2 * r,
        }
        .min(self.leaves - 1)
    }

    /// Cooperative enclosure query: report every rectangle containing
    /// `(x, y)`. Path-node stabbings run concurrently with split
    /// processors; reporting charged in the direct model.
    pub fn query_coop(&self, x: i64, y: i64, pram: &mut Pram) -> Vec<u32> {
        // Path from root to the slab leaf of x.
        let mut path = Vec::new();
        let mut idx = self.slab_of(x) + self.leaves - 1;
        path.push(idx);
        while idx > 0 {
            idx = (idx - 1) / 2;
            path.push(idx);
        }
        let p_inner = (pram.processors() / path.len()).max(1);
        let mut out = Vec::new();
        let mut k = 0u64;
        let mut branch_prams = Vec::with_capacity(path.len());
        for &node in &path {
            let mut bp = pram.with_processors(p_inner);
            k += self.itrees[node].stab(y, &mut out, &mut bp);
            branch_prams.push(bp);
        }
        pram.join_max(branch_prams);
        charge_direct(pram, path.len(), k);
        out.sort_unstable();
        out
    }

    /// Brute-force ground truth.
    pub fn query_brute(&self, x: i64, y: i64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.x1 <= x && x <= r.x2 && r.y1 <= y && y <= r.y2)
            .map(|(i, _)| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total stored interval copies (`O(n log n)`).
    pub fn stored_intervals(&self) -> usize {
        self.itrees
            .iter()
            .map(|t| t.nodes.iter().map(|n| n.by_lo.len()).sum::<usize>())
            .sum()
    }
}

fn insert(
    alloc: &mut [Vec<(i64, i64, u32)>],
    node: usize,
    node_lo: usize,
    width: usize,
    lo: usize,
    hi: usize,
    item: (i64, i64, u32),
) {
    let node_hi = node_lo + width - 1;
    if hi < node_lo || lo > node_hi {
        return;
    }
    if lo <= node_lo && node_hi <= hi {
        alloc[node].push(item);
        return;
    }
    let half = width / 2;
    insert(alloc, 2 * node + 1, node_lo, half, lo, hi, item);
    insert(alloc, 2 * node + 2, node_lo + half, half, lo, hi, item);
}

/// Random rectangle workload.
pub fn random_rects(n: usize, range: i64, rng: &mut impl Rng) -> Vec<Rectangle> {
    (0..n)
        .map(|_| {
            let (a, b) = (rng.gen_range(0..range), rng.gen_range(0..range));
            let (c, d) = (rng.gen_range(0..range), rng.gen_range(0..range));
            Rectangle {
                x1: a.min(b),
                x2: a.max(b),
                y1: c.min(d),
                y2: c.max(d),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_pram::Model;
    use rand::rngs::SmallRng;

    #[test]
    fn coop_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(501);
        let pe = PointEnclosure::build(random_rects(400, 1000, &mut rng));
        for p in [1usize, 64, 4096] {
            for _ in 0..80 {
                let (x, y) = (rng.gen_range(-10..1010), rng.gen_range(-10..1010));
                let mut pram = Pram::new(p, Model::Crew);
                assert_eq!(
                    pe.query_coop(x, y, &mut pram),
                    pe.query_brute(x, y),
                    "p {p} q ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn boundary_points_are_inside() {
        let pe = PointEnclosure::build(vec![Rectangle {
            x1: 0,
            x2: 10,
            y1: 0,
            y2: 10,
        }]);
        let mut pram = Pram::new(8, Model::Crew);
        for (x, y) in [(0, 0), (10, 10), (0, 10), (5, 5), (10, 0)] {
            assert_eq!(pe.query_coop(x, y, &mut pram), vec![0], "({x}, {y})");
        }
        assert!(pe.query_coop(11, 5, &mut pram).is_empty());
        assert!(pe.query_coop(5, -1, &mut pram).is_empty());
    }

    #[test]
    fn nested_and_overlapping_rectangles() {
        let pe = PointEnclosure::build(vec![
            Rectangle {
                x1: 0,
                x2: 100,
                y1: 0,
                y2: 100,
            },
            Rectangle {
                x1: 10,
                x2: 90,
                y1: 10,
                y2: 90,
            },
            Rectangle {
                x1: 40,
                x2: 60,
                y1: 40,
                y2: 60,
            },
            Rectangle {
                x1: 55,
                x2: 200,
                y1: 55,
                y2: 200,
            },
        ]);
        let mut pram = Pram::new(16, Model::Crew);
        assert_eq!(pe.query_coop(50, 50, &mut pram), vec![0, 1, 2]);
        assert_eq!(pe.query_coop(58, 58, &mut pram), vec![0, 1, 2, 3]);
        assert_eq!(pe.query_coop(150, 150, &mut pram), vec![3]);
        assert_eq!(pe.query_coop(5, 5, &mut pram), vec![0]);
    }

    #[test]
    fn storage_is_n_log_n() {
        let mut rng = SmallRng::seed_from_u64(503);
        let n = 2000usize;
        let pe = PointEnclosure::build(random_rects(n, 100_000, &mut rng));
        let bound = n * ((n.ilog2() as usize + 2) * 2);
        assert!(
            pe.stored_intervals() <= bound,
            "stored {} vs bound {bound}",
            pe.stored_intervals()
        );
        assert!(
            pe.stored_intervals() >= n,
            "every rectangle stored at least once"
        );
    }

    #[test]
    fn processors_split_across_path_nodes() {
        let mut rng = SmallRng::seed_from_u64(507);
        let pe = PointEnclosure::build(random_rects(3000, 10_000, &mut rng));
        let mut steps = Vec::new();
        for p in [1usize, 1 << 20] {
            let mut total = 0u64;
            for _ in 0..20 {
                let (x, y) = (rng.gen_range(0..10_000), rng.gen_range(0..10_000));
                let mut pram = Pram::new(p, Model::Crew);
                pe.query_coop(x, y, &mut pram);
                total += pram.steps();
            }
            steps.push(total);
        }
        assert!(steps[1] < steps[0], "steps {steps:?}");
    }
}
