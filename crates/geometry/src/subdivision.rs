//! Synthetic monotone planar subdivisions.
//!
//! A monotone subdivision with `f` regions is represented exactly the way
//! the separator-tree machinery consumes it (Section 3.1): as `f − 1`
//! y-monotone **separators** `σ_1 <= σ_2 <= … <= σ_(f−1)`, each a polyline
//! through a shared ladder of y-levels, with region `r_t` the strip between
//! `σ_(t−1)` and `σ_t`. Adjacent separators may **coincide** along whole
//! edges; a maximal run of separators sharing an edge is what produces the
//! proper-edge ranges `[min(e), max(e)]` and the *gaps* that make point
//! location "highly implicit".
//!
//! The generator controls the amount of sharing with a Markov coalescing
//! process per separator (stick to the left neighbour / detach), which
//! yields chains-and-gaps structures like the paper's Figure 5.

use rand::prelude::*;

/// Parameters for [`MonotoneSubdivision::generate`].
#[derive(Debug, Clone, Copy)]
pub struct SubdivisionParams {
    /// Number of regions `f` (must be a power of two, at least 2 — keeps
    /// the separator tree perfectly balanced, the paper's setting).
    pub regions: usize,
    /// Number of horizontal strips (there are `strips + 1` y-levels).
    pub strips: usize,
    /// Probability that a detached separator sticks to its left neighbour
    /// at the next level (edge sharing; 0 = no shared edges).
    pub stick: f64,
    /// Probability that a stuck separator detaches at the next level.
    pub detach: f64,
}

impl Default for SubdivisionParams {
    fn default() -> Self {
        SubdivisionParams {
            regions: 16,
            strips: 8,
            stick: 0.35,
            detach: 0.45,
        }
    }
}

/// A monotone subdivision as stacked y-monotone separators.
#[derive(Debug, Clone)]
pub struct MonotoneSubdivision {
    /// Strictly increasing y-levels (`strips + 1` of them).
    pub ys: Vec<f64>,
    /// `xs[i][j]`: x-coordinate of separator `i + 1` (separators are
    /// 1-indexed in the paper) at level `j`. Non-decreasing in `i` for
    /// every `j`.
    pub xs: Vec<Vec<f64>>,
    /// Number of regions `f` (= `xs.len() + 1`).
    pub f: usize,
}

impl MonotoneSubdivision {
    /// Generate a random instance.
    ///
    /// # Panics
    /// Panics if `regions` is not a power of two `>= 2` or `strips == 0`.
    pub fn generate(params: SubdivisionParams, rng: &mut impl Rng) -> Self {
        assert!(
            params.regions.is_power_of_two() && params.regions >= 2,
            "regions must be a power of two >= 2"
        );
        assert!(params.strips >= 1);
        let seps = params.regions - 1;
        let levels = params.strips + 1;

        // Strictly increasing y-levels with random gaps.
        let mut ys = Vec::with_capacity(levels);
        let mut y = 0.0f64;
        for _ in 0..levels {
            y += rng.gen_range(0.5..2.0);
            ys.push(y);
        }

        // Per level: sorted x's, then Markov coalescing runs.
        let mut xs = vec![vec![0.0f64; levels]; seps];
        let mut stuck = vec![false; seps]; // stuck[i]: separator i+1 == separator i
        for j in 0..levels {
            let mut col: Vec<f64> = (0..seps)
                .map(|_| rng.gen_range(0.0..(seps as f64) * 4.0))
                .collect();
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Evolve the stuck state (separator 0 has no left neighbour).
            for i in 1..seps {
                stuck[i] = if stuck[i] {
                    rng.gen::<f64>() >= params.detach
                } else {
                    rng.gen::<f64>() < params.stick
                };
            }
            for (i, sep) in xs.iter_mut().enumerate() {
                sep[j] = col[i];
            }
            for i in 1..seps {
                if stuck[i] {
                    let left = xs[i - 1][j];
                    xs[i][j] = left;
                }
            }
        }

        MonotoneSubdivision {
            ys,
            xs,
            f: params.regions,
        }
    }

    /// Number of separators (`f − 1`).
    #[inline]
    pub fn separators(&self) -> usize {
        self.xs.len()
    }

    /// Number of strips.
    #[inline]
    pub fn strips(&self) -> usize {
        self.ys.len() - 1
    }

    /// Total number of *distinct* edges (each maximal run of coinciding
    /// separators in a strip counts once) — the subdivision's `n` up to a
    /// constant.
    pub fn distinct_edges(&self) -> usize {
        let mut count = 0usize;
        for j in 0..self.strips() {
            for i in 0..self.separators() {
                if i == 0 || !self.edge_equal(i - 1, i, j) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Whether separators `a` and `b` (0-indexed) coincide along strip `j`.
    #[inline]
    pub fn edge_equal(&self, a: usize, b: usize, j: usize) -> bool {
        self.xs[a][j] == self.xs[b][j] && self.xs[a][j + 1] == self.xs[b][j + 1]
    }

    /// The maximal run `[lo, hi]` of separators (0-indexed) sharing
    /// separator `i`'s edge along strip `j`.
    pub fn edge_run(&self, i: usize, j: usize) -> (usize, usize) {
        let mut lo = i;
        while lo > 0 && self.edge_equal(lo - 1, i, j) {
            lo -= 1;
        }
        let mut hi = i;
        while hi + 1 < self.separators() && self.edge_equal(hi + 1, i, j) {
            hi += 1;
        }
        (lo, hi)
    }

    /// The strip containing height `y` (clamped to the first/last strip for
    /// out-of-range queries — separators extend vertically to ±∞).
    pub fn strip_of(&self, y: f64) -> usize {
        let j = self.ys.partition_point(|&lv| lv < y);
        j.saturating_sub(1).min(self.strips() - 1)
    }

    /// The x-coordinate of separator `i` (0-indexed) at height `y`
    /// (vertical extension beyond the first/last level).
    pub fn sep_x_at(&self, i: usize, y: f64) -> f64 {
        let m = self.ys.len() - 1;
        if y <= self.ys[0] {
            return self.xs[i][0];
        }
        if y >= self.ys[m] {
            return self.xs[i][m];
        }
        let j = self.strip_of(y);
        let (y0, y1) = (self.ys[j], self.ys[j + 1]);
        let (x0, x1) = (self.xs[i][j], self.xs[i][j + 1]);
        x0 + (x1 - x0) * (y - y0) / (y1 - y0)
    }

    /// Whether query point `(x, y)` lies strictly left of separator `i`.
    /// Points exactly on a separator count as *right* (the region on the
    /// right owns its left boundary — one consistent convention
    /// throughout).
    #[inline]
    pub fn left_of(&self, i: usize, x: f64, y: f64) -> bool {
        x < self.sep_x_at(i, y)
    }

    /// Ground-truth point location by scanning all separators:
    /// `O(f log m)`. Returns the 1-indexed region `r_t`.
    pub fn locate_brute(&self, x: f64, y: f64) -> usize {
        let mut t = 1usize;
        for i in 0..self.separators() {
            if !self.left_of(i, x, y) {
                t = i + 2; // right of separator i (0-indexed) => at least region i+2
            }
        }
        // Separators are sorted, so the count version is equivalent; the
        // max version tolerates ties from coinciding separators.
        t
    }

    /// A random query point spanning (and slightly exceeding) the
    /// subdivision's bounding box.
    pub fn random_query(&self, rng: &mut impl Rng) -> (f64, f64) {
        let x_max = (self.separators() as f64) * 4.0;
        let y_max = *self.ys.last().unwrap();
        (
            rng.gen_range(-1.0..x_max + 1.0),
            rng.gen_range(-1.0..y_max + 1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    fn gen(seed: u64, params: SubdivisionParams) -> MonotoneSubdivision {
        let mut rng = SmallRng::seed_from_u64(seed);
        MonotoneSubdivision::generate(params, &mut rng)
    }

    #[test]
    fn separators_are_ordered_at_every_level() {
        let s = gen(1, SubdivisionParams::default());
        for j in 0..s.ys.len() {
            for i in 1..s.separators() {
                assert!(s.xs[i - 1][j] <= s.xs[i][j], "level {j} sep {i}");
            }
        }
        assert!(s.ys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn coalescing_produces_shared_edges() {
        let s = gen(
            2,
            SubdivisionParams {
                regions: 64,
                strips: 16,
                stick: 0.5,
                detach: 0.3,
            },
        );
        let total = s.separators() * s.strips();
        let distinct = s.distinct_edges();
        assert!(distinct < total, "expected sharing: {distinct} of {total}");
        assert!(distinct > 0);
    }

    #[test]
    fn no_stick_means_no_sharing() {
        let s = gen(
            3,
            SubdivisionParams {
                regions: 32,
                strips: 8,
                stick: 0.0,
                detach: 1.0,
            },
        );
        assert_eq!(s.distinct_edges(), s.separators() * s.strips());
    }

    #[test]
    fn edge_runs_are_maximal_and_consistent() {
        let s = gen(4, SubdivisionParams::default());
        for j in 0..s.strips() {
            for i in 0..s.separators() {
                let (lo, hi) = s.edge_run(i, j);
                assert!(lo <= i && i <= hi);
                for k in lo..=hi {
                    assert!(s.edge_equal(k, i, j));
                    assert_eq!(s.edge_run(k, j), (lo, hi));
                }
                if lo > 0 {
                    assert!(!s.edge_equal(lo - 1, i, j));
                }
                if hi + 1 < s.separators() {
                    assert!(!s.edge_equal(hi + 1, i, j));
                }
            }
        }
    }

    #[test]
    fn locate_brute_is_monotone_in_x() {
        let s = gen(5, SubdivisionParams::default());
        let y = (s.ys[0] + s.ys[s.ys.len() - 1]) / 2.0;
        let mut prev = 0;
        for step in 0..200 {
            let x = -1.0 + step as f64 * 0.4;
            let r = s.locate_brute(x, y);
            assert!(r >= 1 && r <= s.f);
            assert!(r >= prev, "region must not decrease as x grows");
            prev = r;
        }
        assert_eq!(s.locate_brute(-100.0, y), 1);
        assert_eq!(s.locate_brute(1e9, y), s.f);
    }

    #[test]
    fn out_of_range_y_uses_vertical_extensions() {
        let s = gen(6, SubdivisionParams::default());
        let x = 5.0;
        let below = s.locate_brute(x, -100.0);
        let at_bottom = s.locate_brute(x, s.ys[0]);
        assert_eq!(below, at_bottom);
        let above = s.locate_brute(x, 1e9);
        let at_top = s.locate_brute(x, *s.ys.last().unwrap());
        assert_eq!(above, at_top);
    }

    #[test]
    fn strip_of_clamps() {
        let s = gen(7, SubdivisionParams::default());
        assert_eq!(s.strip_of(-10.0), 0);
        assert_eq!(s.strip_of(1e9), s.strips() - 1);
        for j in 0..s.strips() {
            let mid = (s.ys[j] + s.ys[j + 1]) / 2.0;
            assert_eq!(s.strip_of(mid), j);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_regions_rejected() {
        let mut rng = SmallRng::seed_from_u64(8);
        let _ = MonotoneSubdivision::generate(
            SubdivisionParams {
                regions: 12,
                ..Default::default()
            },
            &mut rng,
        );
    }
}
