//! The bridged separator tree (Section 3.1, Figure 5).
//!
//! A balanced binary tree whose leaves are the regions `r_1 … r_f` and
//! whose internal nodes are the separators `σ_1 … σ_(f−1)`, in inorder
//! `r_1 σ_1 r_2 … σ_(f−1) r_f`. Each edge `e` of the subdivision belongs to
//! the range of separators `[min(e), max(e)]` that share it, and is stored
//! once, at the **least common ancestor** of that range — its *proper*
//! node. A separator's catalog is its proper edges sorted bottom-to-top
//! (keyed by strip top); where the separator's edges are stored elsewhere
//! the catalog has a *gap*.
//!
//! Sequential point location descends the tree: at an *active* node (the
//! catalog holds the edge at the query's height) the branch is a geometric
//! side test; at an *inactive* node the branch was already decided at the
//! ancestor owning the query-height edge, and is precomputed here per
//! (separator, strip) — the paper stores one direction per gap; the
//! per-strip table is the same information at the same `O(n)` space, and
//! the test suite checks the per-gap rule agrees (see DESIGN.md).
//!
//! The catalogs are fractionally cascaded (`fc-coop` preprocessing), so the
//! sequential search runs in `O(log n)` total — this is the *bridged*
//! separator tree of [13], [9], [17].

use crate::subdivision::MonotoneSubdivision;
use fc_catalog::key::OrdF64;
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::implicit::Branch;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::cost::Pram;

/// What a separator-tree node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An internal node: separator `σ_c` (1-indexed, as in the paper).
    Separator(u32),
    /// A leaf: region `r_t` (1-indexed).
    Region(u32),
}

/// A proper edge stored at a separator node, aligned with the node's
/// catalog entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeInfo {
    /// Strip index `j` (the edge spans `ys[j] .. ys[j+1]`).
    pub strip: u32,
    /// `min(e)`: smallest 1-indexed separator sharing the edge.
    pub run_lo: u32,
    /// `max(e)`: largest 1-indexed separator sharing the edge.
    pub run_hi: u32,
}

/// The preprocessed bridged separator tree.
///
/// ```
/// use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
/// use fc_geom::septree::{SeparatorTree, locate_sequential};
/// use fc_geom::cooploc::locate_coop;
/// use fc_coop::ParamMode;
/// use fc_pram::{Model, Pram};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let sub = MonotoneSubdivision::generate(SubdivisionParams::default(), &mut rng);
/// let t = SeparatorTree::build(sub, ParamMode::Auto);
/// let (x, y) = t.sub.random_query(&mut rng);
/// let (region, _) = locate_sequential(&t, x, y, None);
/// let mut pram = Pram::new(1 << 12, Model::Crew);
/// let (coop_region, _) = locate_coop(&t, x, y, &mut pram);
/// assert_eq!(region, coop_region);
/// assert_eq!(region, t.sub.locate_brute(x, y));
/// ```
pub struct SeparatorTree {
    /// The subdivision being searched.
    pub sub: MonotoneSubdivision,
    /// Cooperative search structure over the tree with catalogs.
    pub st: CoopStructure<OrdF64>,
    /// Per tree node: separator or region.
    pub kind: Vec<NodeKind>,
    /// `node_of_sep[c - 1]` = tree node of separator `σ_c`.
    pub node_of_sep: Vec<NodeId>,
    /// Per tree node: proper edges aligned with the native catalog.
    pub edges: Vec<Vec<EdgeInfo>>,
    /// Per tree node (separators only): for every strip, the branch to take
    /// when the node is inactive at a height in that strip. Entries at
    /// proper strips are unused.
    pub strip_branch: Vec<Vec<Branch>>,
}

/// Statistics from one sequential point location.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocateStats {
    /// Nodes where the catalog held the query-height edge.
    pub active_nodes: usize,
    /// Nodes resolved through the precomputed gap branch.
    pub inactive_nodes: usize,
}

impl SeparatorTree {
    /// Build the bridged separator tree for `sub` and preprocess it for
    /// cooperative search.
    pub fn build(sub: MonotoneSubdivision, mode: ParamMode) -> Self {
        let f = sub.f;
        let seps = sub.separators();

        // --- Tree shape: recursive split of the region range [1, f].
        // Arena order: parents precede children (preorder emission).
        #[derive(Clone, Copy)]
        struct Task {
            lo: u32, // region range, 1-indexed inclusive
            hi: u32,
            parent: Option<u32>,
        }
        let mut kinds: Vec<NodeKind> = Vec::with_capacity(2 * f - 1);
        let mut parents: Vec<Option<u32>> = Vec::with_capacity(2 * f - 1);
        let mut node_of_sep = vec![NodeId(0); seps];
        let mut stack = vec![Task {
            lo: 1,
            hi: f as u32,
            parent: None,
        }];
        // Emit left child before right so child order matches inorder;
        // a stack (LIFO) with right pushed first achieves that.
        while let Some(t) = stack.pop() {
            let idx = kinds.len() as u32;
            if t.lo == t.hi {
                kinds.push(NodeKind::Region(t.lo));
                parents.push(t.parent);
            } else {
                let mid = (t.lo + t.hi) / 2; // separator σ_mid splits [lo, mid] | [mid+1, hi]
                kinds.push(NodeKind::Separator(mid));
                parents.push(t.parent);
                node_of_sep[mid as usize - 1] = NodeId(idx);
                stack.push(Task {
                    lo: mid + 1,
                    hi: t.hi,
                    parent: Some(idx),
                });
                stack.push(Task {
                    lo: t.lo,
                    hi: mid,
                    parent: Some(idx),
                });
            }
        }
        // The LIFO pops the left task first, but both tasks were pushed
        // after the parent, and `from_parents` orders children by arena
        // index — left gets the smaller index. Verified by tests.

        // --- Proper-edge assignment: every maximal run [lo, hi] (1-indexed)
        // goes to the LCA separator of the range, found by descending the
        // implicit range structure.
        let lca_sep = |lo: u32, hi: u32| -> u32 {
            let (mut a, mut b) = (1u32, f as u32);
            loop {
                let mid = (a + b) / 2;
                if hi < mid {
                    b = mid;
                } else if lo > mid {
                    a = mid + 1;
                } else {
                    return mid;
                }
            }
        };
        let mut per_sep_edges: Vec<Vec<EdgeInfo>> = vec![Vec::new(); seps];
        for j in 0..sub.strips() {
            let mut i = 0usize;
            while i < seps {
                let (lo0, hi0) = sub.edge_run(i, j);
                debug_assert_eq!(lo0, i);
                // 1-indexed separators sharing this edge: [lo0+1, hi0+1].
                let owner = lca_sep(lo0 as u32 + 1, hi0 as u32 + 1);
                per_sep_edges[owner as usize - 1].push(EdgeInfo {
                    strip: j as u32,
                    run_lo: lo0 as u32 + 1,
                    run_hi: hi0 as u32 + 1,
                });
                i = hi0 + 1;
            }
        }
        for v in &mut per_sep_edges {
            v.sort_by_key(|e| e.strip);
        }

        // --- Catalogs: proper edges keyed by strip top.
        let mut catalogs: Vec<Vec<OrdF64>> = vec![Vec::new(); kinds.len()];
        let mut edges: Vec<Vec<EdgeInfo>> = vec![Vec::new(); kinds.len()];
        for (c0, list) in per_sep_edges.into_iter().enumerate() {
            let nid = node_of_sep[c0];
            catalogs[nid.idx()] = list
                .iter()
                .map(|e| OrdF64::new(sub.ys[e.strip as usize + 1]))
                .collect();
            edges[nid.idx()] = list;
        }

        // --- Per-strip inactive branches: the owner of σ_c's edge at strip
        // j is an ancestor when the edge is not proper at σ_c; the search
        // already went toward σ_c there, which fixes the side.
        let mut strip_branch: Vec<Vec<Branch>> = vec![Vec::new(); kinds.len()];
        for c0 in 0..seps {
            let c = c0 as u32 + 1;
            let nid = node_of_sep[c0];
            let mut sb = Vec::with_capacity(sub.strips());
            for j in 0..sub.strips() {
                let (lo0, hi0) = sub.edge_run(c0, j);
                let owner = lca_sep(lo0 as u32 + 1, hi0 as u32 + 1);
                // branch = left iff c < owner (paper's rule, per strip).
                sb.push(if c < owner {
                    Branch::Left
                } else {
                    Branch::Right
                });
            }
            strip_branch[nid.idx()] = sb;
        }

        let tree = CatalogTree::from_parents(parents, catalogs);
        let st = CoopStructure::preprocess(tree, mode);

        SeparatorTree {
            sub,
            st,
            kind: kinds,
            node_of_sep,
            edges,
            strip_branch,
        }
    }

    /// The tree node's separator index (1-indexed), if it is a separator.
    #[inline]
    pub fn sep_of(&self, node: NodeId) -> Option<u32> {
        match self.kind[node.idx()] {
            NodeKind::Separator(c) => Some(c),
            NodeKind::Region(_) => None,
        }
    }

    /// Inorder position of a node on the doubled axis (`σ_c → 2c`,
    /// `r_t → 2t − 1`) — lets separators and regions be compared.
    #[inline]
    pub fn inorder_pos(&self, node: NodeId) -> u32 {
        match self.kind[node.idx()] {
            NodeKind::Separator(c) => 2 * c,
            NodeKind::Region(t) => 2 * t - 1,
        }
    }

    /// Clamp a query to the vertical extent of the subdivision (separators
    /// extend vertically beyond their first/last vertex, so the region
    /// answer is unchanged).
    pub fn clamp_y(&self, y: f64) -> f64 {
        y.clamp(self.sub.ys[0], *self.sub.ys.last().unwrap())
    }

    /// The result of locating `y` in a separator node's catalog.
    pub fn classify(&self, node: NodeId, native_idx: usize, y: f64) -> Activity {
        let list = &self.edges[node.idx()];
        if native_idx < list.len() {
            let e = list[native_idx];
            if self.sub.ys[e.strip as usize] <= y {
                return Activity::Active(e);
            }
        }
        Activity::Inactive
    }

    /// Geometric side test of `(x, y)` against the (shared) edge `e` of
    /// separator `σ_c`: returns the branch the search takes.
    pub fn discriminate(&self, c: u32, x: f64, y: f64) -> Branch {
        if self.sub.left_of(c as usize - 1, x, y) {
            Branch::Left
        } else {
            Branch::Right
        }
    }
}

/// Whether a node's catalog held the query-height edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activity {
    /// `find(y, σ)` is a proper edge whose vertical span includes `y`.
    Active(EdgeInfo),
    /// `find(y, σ)` is a gap.
    Inactive,
}

/// Sequential point location through the bridged separator tree:
/// `O(log n)` total (one binary search plus `O(1)` per level through the
/// bridges). Returns the 1-indexed region and per-query statistics.
pub fn locate_sequential(
    t: &SeparatorTree,
    x: f64,
    y: f64,
    mut pram: Option<&mut Pram>,
) -> (usize, LocateStats) {
    let y = t.clamp_y(y);
    let key = OrdF64::new(y);
    let fc = t.st.cascade();
    let tree = t.st.tree();
    let mut stats = LocateStats::default();

    let mut node = tree.root();
    let mut aug = fc.find_aug(node, key);
    if let Some(pram) = pram.as_deref_mut() {
        let len = fc.keys(node).len();
        pram.seq((usize::BITS - len.leading_zeros()) as usize);
    }
    loop {
        match t.kind[node.idx()] {
            NodeKind::Region(r) => return (r as usize, stats),
            NodeKind::Separator(c) => {
                let native = fc.native_result(node, aug).native_idx as usize;
                let branch = match t.classify(node, native, y) {
                    Activity::Active(_) => {
                        stats.active_nodes += 1;
                        t.discriminate(c, x, y)
                    }
                    Activity::Inactive => {
                        stats.inactive_nodes += 1;
                        let strip = t.sub.strip_of(y);
                        t.strip_branch[node.idx()][strip]
                    }
                };
                let slot = branch.slot();
                let (next, walked) = fc.descend(node, slot, aug, key);
                if let Some(pram) = pram.as_deref_mut() {
                    pram.seq(2 + walked);
                }
                node = tree.children(node)[slot];
                aug = next;
            }
        }
    }
}

/// Baseline without bridges: an independent `O(log n)` binary search at
/// every level (`O(log² n)` total) — the pre-fractional-cascading strawman.
pub fn locate_binary_per_node(
    t: &SeparatorTree,
    x: f64,
    y: f64,
    mut pram: Option<&mut Pram>,
) -> usize {
    let y = t.clamp_y(y);
    let tree = t.st.tree();
    let mut node = tree.root();
    loop {
        match t.kind[node.idx()] {
            NodeKind::Region(r) => return r as usize,
            NodeKind::Separator(c) => {
                let cat = tree.catalog(node);
                let native = cat.partition_point(|k| k.get() < y);
                if let Some(pram) = pram.as_deref_mut() {
                    pram.seq(((usize::BITS - cat.len().leading_zeros()) as usize).max(1));
                }
                let branch = match t.classify(node, native, y) {
                    Activity::Active(_) => t.discriminate(c, x, y),
                    Activity::Inactive => t.strip_branch[node.idx()][t.sub.strip_of(y)],
                };
                node = tree.children(node)[branch.slot()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subdivision::SubdivisionParams;
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(seed: u64, params: SubdivisionParams) -> SeparatorTree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sub = MonotoneSubdivision::generate(params, &mut rng);
        SeparatorTree::build(sub, ParamMode::Auto)
    }

    #[test]
    fn tree_shape_is_the_inorder_separator_tree() {
        let t = build(11, SubdivisionParams::default());
        let tree = t.st.tree();
        assert_eq!(tree.len(), 2 * t.sub.f - 1);
        // Inorder traversal must read r_1 σ_1 r_2 σ_2 … σ_(f-1) r_f.
        fn inorder(
            tree: &CatalogTree<OrdF64>,
            t: &SeparatorTree,
            node: NodeId,
            out: &mut Vec<u32>,
        ) {
            let ch = tree.children(node);
            if ch.is_empty() {
                out.push(t.inorder_pos(node));
            } else {
                inorder(tree, t, ch[0], out);
                out.push(t.inorder_pos(node));
                inorder(tree, t, ch[1], out);
            }
        }
        let mut seq = Vec::new();
        inorder(tree, &t, tree.root(), &mut seq);
        let expect: Vec<u32> = (1..=2 * t.sub.f as u32 - 1).collect();
        assert_eq!(seq, expect);
    }

    #[test]
    fn every_edge_stored_exactly_once() {
        let t = build(13, SubdivisionParams::default());
        let stored: usize = t.edges.iter().map(Vec::len).sum();
        assert_eq!(stored, t.sub.distinct_edges());
    }

    #[test]
    fn proper_edges_live_at_the_lca_of_their_run() {
        let t = build(17, SubdivisionParams::default());
        let tree = t.st.tree();
        for nid in tree.ids() {
            let Some(c) = t.sep_of(nid) else { continue };
            for e in &t.edges[nid.idx()] {
                assert!(e.run_lo <= c && c <= e.run_hi, "owner inside run");
                // The owner must be an ancestor of every separator in the
                // run (or the separator itself).
                for s in e.run_lo..=e.run_hi {
                    let snode = t.node_of_sep[s as usize - 1];
                    let mut cur = Some(snode);
                    let mut found = false;
                    while let Some(v) = cur {
                        if v == nid {
                            found = true;
                            break;
                        }
                        cur = tree.parent(v);
                    }
                    assert!(found, "σ_{c} must be an ancestor of σ_{s}");
                }
            }
        }
    }

    #[test]
    fn sequential_matches_brute_force() {
        for (seed, params) in [
            (19u64, SubdivisionParams::default()),
            (
                23,
                SubdivisionParams {
                    regions: 64,
                    strips: 24,
                    stick: 0.5,
                    detach: 0.3,
                },
            ),
            (
                29,
                SubdivisionParams {
                    regions: 128,
                    strips: 6,
                    stick: 0.0,
                    detach: 1.0,
                },
            ),
            (
                31,
                SubdivisionParams {
                    regions: 32,
                    strips: 40,
                    stick: 0.8,
                    detach: 0.1,
                },
            ),
        ] {
            let t = build(seed, params);
            let mut rng = SmallRng::seed_from_u64(seed + 1000);
            for _ in 0..300 {
                let (x, y) = t.sub.random_query(&mut rng);
                let want = t.sub.locate_brute(x, y);
                let (got, _) = locate_sequential(&t, x, y, None);
                assert_eq!(got, want, "seed {seed} q ({x}, {y})");
                assert_eq!(locate_binary_per_node(&t, x, y, None), want);
            }
        }
    }

    #[test]
    fn heavy_sharing_produces_inactive_nodes() {
        let t = build(
            37,
            SubdivisionParams {
                regions: 64,
                strips: 16,
                stick: 0.7,
                detach: 0.2,
            },
        );
        let mut rng = SmallRng::seed_from_u64(38);
        let mut inactive = 0usize;
        for _ in 0..100 {
            let (x, y) = t.sub.random_query(&mut rng);
            let (_, stats) = locate_sequential(&t, x, y, None);
            inactive += stats.inactive_nodes;
        }
        assert!(inactive > 0, "sharing must force gap traversals");
    }

    #[test]
    fn bridged_search_beats_binary_per_node() {
        let t = build(
            41,
            SubdivisionParams {
                regions: 512,
                strips: 64,
                stick: 0.3,
                detach: 0.5,
            },
        );
        let mut rng = SmallRng::seed_from_u64(42);
        let mut pram_fc = Pram::new(1, Model::Crew);
        let mut pram_bin = Pram::new(1, Model::Crew);
        for _ in 0..50 {
            let (x, y) = t.sub.random_query(&mut rng);
            locate_sequential(&t, x, y, Some(&mut pram_fc));
            locate_binary_per_node(&t, x, y, Some(&mut pram_bin));
        }
        assert!(
            pram_fc.steps() < pram_bin.steps(),
            "bridged {} vs per-node {}",
            pram_fc.steps(),
            pram_bin.steps()
        );
    }

    #[test]
    fn corner_queries() {
        let t = build(43, SubdivisionParams::default());
        for (x, y) in [
            (-1e9, -1e9),
            (1e9, 1e9),
            (-1e9, 1e9),
            (1e9, -1e9),
            (0.0, 0.0),
        ] {
            let want = t.sub.locate_brute(x, y);
            let (got, _) = locate_sequential(&t, x, y, None);
            assert_eq!(got, want, "corner ({x}, {y})");
        }
    }

    #[test]
    fn queries_on_separator_vertices() {
        let t = build(47, SubdivisionParams::default());
        // Probe exactly on vertices: x on a separator, y on a level.
        for j in 0..t.sub.ys.len() {
            for i in 0..t.sub.separators() {
                let (x, y) = (t.sub.xs[i][j], t.sub.ys[j]);
                let want = t.sub.locate_brute(x, y);
                let (got, _) = locate_sequential(&t, x, y, None);
                assert_eq!(got, want, "vertex sep {i} level {j}");
            }
        }
    }
}
