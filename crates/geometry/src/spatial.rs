//! Spatial point location (Section 3.2, Theorem 5, Corollary 1).
//!
//! A spatial cell complex whose cells admit a topological order under
//! vertical dominance is searched through a balanced tree over the cells:
//! each internal node is a **separating surface** `χ_i` (the facets between
//! the cells of index `<= i` and those above), each facet is stored at the
//! least common ancestor of the surfaces sharing it, and discriminating the
//! query against `χ_i` is itself a *planar* point location in the
//! xy-projection of `χ_i`'s proper facets.
//!
//! This module builds the closest synthetic complex that exercises that
//! machinery (see DESIGN.md): `G` stacked piecewise-constant surfaces over
//! a shared monotone **footprint** subdivision, with surfaces allowed to
//! coincide region-wise (producing shared facets, facet runs, and inactive
//! nodes exactly as in the planar case). The cells are the slabs between
//! consecutive surfaces; the stacking order is the topological order, as
//! for the Voronoi complexes of Corollary 1.
//!
//! The cooperative search is two-level: an outer hop covers `Θ(log p)`
//! tree levels at once by discriminating all `2^h` unit nodes in parallel,
//! each discrimination being an inner cooperative planar point location
//! with `p / 2^h` processors — giving the `O((log² n)/log² p)` bound of
//! Theorem 5.

use crate::cooploc::locate_coop;
use crate::septree::{locate_sequential, SeparatorTree};
use crate::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_coop::implicit::Branch;
use fc_coop::ParamMode;
use fc_pram::cost::Pram;
use rand::prelude::*;
use std::collections::HashMap;

/// A stacked-surface cell complex over a shared planar footprint.
#[derive(Debug, Clone)]
pub struct SpatialComplex {
    /// The xy footprint subdivision (regions `ρ_1 … ρ_g`).
    pub footprint: MonotoneSubdivision,
    /// `z[i][r]`: height of surface `i + 1` over footprint region `r + 1`;
    /// non-decreasing in `i` for every `r` (acyclic vertical dominance).
    pub z: Vec<Vec<f64>>,
    /// Number of cells (`surfaces + 1`; must be a power of two).
    pub cells: usize,
}

/// Parameters for [`SpatialComplex::generate`].
#[derive(Debug, Clone, Copy)]
pub struct SpatialParams {
    /// Number of cells (power of two, >= 2).
    pub cells: usize,
    /// Footprint subdivision parameters.
    pub footprint: SubdivisionParams,
    /// Probability that consecutive surfaces coincide over a region
    /// (shared facets).
    pub coincide: f64,
}

impl Default for SpatialParams {
    fn default() -> Self {
        SpatialParams {
            cells: 16,
            footprint: SubdivisionParams::default(),
            coincide: 0.3,
        }
    }
}

impl SpatialComplex {
    /// Generate a random complex.
    pub fn generate(params: SpatialParams, rng: &mut impl Rng) -> Self {
        assert!(params.cells.is_power_of_two() && params.cells >= 2);
        let footprint = MonotoneSubdivision::generate(params.footprint, rng);
        let g = footprint.f;
        let surfaces = params.cells - 1;
        let mut z = vec![vec![0.0f64; g]; surfaces];
        for r in 0..g {
            let mut height = 0.0f64;
            for zi in z.iter_mut() {
                if height == 0.0 || rng.gen::<f64>() >= params.coincide {
                    height += rng.gen_range(0.5..2.0);
                }
                zi[r] = height;
            }
        }
        SpatialComplex {
            footprint,
            z,
            cells: params.cells,
        }
    }

    /// Number of surfaces (`cells − 1`).
    #[inline]
    pub fn surfaces(&self) -> usize {
        self.z.len()
    }

    /// The maximal run `[lo, hi]` (0-indexed surfaces) sharing surface
    /// `i`'s facet over region `r` (0-indexed).
    pub fn facet_run(&self, i: usize, r: usize) -> (usize, usize) {
        let mut lo = i;
        while lo > 0 && self.z[lo - 1][r] == self.z[i][r] {
            lo -= 1;
        }
        let mut hi = i;
        while hi + 1 < self.surfaces() && self.z[hi + 1][r] == self.z[i][r] {
            hi += 1;
        }
        (lo, hi)
    }

    /// Ground-truth cell of `(x, y, zq)`: footprint region by brute force,
    /// then count the surfaces at or below `zq`. Returns the 1-indexed
    /// cell.
    pub fn locate_brute(&self, x: f64, y: f64, zq: f64) -> usize {
        let r = self.footprint.locate_brute(x, y) - 1;
        let below = self.z.iter().filter(|zi| zi[r] <= zq).count();
        below + 1
    }

    /// A random query spanning the complex (and slightly outside).
    pub fn random_query(&self, rng: &mut impl Rng) -> (f64, f64, f64) {
        let (x, y) = self.footprint.random_query(rng);
        let z_max = self
            .z
            .last()
            .map(|zi| zi.iter().cloned().fold(0.0, f64::max))
            .unwrap_or(1.0);
        (x, y, rng.gen_range(-1.0..z_max + 1.0))
    }
}

/// What an outer-tree node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OuterKind {
    /// Separating surface `χ_i` (1-indexed).
    Surface(u32),
    /// Cell `c_t` (1-indexed) — a leaf.
    Cell(u32),
}

/// One node of the outer (cell) tree.
#[derive(Debug, Clone)]
struct OuterNode {
    kind: OuterKind,
    children: [u32; 2], // u32::MAX at leaves
}

const NONE: u32 = u32::MAX;

/// The preprocessed spatial locator: outer cell tree + a cooperative planar
/// locator for the footprint (standing in for the per-node projections —
/// every discrimination runs a full planar point location through it, so
/// the *work* of Theorem 5's two-level search is performed and charged; see
/// DESIGN.md for the space note).
pub struct SpatialLocator {
    /// The complex being searched.
    pub complex: SpatialComplex,
    /// Cooperative planar locator used for every surface discrimination.
    pub planar: SeparatorTree,
    nodes: Vec<OuterNode>,
    /// Per outer node: proper facets as `region (0-idx) -> (run_lo, run_hi)`
    /// (1-indexed surfaces).
    facets: Vec<HashMap<u32, (u32, u32)>>,
    /// Per outer node (surfaces): inactive branch per footprint region.
    region_branch: Vec<Vec<Branch>>,
}

/// Statistics from one spatial location.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpatialStats {
    /// Outer hops.
    pub hops: usize,
    /// Inner planar point locations executed.
    pub inner_queries: usize,
    /// Surfaces found active.
    pub active: usize,
}

impl SpatialLocator {
    /// Build the locator (outer tree, facet assignment, planar
    /// preprocessing).
    pub fn build(complex: SpatialComplex, mode: ParamMode) -> Self {
        let cells = complex.cells;
        let surfaces = complex.surfaces();

        // Outer tree over cell range [1, cells] (preorder arena).
        struct Task {
            lo: u32,
            hi: u32,
            parent: Option<u32>,
            slot: usize,
        }
        let mut nodes: Vec<OuterNode> = Vec::with_capacity(2 * cells - 1);
        let mut node_of_surface = vec![0u32; surfaces];
        let mut stack = vec![Task {
            lo: 1,
            hi: cells as u32,
            parent: None,
            slot: 0,
        }];
        while let Some(t) = stack.pop() {
            let idx = nodes.len() as u32;
            if let Some(p) = t.parent {
                nodes[p as usize].children[t.slot] = idx;
            }
            if t.lo == t.hi {
                nodes.push(OuterNode {
                    kind: OuterKind::Cell(t.lo),
                    children: [NONE; 2],
                });
            } else {
                let mid = (t.lo + t.hi) / 2;
                nodes.push(OuterNode {
                    kind: OuterKind::Surface(mid),
                    children: [NONE; 2],
                });
                node_of_surface[mid as usize - 1] = idx;
                stack.push(Task {
                    lo: mid + 1,
                    hi: t.hi,
                    parent: Some(idx),
                    slot: 1,
                });
                stack.push(Task {
                    lo: t.lo,
                    hi: mid,
                    parent: Some(idx),
                    slot: 0,
                });
            }
        }

        // Facet assignment: run LCA over the cell-range structure.
        let lca_surface = |lo: u32, hi: u32| -> u32 {
            let (mut a, mut b) = (1u32, cells as u32);
            loop {
                let mid = (a + b) / 2;
                if hi < mid {
                    b = mid;
                } else if lo > mid {
                    a = mid + 1;
                } else {
                    return mid;
                }
            }
        };
        let g = complex.footprint.f;
        let mut facets: Vec<HashMap<u32, (u32, u32)>> = vec![HashMap::new(); nodes.len()];
        let mut region_branch: Vec<Vec<Branch>> = vec![Vec::new(); nodes.len()];
        for r in 0..g {
            let mut i = 0usize;
            while i < surfaces {
                let (lo0, hi0) = complex.facet_run(i, r);
                let owner = lca_surface(lo0 as u32 + 1, hi0 as u32 + 1);
                facets[node_of_surface[owner as usize - 1] as usize]
                    .insert(r as u32, (lo0 as u32 + 1, hi0 as u32 + 1));
                i = hi0 + 1;
            }
        }
        for (s0, &nid) in node_of_surface.iter().enumerate() {
            let c = s0 as u32 + 1;
            let rb: Vec<Branch> = (0..g)
                .map(|r| {
                    let (lo0, hi0) = complex.facet_run(s0, r);
                    let owner = lca_surface(lo0 as u32 + 1, hi0 as u32 + 1);
                    if c < owner {
                        Branch::Left
                    } else {
                        Branch::Right
                    }
                })
                .collect();
            region_branch[nid as usize] = rb;
        }

        let planar = SeparatorTree::build(complex.footprint.clone(), mode);
        SpatialLocator {
            complex,
            planar,
            nodes,
            facets,
            region_branch,
        }
    }

    /// Height of the surface `c` (1-indexed) over region `r` (0-indexed).
    #[inline]
    fn surface_z(&self, c: u32, r: usize) -> f64 {
        self.complex.z[c as usize - 1][r]
    }
}

/// Sequential spatial point location (the canal-tree baseline of [2]):
/// every tree level re-runs a planar point location — `O(log² n)` total.
/// Returns the 1-indexed cell.
pub fn locate_spatial_sequential(
    loc: &SpatialLocator,
    x: f64,
    y: f64,
    zq: f64,
    pram: &mut Pram,
) -> (usize, SpatialStats) {
    let mut stats = SpatialStats::default();
    let mut idx = 0u32;
    loop {
        match loc.nodes[idx as usize].kind {
            OuterKind::Cell(t) => return (t as usize, stats),
            OuterKind::Surface(c) => {
                // Inner planar point location (charged in full each level).
                let (region, _) = locate_sequential(&loc.planar, x, y, Some(pram));
                stats.inner_queries += 1;
                let r = region as u32 - 1;
                let branch = if loc.facets[idx as usize].contains_key(&r) {
                    stats.active += 1;
                    if zq >= loc.surface_z(c, r as usize) {
                        Branch::Right
                    } else {
                        Branch::Left
                    }
                } else {
                    loc.region_branch[idx as usize][r as usize]
                };
                pram.seq(1);
                idx = loc.nodes[idx as usize].children[branch.slot()];
            }
        }
    }
}

/// Cooperative spatial point location (Theorem 5): outer hops of
/// `h ≈ (log p)/2` levels, each discriminating all `2^h` unit nodes via
/// concurrent inner cooperative planar point locations with `p / 2^h`
/// processors each, then the Section 3.1 branch recomputation.
pub fn locate_spatial_coop(
    loc: &SpatialLocator,
    x: f64,
    y: f64,
    zq: f64,
    pram: &mut Pram,
) -> (usize, SpatialStats) {
    let p = pram.processors();
    if p < 16 {
        return locate_spatial_sequential(loc, x, y, zq, pram);
    }
    let h = (((usize::BITS - p.leading_zeros()) as usize / 2).max(1)) as u32;
    let mut stats = SpatialStats::default();
    let mut max_el = 0u32; // max(e_L): everything <= it is below q

    let mut idx = 0u32;
    while let OuterKind::Surface(_) = loc.nodes[idx as usize].kind {
        stats.hops += 1;
        // Collect the unit: BFS to relative depth h.
        let mut unit: Vec<(u32, u8)> = vec![(idx, 0)]; // (node, level)
        let mut head = 0usize;
        while head < unit.len() {
            let (v, lvl) = unit[head];
            head += 1;
            if (lvl as u32) < h {
                for &ch in &loc.nodes[v as usize].children {
                    if ch != NONE {
                        unit.push((ch, lvl + 1));
                    }
                }
            }
        }
        let zn = unit.len();
        let p_inner = (p / zn).max(1);

        // Inner queries: all unit nodes concurrently, p/zn processors each.
        let mut branch_prams = Vec::with_capacity(zn);
        let mut info: Vec<Option<(u32, Option<(u32, u32)>, Branch)>> = vec![None; zn];
        for (zi, &(v, _)) in unit.iter().enumerate() {
            if let OuterKind::Surface(c) = loc.nodes[v as usize].kind {
                let mut bp = pram.with_processors(p_inner);
                let (region, _) = locate_coop(&loc.planar, x, y, &mut bp);
                branch_prams.push(bp);
                stats.inner_queries += 1;
                let r = region as u32 - 1;
                if let Some(&run) = loc.facets[v as usize].get(&r) {
                    stats.active += 1;
                    let b = if zq >= loc.surface_z(c, r as usize) {
                        Branch::Right
                    } else {
                        Branch::Left
                    };
                    info[zi] = Some((c, Some(run), b));
                } else {
                    info[zi] = Some((c, None, Branch::Left)); // branch set in step 5
                }
            }
        }
        pram.join_max(branch_prams);

        // Steps 3-4: window update from the active transition.
        pram.round(zn * zn);
        let mut best_right: Option<(u32, u32)> = None;
        for entry in info.iter().flatten() {
            if let (c, Some(run), Branch::Right) = (entry.0, entry.1, entry.2) {
                if best_right.is_none_or(|(bc, _)| c > bc) {
                    best_right = Some((c, run.1));
                }
            }
        }
        if let Some((_, hi)) = best_right {
            max_el = max_el.max(hi);
        }

        // Step 5: consistent branches everywhere; step 6: follow them.
        pram.round(zn);
        let branch_of = |zi: usize| -> Branch {
            match info[zi] {
                Some((c, Some(_), b)) => {
                    let _ = c;
                    b
                }
                Some((c, None, _)) => {
                    if c <= max_el {
                        Branch::Right
                    } else {
                        Branch::Left
                    }
                }
                None => Branch::Left, // cell leaf: not branched from
            }
        };
        // Walk from the unit root following branches to the unit bottom.
        let mut pos = 0usize;
        loop {
            let (v, lvl) = unit[pos];
            if (lvl as u32) >= h || loc.nodes[v as usize].children[0] == NONE {
                idx = v;
                break;
            }
            let b = branch_of(pos);
            let target = loc.nodes[v as usize].children[b.slot()];
            // Locate the child inside the unit list (BFS order).
            pos = unit[pos + 1..]
                .iter()
                .position(|&(u, _)| u == target)
                .map(|off| pos + 1 + off)
                .expect("child is in the unit");
            idx = target;
            if let OuterKind::Cell(_) = loc.nodes[idx as usize].kind {
                break;
            }
        }
        pram.seq(1);
    }
    match loc.nodes[idx as usize].kind {
        OuterKind::Cell(t) => (t as usize, stats),
        OuterKind::Surface(_) => unreachable!("loop exits at a cell"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_pram::Model;
    use rand::rngs::SmallRng;

    fn build(seed: u64, params: SpatialParams) -> SpatialLocator {
        let mut rng = SmallRng::seed_from_u64(seed);
        let complex = SpatialComplex::generate(params, &mut rng);
        SpatialLocator::build(complex, ParamMode::Auto)
    }

    #[test]
    fn surfaces_respect_vertical_dominance() {
        let mut rng = SmallRng::seed_from_u64(201);
        let c = SpatialComplex::generate(SpatialParams::default(), &mut rng);
        for r in 0..c.footprint.f {
            for i in 1..c.surfaces() {
                assert!(c.z[i - 1][r] <= c.z[i][r], "surface {i} region {r}");
            }
        }
    }

    #[test]
    fn facets_partition_surface_region_pairs() {
        let loc = build(203, SpatialParams::default());
        // Every (surface, region) pair belongs to exactly one stored run.
        let g = loc.complex.footprint.f;
        for r in 0..g as u32 {
            let mut covered = vec![false; loc.complex.surfaces()];
            for (nid, map) in loc.facets.iter().enumerate() {
                if let Some(&(lo, hi)) = map.get(&r) {
                    let _ = nid;
                    for s in lo..=hi {
                        assert!(!covered[s as usize - 1], "double cover");
                        covered[s as usize - 1] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&b| b), "region {r} fully covered");
        }
    }

    #[test]
    fn sequential_matches_brute_force() {
        for seed in [207u64, 211, 213] {
            let loc = build(
                seed,
                SpatialParams {
                    cells: 32,
                    coincide: 0.4,
                    ..Default::default()
                },
            );
            let mut rng = SmallRng::seed_from_u64(seed + 500);
            for _ in 0..150 {
                let (x, y, zq) = loc.complex.random_query(&mut rng);
                let want = loc.complex.locate_brute(x, y, zq);
                let mut pram = Pram::new(1, Model::Crew);
                let (got, _) = locate_spatial_sequential(&loc, x, y, zq, &mut pram);
                assert_eq!(got, want, "seed {seed} q ({x}, {y}, {zq})");
            }
        }
    }

    #[test]
    fn coop_matches_brute_force_across_p() {
        let loc = build(
            217,
            SpatialParams {
                cells: 64,
                coincide: 0.35,
                footprint: SubdivisionParams {
                    regions: 64,
                    strips: 12,
                    stick: 0.4,
                    detach: 0.4,
                },
            },
        );
        let mut rng = SmallRng::seed_from_u64(218);
        for p in [1usize, 64, 4096, 1 << 20] {
            for _ in 0..60 {
                let (x, y, zq) = loc.complex.random_query(&mut rng);
                let want = loc.complex.locate_brute(x, y, zq);
                let mut pram = Pram::new(p, Model::Crew);
                let (got, _) = locate_spatial_coop(&loc, x, y, zq, &mut pram);
                assert_eq!(got, want, "p {p} q ({x}, {y}, {zq})");
            }
        }
    }

    #[test]
    fn heavy_coincidence_still_correct() {
        let loc = build(
            223,
            SpatialParams {
                cells: 64,
                coincide: 0.8,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(224);
        for _ in 0..100 {
            let (x, y, zq) = loc.complex.random_query(&mut rng);
            let want = loc.complex.locate_brute(x, y, zq);
            let mut pram = Pram::new(1 << 16, Model::Crew);
            let (got, _) = locate_spatial_coop(&loc, x, y, zq, &mut pram);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn coop_hops_cover_multiple_levels() {
        let loc = build(
            227,
            SpatialParams {
                cells: 256,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(228);
        let (x, y, zq) = loc.complex.random_query(&mut rng);
        let mut pram = Pram::new(1 << 20, Model::Crew);
        let (_, stats) = locate_spatial_coop(&loc, x, y, zq, &mut pram);
        // Height of the outer tree is 8; hops of height ~10 collapse it.
        assert!(stats.hops < 8, "hops {}", stats.hops);
    }

    #[test]
    fn coop_beats_sequential_at_large_p() {
        let loc = build(
            229,
            SpatialParams {
                cells: 256,
                footprint: SubdivisionParams {
                    regions: 256,
                    strips: 24,
                    stick: 0.35,
                    detach: 0.45,
                },
                coincide: 0.3,
            },
        );
        let mut rng = SmallRng::seed_from_u64(230);
        let mut seq = 0u64;
        let mut coop = 0u64;
        for _ in 0..20 {
            let (x, y, zq) = loc.complex.random_query(&mut rng);
            let mut p1 = Pram::new(1, Model::Crew);
            locate_spatial_sequential(&loc, x, y, zq, &mut p1);
            seq += p1.steps();
            let mut pp = Pram::new(1 << 26, Model::Crew);
            locate_spatial_coop(&loc, x, y, zq, &mut pp);
            coop += pp.steps();
        }
        assert!(coop < seq, "coop {coop} vs seq {seq}");
    }
}
