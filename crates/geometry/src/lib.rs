//! # fc-geom — cooperative point location (Sections 3.1–3.2)
//!
//! The paper's flagship application: preprocess a monotone planar
//! subdivision with `n` vertices so that **cooperative point-location
//! queries** run in `O((log n)/log p)` CREW steps (Theorem 4), and extend
//! the machinery to spatial cell complexes with acyclic vertical dominance
//! (`O((log² n)/log² p)`, Theorem 5; Voronoi complexes, Corollary 1).
//!
//! The search path of point location is "highly implicit": the branch at an
//! *inactive* separator (one whose proper edges have a gap at the query's
//! height) cannot be evaluated locally, and the natural branch function
//! violates the consistency assumption of Section 2 (Figure 5 shows the
//! violations). Section 3.1's contribution is the 6-step hop that
//! recomputes a *consistent* branch function per unit using the maintained
//! window `(σ_L, σ_R)` and the separator index ranges `[min(e), max(e)]`
//! of each edge; [`cooploc`] implements it on top of `fc-coop`'s units.
//!
//! Modules:
//! * [`subdivision`] — synthetic monotone subdivisions (stacked y-monotone
//!   separators with controllable edge sharing) and a brute-force locator.
//! * [`septree`] — the bridged separator tree: proper-edge assignment by
//!   LCA, per-gap branch precomputation, sequential point location.
//! * [`cooploc`] — cooperative point location (Theorem 4).
//! * [`spatial`] — extruded cell complexes, separating surfaces, and
//!   two-level cooperative spatial point location (Theorem 5).

#![warn(missing_docs)]
// Explicit index loops mirror the one-processor-per-index PRAM semantics;
// a few hop-state tuples are internal and not worth naming.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

pub mod cooploc;
pub mod septree;
pub mod spatial;
pub mod subdivision;

pub use cooploc::{locate_coop, CoopLocator};
pub use septree::{locate_sequential, SeparatorTree};
pub use subdivision::{MonotoneSubdivision, SubdivisionParams};
